#!/usr/bin/env bash
# Full verification gate: formatting, release build, tier-1 tests, the
# complete workspace test suite (including the vendored stub crates),
# and a warnings-as-errors clippy pass.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q (tier-1: root package) =="
cargo test -q

echo "== cargo test --workspace -q =="
cargo test --workspace -q

echo "== serve integration tests (keep-alive, lazy==eager, golden packs) =="
cargo test -p autotype-serve --test keepalive --test lazy_eager --test golden --test loopback -q

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --workspace -- -D warnings

echo "verify: all green"

//! Umbrella crate for the AutoType reproduction workspace.
//!
//! This package exists to host the cross-crate integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in the [`autotype`] facade crate and the substrate crates
//! it re-exports.

pub use autotype as engine;

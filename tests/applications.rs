//! Integration tests for the paper's application scenarios: keyword
//! ambiguity (Figure 12), table-column detection (§9), and semantic
//! transformations (§7.1).

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_tables::{generate_columns, TableConfig, VALUE_THRESHOLD};
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine() -> AutoType {
    AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    )
}

/// The "SWIFT" ambiguity (Figure 12): the bare keyword retrieves the
/// programming-language fleet; the disambiguated keyword finds the
/// financial-message code.
#[test]
fn swift_keyword_ambiguity() {
    let engine = engine();
    let ty = by_slug("swift").unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let positives = ty.examples(&mut rng, 15);

    // Bare "SWIFT": top-ranked function must NOT be the MT-message parser.
    let relevant_top = |keyword: &str| -> bool {
        let mut rng = StdRng::seed_from_u64(2);
        match engine.session(keyword, &positives, NegativeMode::Hierarchy, &mut rng) {
            None => false,
            Some(mut session) => session
                .rank(Method::DnfS)
                .first()
                .is_some_and(|f| f.intent == Some("swift")),
        }
    };
    assert!(
        !relevant_top("SWIFT"),
        "bare SWIFT should drown in Swift-language repositories"
    );
    assert!(
        relevant_top("SWIFT message"),
        "the disambiguated query must find the MT parser"
    );
}

/// End-to-end column annotation: a synthesized ISBN detector finds ISBN
/// columns in a dirty table corpus and skips everything else.
#[test]
fn isbn_column_detection_end_to_end() {
    let engine = engine();
    let ty = by_slug("isbn").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let positives = ty.examples(&mut rng, 20);
    let mut session = engine
        .session("ISBN", &positives, NegativeMode::Hierarchy, &mut rng)
        .unwrap();
    let top = session.rank(Method::DnfS).into_iter().next().unwrap();
    assert_eq!(top.intent, Some("isbn"));

    let columns = generate_columns(
        &TableConfig {
            scale: 0.4,
            untyped: 60,
            dirt: 0.05,
            ..Default::default()
        },
        &mut rng,
    );
    let mut detected_truths = Vec::new();
    for column in &columns {
        let accepted = column
            .values
            .iter()
            .filter(|v| session.validate(&top, v))
            .count();
        if accepted as f64 / column.values.len().max(1) as f64 > VALUE_THRESHOLD {
            detected_truths.push(column.truth);
        }
    }
    assert!(
        detected_truths.iter().any(|t| *t == Some("isbn")),
        "at least one ISBN column must be detected"
    );
    // The GS1-checksum validator must not fire on non-ISBN columns (EAN
    // shares the checksum but the 978/979 prefix check blocks it).
    assert!(
        detected_truths.iter().all(|t| *t == Some("isbn")),
        "non-ISBN columns detected: {detected_truths:?}"
    );
}

/// Transformation mining surfaces the Figure 6 card-brand column.
#[test]
fn credit_card_transformations_surface_brand() {
    let engine = engine();
    let ty = by_slug("creditcard").unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let positives = ty.examples(&mut rng, 16);
    let mut session = engine
        .session("credit card", &positives, NegativeMode::Hierarchy, &mut rng)
        .unwrap();
    let ranked = session.rank(Method::DnfS);
    let mut names = Vec::new();
    for f in ranked.iter().take(16).cloned().collect::<Vec<_>>() {
        if f.intent != Some("creditcard") {
            continue;
        }
        for t in session.transformations(&f) {
            names.push(t.name);
        }
    }
    assert!(
        names.iter().any(|n| n.contains("card_brand")),
        "harvested: {names:?}"
    );
}

/// The install loop is exercised by repositories importing `relib`: the
/// session still synthesizes working validators for shape-based types.
#[test]
fn relib_backed_types_synthesize() {
    let engine = engine();
    for (slug, keyword) in [("zipcode", "US zipcode"), ("mac", "MAC address")] {
        let ty = by_slug(slug).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let positives = ty.examples(&mut rng, 20);
        let mut session = engine
            .session(keyword, &positives, NegativeMode::Hierarchy, &mut rng)
            .unwrap_or_else(|| panic!("{slug}"));
        let ranked = session.rank(Method::DnfS);
        assert_eq!(ranked[0].intent, Some(slug), "{slug}: {}", ranked[0].label);
        let fresh = ty.examples(&mut rng, 4);
        let top = ranked[0].clone();
        for v in &fresh {
            assert!(session.validate(&top, v), "{slug} rejected {v}");
        }
    }
}

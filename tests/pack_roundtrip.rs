//! Property-style tests for the detector-pack wire format: serialization
//! must be a bijection on the pack, rehydration must preserve verdicts
//! exactly, and *no* malformed input — truncated, corrupted, or garbage —
//! may panic the reader.

use autotype_exec::{EntryPoint, Literal};
use autotype_lang::{SiteId, ValueSummary};
use autotype_pack::{Pack, PackError};
use proptest::prelude::*;

/// A small but representative pack: multi-file program, branch + synthetic
/// return literals, a package slice, non-trivial metadata.
fn sample_pack() -> Pack {
    let main =
        "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n";
    let helper = "def mod2(n):\n    return n % 2\n";
    Pack {
        slug: "evenlen".into(),
        keyword: "even length".into(),
        label: "demo/mod.is_even_len".into(),
        repo_name: "demo".into(),
        file: "mod".into(),
        strategy: "S2".into(),
        method: "DNF-S".into(),
        score: 0.95,
        neg_fraction: 0.125,
        explanation: "(b2==True ∧ ret==True)".into(),
        fuel: 10_000,
        installs: 1,
        candidate_file: 0,
        entry: EntryPoint::Function {
            name: "is_even_len".into(),
        },
        files: vec![
            ("mod".into(), main.into()),
            ("helper".into(), helper.into()),
        ],
        packages: vec![("helper".into(), helper.into())],
        dnf_e: vec![vec![
            Literal::Branch {
                site: SiteId::new(0, 2),
                taken: true,
            },
            Literal::Ret {
                site: SiteId::new(u32::MAX, 0),
                value: ValueSummary::Bool(true),
            },
        ]],
    }
}

proptest! {
    /// Byte round trip is the identity on the pack, and — the property
    /// that actually matters — the rehydrated validator returns the same
    /// verdict as the original on arbitrary printable inputs (generated
    /// negatives) and on known positives.
    #[test]
    fn round_tripped_validator_agrees_on_all_inputs(value in "\\PC{0,16}") {
        let pack = sample_pack();
        let round_tripped = Pack::from_bytes(&pack.to_bytes()).expect("round trip");
        prop_assert_eq!(&round_tripped, &pack);
        prop_assert_eq!(round_tripped.pack_id(), pack.pack_id());

        let original = pack.validator().expect("original validator");
        let rehydrated = round_tripped.validator().expect("rehydrated validator");
        // The generated value, plus fixed positives/negatives so every
        // case exercises both verdict polarities.
        for input in [value.as_str(), "abcd", "", "abc", "\u{e9}\u{e9}"] {
            prop_assert_eq!(
                original.accepts(input),
                rehydrated.accepts(input),
                "verdicts diverged on {:?}", input
            );
        }
    }

    /// Every truncation of a valid pack errors — never panics, never
    /// yields a pack.
    #[test]
    fn truncated_packs_error_not_panic(cut in 0usize..100_000) {
        let bytes = sample_pack().to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(Pack::from_bytes(&bytes[..cut]).is_err(), "cut at {} parsed", cut);
    }

    /// Every single-byte corruption errors. Payload corruption must be
    /// caught by the CRC specifically (or by a field-level check before
    /// the CRC is even reached — both are sound; silently succeeding with
    /// different bytes is not, except for byte values that decode
    /// identically, which cannot happen with a bit flip).
    #[test]
    fn corrupted_packs_error_not_panic(pos in 0usize..100_000, flip in 1u8..=255) {
        let pack = sample_pack();
        let mut bytes = pack.to_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match Pack::from_bytes(&bytes) {
            Err(_) => {} // any structured error is fine; a panic is not
            Ok(parsed) => {
                // The only way corruption may "succeed" is if it produced
                // the same logical pack (impossible for a bit flip inside
                // the sealed region, but the header length field aliasing
                // is guarded here for completeness).
                prop_assert_eq!(parsed, pack, "corruption at {} silently changed the pack", pos);
            }
        }
    }

    /// Arbitrary garbage never panics the reader.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = Pack::from_bytes(&bytes);
    }
}

/// Deterministic spot checks for the error taxonomy (kept outside
/// `proptest!` so the variants are pinned, not just "some error").
#[test]
fn error_variants_are_specific() {
    let pack = sample_pack();
    let good = pack.to_bytes();

    let mut bad_magic = good.clone();
    bad_magic[0] = b'Z';
    assert!(matches!(
        Pack::from_bytes(&bad_magic),
        Err(PackError::BadMagic(_))
    ));

    let mut future = good.clone();
    future[4..6].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(matches!(
        Pack::from_bytes(&future),
        Err(PackError::UnsupportedVersion(_))
    ));

    let mut corrupt_payload = good.clone();
    let mid = 14 + (good.len() - 18) / 2; // middle of the payload
    corrupt_payload[mid] ^= 0x40;
    assert!(matches!(
        Pack::from_bytes(&corrupt_payload),
        Err(PackError::CorruptCrc { .. })
    ));

    assert!(matches!(
        Pack::from_bytes(&good[..good.len() - 1]),
        Err(PackError::Truncated)
    ));
}

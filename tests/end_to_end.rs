//! Cross-crate integration tests: the whole pipeline, substrate to
//! synthesized validator, exercised on real benchmark types.

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_negative::Strategy;
use autotype_rank::Method;
use autotype_typesys::{by_slug, Coverage};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine() -> AutoType {
    AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    )
}

fn positives(slug: &str, n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    by_slug(slug).unwrap().examples(&mut rng, n)
}

/// Checksum-backed types must separate at S1 (mutate-preserve-structure):
/// digit substitutions break the checksum (paper §6).
#[test]
fn checksum_types_separate_at_s1() {
    let engine = engine();
    for (slug, keyword) in [
        ("creditcard", "credit card"),
        ("isbn", "ISBN"),
        ("vin", "VIN"),
        ("iban", "IBAN number"),
    ] {
        let mut rng = StdRng::seed_from_u64(31);
        let pos = positives(slug, 20, 100 + slug.len() as u64);
        let session = engine
            .session(keyword, &pos, NegativeMode::Hierarchy, &mut rng)
            .unwrap_or_else(|| panic!("{slug}: no session"));
        assert_eq!(session.strategy, Some(Strategy::S1), "{slug}");
    }
}

/// Structure-delimited types (punctuation carries the structure) need S2
/// (paper Example 6 uses IPv6).
#[test]
fn structural_types_escalate_to_s2() {
    let engine = engine();
    for (slug, keyword) in [("ipv6", "IPv6"), ("datetime", "date time")] {
        let mut rng = StdRng::seed_from_u64(33);
        let pos = positives(slug, 20, 200 + slug.len() as u64);
        let session = engine
            .session(keyword, &pos, NegativeMode::Hierarchy, &mut rng)
            .unwrap_or_else(|| panic!("{slug}: no session"));
        assert!(
            session.strategy == Some(Strategy::S2) || session.strategy == Some(Strategy::S1),
            "{slug} used {:?}",
            session.strategy
        );
    }
}

/// Alphabet-constrained types (gene sequences, Roman numerals) need S3.
///
/// Escalation is decided by the fraction of in-alphabet mutants that happen
/// to still be valid numerals, so it depends on the RNG stream; this seed
/// pair draws a positive set whose S1/S2 mutants stay too-often valid under
/// the vendored `StdRng` (see crates/vendor/rand), forcing S3.
#[test]
fn alphabet_types_escalate_beyond_s1() {
    let engine = engine();
    let mut rng = StdRng::seed_from_u64(35);
    let pos = positives("roman", 20, 301);
    let session = engine
        .session("roman number", &pos, NegativeMode::Hierarchy, &mut rng)
        .expect("roman session");
    assert!(
        session.strategy >= Some(Strategy::S2),
        "roman numerals need at least S2/S3, used {:?}",
        session.strategy
    );
}

/// The synthesized validator generalizes to unseen positives and rejects
/// near-misses — the generalization argument behind k-concise DNFs (§5.2).
#[test]
fn synthesized_validators_generalize() {
    let engine = engine();
    for (slug, keyword, bad) in [
        ("isbn", "ISBN", "9784063641562"),
        ("issn", "ISSN", "03784372"),
        ("ipv4", "IPv4", "256.1.2.3"),
        ("email", "email address", "not an email"),
    ] {
        let mut rng = StdRng::seed_from_u64(37);
        let pos = positives(slug, 20, 400 + slug.len() as u64);
        let mut session = engine
            .session(keyword, &pos, NegativeMode::Hierarchy, &mut rng)
            .unwrap_or_else(|| panic!("{slug}"));
        let ranked = session.rank(Method::DnfS);
        let top = ranked
            .first()
            .cloned()
            .unwrap_or_else(|| panic!("{slug}: empty ranking"));
        assert_eq!(top.intent, Some(slug), "{slug} top-1 = {}", top.label);
        // Fresh positives, never seen during synthesis.
        let fresh = positives(slug, 6, 9000 + slug.len() as u64);
        let mut ok = 0;
        for v in &fresh {
            if session.validate(&top, v) {
                ok += 1;
            }
        }
        assert!(ok >= 5, "{slug}: only {ok}/6 fresh positives accepted");
        assert!(!session.validate(&top, bad), "{slug} accepted {bad:?}");
    }
}

/// All six invocation variants of Appendix D.1 surface as candidates for a
/// popular type and agree on validity.
#[test]
fn invocation_variants_are_all_discovered() {
    let engine = engine();
    let mut rng = StdRng::seed_from_u64(41);
    let pos = positives("creditcard", 20, 555);
    let mut session = engine
        .session("credit card", &pos, NegativeMode::Hierarchy, &mut rng)
        .unwrap();
    let ranked = session.rank(Method::DnfS);
    let labels: Vec<&str> = ranked.iter().map(|f| f.label.as_str()).collect();
    // At least a plain function and one wrapped variant must rank.
    assert!(
        labels.iter().any(|l| l.contains("is_valid_card")),
        "{labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("main_from")
            || l.contains("Checker")
            || l.contains("Validator")
            || l.contains("script")),
        "{labels:?}"
    );
}

/// The 24 NoCode benchmark types must synthesize nothing relevant, and the
/// 4 unsupported-invocation types must fail despite relevant code existing
/// (paper §8.2.2).
#[test]
fn uncovered_types_stay_uncovered() {
    let engine = engine();
    for ty in autotype_typesys::registry() {
        if ty.coverage == Coverage::Covered {
            continue;
        }
        let mut rng = StdRng::seed_from_u64(43);
        let pos = ty.examples(&mut rng, 10);
        if let Some(mut session) =
            engine.session(ty.keyword(), &pos, NegativeMode::Hierarchy, &mut rng)
        {
            let ranked = session.rank(Method::DnfS);
            let relevant = ranked
                .iter()
                .filter(|f| f.intent == Some(ty.slug) && f.score > 0.8)
                .count();
            assert_eq!(relevant, 0, "{} should not be synthesizable", ty.name);
        }
    }
}

/// Determinism: the same seed reproduces the same ranking end to end.
#[test]
fn pipeline_is_deterministic() {
    let engine = engine();
    let pos = positives("zipcode", 20, 77);
    let labels = |seed: u64| -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut session = engine
            .session("US zipcode", &pos, NegativeMode::Hierarchy, &mut rng)
            .unwrap();
        session
            .rank(Method::DnfS)
            .iter()
            .map(|f| f.label.clone())
            .collect()
    };
    assert_eq!(labels(5), labels(5));
}

//! The full deployment story, end to end: synthesize a detector for a
//! built-in type, export it as a pack, start a [`DetectorRuntime`] from
//! the pack directory with **zero re-synthesis** (no corpus, no search
//! index, no tracing — only the pack bytes), and serve a batch whose
//! verdicts are bit-identical to the in-process `Session` validator at
//! every worker count. This is the acceptance test for the pack +
//! serve subsystem.

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_serve::DetectorRuntime;
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn synthesized_pack_serves_bit_identical_verdicts() {
    // --- Synthesis (the only phase that touches the corpus). ---
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    );
    let ty = by_slug("creditcard").unwrap();
    let mut ex_rng = StdRng::seed_from_u64(1);
    let positives = ty.examples(&mut ex_rng, 20);
    let mut rng = StdRng::seed_from_u64(42);
    let mut session = engine
        .session("credit card", &positives, NegativeMode::Hierarchy, &mut rng)
        .expect("creditcard session");
    let ranked = session.rank(Method::DnfS);
    let top = ranked.first().cloned().expect("ranked functions");

    // --- Export. ---
    let dir = std::env::temp_dir().join(format!("autotype-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("00-creditcard.atpk");
    let pack = session
        .save_pack(&top, "creditcard", Method::DnfS, &path)
        .expect("save pack");
    assert!(pack.pack_id().starts_with("creditcard-"));
    assert!(path.exists());

    // The probe batch: valid cards, corrupted cards, and junk.
    let mut batch: Vec<String> = positives.clone();
    batch.extend(
        [
            "4147202263232836", // last digit off: Luhn fails
            "1234567890123456",
            "not a number",
            "",
            "4111111111111111", // classic test PAN, Luhn-valid
        ]
        .iter()
        .map(|s| s.to_string()),
    );

    // In-process reference verdicts from the live session.
    let reference: Vec<bool> = batch.iter().map(|v| session.validate(&top, v)).collect();
    assert!(reference.iter().any(|&b| b), "some positives must accept");
    assert!(reference.iter().any(|&b| !b), "some negatives must reject");

    // --- Serving: rebuilt purely from the pack directory. ---
    for workers in [1usize, 2, 4, 8] {
        let runtime = DetectorRuntime::load_dir(&dir, workers, 4096)
            .unwrap_or_else(|e| panic!("load_dir at workers={workers}: {e}"));
        assert_eq!(runtime.packs().len(), 1);
        assert_eq!(runtime.packs()[0].pack_id(), pack.pack_id());

        let verdicts = runtime.detect_batch(&batch);
        let served: Vec<bool> = verdicts.iter().map(|v| v.is_some()).collect();
        assert_eq!(
            served, reference,
            "pack verdicts diverged from the in-process session at workers={workers}"
        );

        // Second identical batch: all verdicts come from the cache.
        let misses = autotype_serve::Metrics::read(&runtime.metrics().cache_misses);
        let again = runtime.detect_batch(&batch);
        assert_eq!(again, verdicts);
        assert_eq!(
            autotype_serve::Metrics::read(&runtime.metrics().cache_misses),
            misses,
            "second batch must not re-probe (workers={workers})"
        );
        assert!(
            autotype_serve::Metrics::read(&runtime.metrics().cache_hits) >= batch.len() as u64,
            "second batch must be served from cache (workers={workers})"
        );
        assert!(autotype_serve::Metrics::read(&runtime.metrics().fuel_spent) > 0);
    }

    std::fs::remove_dir_all(&dir).ok();
}

//! The batched column-detection path's core guarantee, mirroring
//! `crates/core/tests/parallel_determinism.rs`: `table2` run through the
//! exec pool produces bit-identical per-method `Detection` sets and
//! `Table2Row` scores at every worker count, because the column × detector
//! matrix is merged in input order and each batch-validator call is a pure
//! function of its input value.

use autotype::{AutoType, AutoTypeConfig};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_eval::{table2_full, EvalConfig, Table2Row};
use autotype_tables::Detection;

/// Everything observable about a table2 run, rendered to comparable form.
#[derive(Debug, PartialEq)]
struct Snapshot {
    dnf: Vec<Detection>,
    kw: Vec<Detection>,
    regex: Vec<Detection>,
    rows: Vec<Table2Row>,
}

fn snapshot(workers: usize) -> Snapshot {
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig {
            workers,
            ..AutoTypeConfig::default()
        },
    );
    let cfg = EvalConfig {
        n_test_neg: 40,
        ..EvalConfig::default()
    };
    let out = table2_full(&engine, &cfg, 0.1, 150);
    Snapshot {
        dnf: out.dnf,
        kw: out.kw,
        regex: out.regex,
        rows: out.rows,
    }
}

#[test]
fn table2_is_worker_count_invariant() {
    let baseline = snapshot(1);
    // The serial run must actually detect something via the synthesized
    // validators, or the comparison below is vacuous.
    assert!(!baseline.dnf.is_empty(), "no DNF detections at workers=1");
    assert!(
        baseline.rows.iter().any(|r| r.dnf.correct > 0),
        "no correct DNF detections at workers=1"
    );
    for workers in [2, 4, 8] {
        let got = snapshot(workers);
        assert_eq!(got, baseline, "workers={workers} diverged from serial");
    }
}

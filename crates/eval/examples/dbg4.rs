use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_tables::{generate_columns, TableConfig, VALUE_THRESHOLD};
use autotype_typesys::by_slug;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    );
    let ty = by_slug("ipv4").unwrap();
    let mut ty_rng = StdRng::seed_from_u64(0x5EEDu64 ^ (ty.id as u64) << 7);
    let positives = ty.examples(&mut ty_rng, 20);
    let mut rng = StdRng::seed_from_u64(0x5EEDu64 ^ ty.id as u64);
    let mut session = engine
        .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
        .unwrap();
    let top = session.rank(Method::DnfS)[0].clone();
    let mut crng = StdRng::seed_from_u64(0x5EEDu64 ^ 0x7AB1E);
    let columns = generate_columns(
        &TableConfig {
            scale: 0.3,
            untyped: 2000,
            ..Default::default()
        },
        &mut crng,
    );
    let mut fp = 0;
    for c in &columns {
        if c.truth == Some("ipv4") {
            continue;
        }
        let acc = c
            .values
            .iter()
            .filter(|v| session.validate(&top, v))
            .count();
        if acc as f64 / c.values.len() as f64 > VALUE_THRESHOLD {
            fp += 1;
            if fp <= 5 {
                println!(
                    "FP header {:?} truth {:?} values {:?}",
                    c.header,
                    c.truth,
                    &c.values[..4.min(c.values.len())]
                );
            }
        }
    }
    println!("total ipv4-accepting FP columns: {fp} / {}", columns.len());
}

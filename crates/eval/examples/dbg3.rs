use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_typesys::by_slug;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    );
    let ty = by_slug("ipv4").unwrap();
    let mut ty_rng = StdRng::seed_from_u64(0x5EEDu64 ^ (ty.id as u64) << 7);
    let positives = ty.examples(&mut ty_rng, 20);
    let mut rng = StdRng::seed_from_u64(0x5EEDu64 ^ ty.id as u64);
    let mut session = engine
        .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
        .unwrap();
    println!("strategy {:?}", session.strategy);
    let ranked = session.rank(Method::DnfS);
    for f in ranked.iter().take(6) {
        println!(
            "{} score {:.3} neg {:.3} intent {:?}",
            f.label, f.score, f.neg_fraction, f.intent
        );
    }
    let top = ranked[0].clone();
    for v in ["54.30", "7.74.0.0", "192.168.0.1", "1.2.3", "version 2"] {
        println!("{v:15} -> {}", session.validate(&top, v));
    }
}

//! # autotype-eval — metrics and experiment drivers
//!
//! Implements the evaluation machinery of §8–§9: IR metrics
//! (precision@K, NDCG, pooled relative recall), the relevance model
//! `rel(F) = I(F)·Q(F)` with holdout unit-testing of synthesized functions,
//! and one driver per figure/table of the paper (see DESIGN.md's
//! per-experiment index). The `autotype-bench` crate's `figures` binary
//! renders these drivers' outputs as the paper's tables.

pub mod experiments;
pub mod metrics;
pub mod relevance;

pub use experiments::{
    fig10c, fig12, fig14, fig8, fig9, pipeline_timings, sensitivity_examples, table2, table2_full,
    table3, types_by_coverage, types_by_slugs, CoverageReport, EvalConfig, MethodQuality,
    StageTimings, Table2Output, Table2Row, Table2Timings,
};
pub use metrics::{dcg, mean, ndcg, precision_at_k, relative_recall};
pub use relevance::{relevance, top_k_relevances, Holdout};

#[cfg(test)]
mod tests {
    use super::*;
    use autotype::{AutoType, AutoTypeConfig};
    use autotype_corpus::{build_corpus, CorpusConfig};
    use autotype_rank::Method;

    fn engine() -> AutoType {
        AutoType::new(
            build_corpus(&CorpusConfig::default()),
            AutoTypeConfig::default(),
        )
    }

    fn small_cfg() -> EvalConfig {
        EvalConfig {
            n_test_neg: 40,
            ..Default::default()
        }
    }

    #[test]
    fn fig8_orders_methods_like_the_paper() {
        let engine = engine();
        let types = types_by_slugs(&["creditcard", "isbn", "ipv4", "email", "issn", "vin"]);
        let results = fig8(&engine, &types, &small_cfg());
        let p1 = |m: Method| results.iter().find(|r| r.method == m).unwrap().precision_at[0];
        // DNF-S strong at top-1; KW clearly worse (Figure 8a shape).
        assert!(p1(Method::DnfS) >= 0.8, "DNF-S p@1 = {}", p1(Method::DnfS));
        assert!(
            p1(Method::DnfS) > p1(Method::Kw),
            "DNF-S {} vs KW {}",
            p1(Method::DnfS),
            p1(Method::Kw)
        );
    }

    #[test]
    fn fig9_counts_relevant_functions() {
        let engine = engine();
        let types = types_by_slugs(&["creditcard", "lcc", "sql"]);
        let report = fig9(&engine, &types, &small_cfg());
        // creditcard covered; LCC (no code) and SQL (unsupported
        // invocation) must contribute zero relevant functions.
        assert_eq!(report.covered, 1, "{:?}", report.per_type);
        let cc = report
            .per_type
            .iter()
            .find(|(name, _)| *name == "credit card number")
            .unwrap();
        assert!(cc.1 >= 1);
    }

    #[test]
    fn fig10c_hierarchy_beats_random_beats_none() {
        let engine = engine();
        let types = types_by_slugs(&["creditcard", "isbn"]);
        let results = fig10c(&engine, &types, &small_cfg());
        let p1 = |label: &str| results.iter().find(|(l, _)| *l == label).unwrap().1[0];
        assert!(
            p1("orig") > p1("only_random_neg"),
            "orig {} vs random {}",
            p1("orig"),
            p1("only_random_neg")
        );
        assert!(p1("orig") > p1("no_neg"));
    }

    #[test]
    fn table2_detects_checksum_types_regex_does_not() {
        let engine = engine();
        let rows = table2(&engine, &small_cfg(), 0.1, 150);
        let isbn = rows.iter().find(|r| r.slug == "isbn").unwrap();
        assert!(isbn.dnf.correct >= 1, "DNF must detect ISBN columns");
        // REGEX cannot handle mixed dashed/undashed ISBN formats.
        assert!(
            isbn.regex.correct <= isbn.dnf.correct,
            "regex {} vs dnf {}",
            isbn.regex.correct,
            isbn.dnf.correct
        );
        let datetime = rows.iter().find(|r| r.slug == "datetime").unwrap();
        assert_eq!(
            datetime.regex.detected, 0,
            "regex inference must fail on mixed date formats"
        );
        assert!(datetime.dnf.correct >= 1);
    }

    #[test]
    fn table3_harvests_transformations() {
        let engine = engine();
        let rows = table3(&engine, &small_cfg());
        let cc = rows
            .iter()
            .find(|(name, _)| *name == "credit card number")
            .unwrap();
        assert!(!cc.1.is_empty(), "credit card should yield transformations");
    }
}

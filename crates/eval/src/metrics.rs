//! IR metrics of §8.1: precision@K, NDCG, and pooled relative recall.

/// Precision@K over graded relevance scores (`rel(F) = I(F)·Q(F)`): the
/// mean relevance of the top-K items (a relevance of 1.0 is a perfectly
/// relevant function). Lists shorter than K are padded with zeros, so a
/// method that returns nothing is penalized.
pub fn precision_at_k(relevances: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let sum: f64 = relevances.iter().take(k).sum();
    sum / k as f64
}

/// DCG@p with the paper's formulation `Σ rel_i / log2(i + 1)` (1-based i).
pub fn dcg(relevances: &[f64], p: usize) -> f64 {
    relevances
        .iter()
        .take(p)
        .enumerate()
        .map(|(i, rel)| rel / ((i + 2) as f64).log2())
        .sum()
}

/// NDCG@p: DCG normalized by the ideal ordering's DCG.
pub fn ndcg(relevances: &[f64], p: usize) -> f64 {
    let mut ideal = relevances.to_vec();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let idcg = dcg(&ideal, p);
    if idcg == 0.0 {
        0.0
    } else {
        dcg(relevances, p) / idcg
    }
}

/// Pooled relative recall (§8.1): `#relevant in this method's top-k`
/// divided by `#relevant in the union pool across all methods`.
pub fn relative_recall(relevant_found: usize, pool_size: usize) -> f64 {
    if pool_size == 0 {
        0.0
    } else {
        relevant_found as f64 / pool_size as f64
    }
}

/// Simple mean helper.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_at_k_basics() {
        let rel = [1.0, 0.0, 1.0];
        assert_eq!(precision_at_k(&rel, 1), 1.0);
        assert_eq!(precision_at_k(&rel, 2), 0.5);
        assert!((precision_at_k(&rel, 3) - 2.0 / 3.0).abs() < 1e-12);
        // Short lists are penalized.
        assert_eq!(precision_at_k(&rel, 6), 2.0 / 6.0);
    }

    #[test]
    fn ndcg_is_one_for_ideal_ordering() {
        let rel = [1.0, 0.8, 0.5, 0.0];
        assert!((ndcg(&rel, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_penalizes_inversions() {
        let ideal = [1.0, 0.0];
        let inverted = [0.0, 1.0];
        assert!(ndcg(&inverted, 2) < ndcg(&ideal, 2));
        assert!(ndcg(&inverted, 2) > 0.0);
    }

    #[test]
    fn ndcg_empty_is_zero() {
        assert_eq!(ndcg(&[], 5), 0.0);
        assert_eq!(ndcg(&[0.0, 0.0], 2), 0.0);
    }

    #[test]
    fn relative_recall_bounds() {
        assert_eq!(relative_recall(3, 4), 0.75);
        assert_eq!(relative_recall(0, 0), 0.0);
    }
}

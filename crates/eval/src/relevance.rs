//! The relevance model of §8.1: `rel(F) = I(F) · Q(F)`.
//!
//! `I(F)` — does the function *intend* to process the target type? The
//! corpus ground-truth labels stand in for the paper's human judge.
//!
//! `Q(F)` — holdout quality: `0.5·|pass P_test|/|P_test| +
//! 0.5·|reject N_test|/|N_test|`, with `P_test` fresh positives disjoint
//! from the training examples and `N_test` verified negatives sampled from
//! web-table values.

use autotype::{RankedFunction, Session};
use autotype_synth::quality_score;
use autotype_typesys::SemanticType;
use rand::rngs::StdRng;
use rand::Rng;

/// Holdout sets used to compute `Q(F)`.
pub struct Holdout {
    pub pos_test: Vec<String>,
    pub neg_test: Vec<String>,
}

impl Holdout {
    /// Build a holdout for a type: `n_pos` fresh positives and `n_neg`
    /// values drawn from web-table-like content, filtered to be truly
    /// negative under the ground-truth validator (the paper's human
    /// inspection).
    pub fn build(
        ty: &SemanticType,
        n_pos: usize,
        n_neg: usize,
        table_values: &[String],
        rng: &mut StdRng,
    ) -> Holdout {
        let pos_test = ty.examples(rng, n_pos);
        let mut neg_test = Vec::with_capacity(n_neg);
        let mut attempts = 0;
        while neg_test.len() < n_neg && attempts < n_neg * 20 {
            attempts += 1;
            let v = &table_values[rng.gen_range(0..table_values.len())];
            if !(ty.validate)(v) && !v.is_empty() {
                neg_test.push(v.clone());
            }
        }
        Holdout { pos_test, neg_test }
    }
}

/// Compute `rel(F)` for one ranked function. DNF-backed functions validate
/// through the synthesized DNF-E; baseline rankings (KW/LR) fall back to
/// raw acceptance semantics.
pub fn relevance(
    session: &mut Session<'_>,
    function: &RankedFunction,
    target_slug: &str,
    holdout: &Holdout,
) -> f64 {
    // I(F): intent ground truth.
    if function.intent != Some(target_slug) {
        return 0.0;
    }
    // Q(F): holdout quality.
    let use_validator = function.validator.is_some();
    let mut pos_pass = 0;
    for p in &holdout.pos_test {
        let ok = if use_validator {
            session.validate(function, p)
        } else {
            session.executes_ok(function, p)
        };
        if ok {
            pos_pass += 1;
        }
    }
    let mut neg_reject = 0;
    for n in &holdout.neg_test {
        let ok = if use_validator {
            session.validate(function, n)
        } else {
            session.executes_ok(function, n)
        };
        if !ok {
            neg_reject += 1;
        }
    }
    quality_score(
        pos_pass,
        holdout.pos_test.len(),
        neg_reject,
        holdout.neg_test.len(),
    )
}

/// Relevance scores for the top-`k` of a ranked list, padded with zeros.
pub fn top_k_relevances(
    session: &mut Session<'_>,
    ranked: &[RankedFunction],
    target_slug: &str,
    holdout: &Holdout,
    k: usize,
) -> Vec<f64> {
    let mut out: Vec<f64> = ranked
        .iter()
        .take(k)
        .map(|f| relevance(session, &f.clone(), target_slug, holdout))
        .collect();
    out.resize(k, 0.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_typesys::by_slug;
    use rand::SeedableRng;

    #[test]
    fn holdout_negatives_are_truly_negative() {
        let ty = by_slug("creditcard").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let table_values: Vec<String> = (0..200)
            .map(|i| format!("value-{i}"))
            .chain((0..50).map(|i| format!("{i}")))
            .collect();
        let holdout = Holdout::build(ty, 10, 50, &table_values, &mut rng);
        assert_eq!(holdout.pos_test.len(), 10);
        assert_eq!(holdout.neg_test.len(), 50);
        for n in &holdout.neg_test {
            assert!(!(ty.validate)(n));
        }
        for p in &holdout.pos_test {
            assert!((ty.validate)(p));
        }
    }
}

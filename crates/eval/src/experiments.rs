//! Experiment drivers regenerating every figure and table of the paper's
//! evaluation (§8–§9). Each driver is parameterized by a type subset and a
//! scale so the same code powers fast tests and the full `figures` binary.

use autotype::{AutoType, BatchValidator, NegativeMode, RankedFunction, Session};
use autotype_negative::{generate_negatives, MutationConfig, Strategy};
use autotype_rank::Method;
use autotype_tables::{
    correct_columns, detect_by_header, detect_by_pattern, detect_by_values_batched,
    generate_columns, infer_pattern, score_type, Detection, InferredPattern, SyncValueDetector,
    TableConfig, TypeOutcome, PAPER_TYPE_COUNTS,
};
use autotype_typesys::{by_slug, popular_types, registry, Coverage, SemanticType};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{mean, ndcg, precision_at_k};
use crate::relevance::{relevance, top_k_relevances, Holdout};

/// Shared evaluation configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    pub seed: u64,
    /// Training positives per test case (paper: ~20).
    pub n_pos: usize,
    /// Holdout positives (paper: 10).
    pub n_test_pos: usize,
    /// Holdout negatives from web tables (paper: 1000; scaled default).
    pub n_test_neg: usize,
    /// Ranking depth (paper: 7).
    pub k_max: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            seed: 0x5EED,
            n_pos: 20,
            n_test_pos: 10,
            n_test_neg: 100,
            k_max: 7,
        }
    }
}

/// A pool of web-table cell values used to sample holdout negatives.
pub fn table_value_pool(seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let columns = generate_columns(
        &TableConfig {
            scale: 0.005,
            untyped: 300,
            ..Default::default()
        },
        &mut rng,
    );
    columns.into_iter().flat_map(|c| c.values).collect()
}

fn build_session<'a>(
    engine: &'a AutoType,
    ty: &SemanticType,
    keyword: &str,
    positives: &[String],
    mode: NegativeMode,
    seed: u64,
) -> Option<Session<'a>> {
    let mut rng = StdRng::seed_from_u64(seed ^ ty.id as u64);
    engine.session(keyword, positives, mode, &mut rng)
}

/// Figure 8: precision@K, NDCG@K and pooled relative recall for the five
/// ranking methods over a set of types.
#[derive(Debug, Clone)]
pub struct MethodQuality {
    pub method: Method,
    pub precision_at: Vec<f64>,
    pub ndcg_at: Vec<f64>,
    pub relative_recall: f64,
}

pub fn fig8(engine: &AutoType, types: &[&SemanticType], cfg: &EvalConfig) -> Vec<MethodQuality> {
    let pool_values = table_value_pool(cfg.seed);
    let mut per_method_precision: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); cfg.k_max]; Method::ALL.len()];
    let mut per_method_ndcg: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::new(); cfg.k_max]; Method::ALL.len()];
    let mut per_method_relevant_found: Vec<usize> = vec![0; Method::ALL.len()];
    let mut pool_total = 0usize;

    for ty in types {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 1);
        let positives = ty.examples(&mut rng, cfg.n_pos);
        let Some(mut session) = build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) else {
            continue;
        };
        let holdout = Holdout::build(ty, cfg.n_test_pos, cfg.n_test_neg, &pool_values, &mut rng);
        // Pool of relevant functions across methods (relative recall).
        let mut pooled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut per_method_found: Vec<Vec<String>> = vec![Vec::new(); Method::ALL.len()];

        for (mi, method) in Method::ALL.iter().enumerate() {
            let ranked = session.rank(*method);
            let rels = top_k_relevances(&mut session, &ranked, ty.slug, &holdout, cfg.k_max);
            for k in 1..=cfg.k_max {
                per_method_precision[mi][k - 1].push(precision_at_k(&rels, k));
                per_method_ndcg[mi][k - 1].push(ndcg(&rels, k));
            }
            for (f, rel) in ranked.iter().take(cfg.k_max).zip(&rels) {
                if *rel > 0.5 {
                    pooled.insert(f.label.clone());
                    per_method_found[mi].push(f.label.clone());
                }
            }
        }
        pool_total += pooled.len();
        for (mi, found) in per_method_found.iter().enumerate() {
            per_method_relevant_found[mi] += found.iter().filter(|l| pooled.contains(*l)).count();
        }
    }

    Method::ALL
        .iter()
        .enumerate()
        .map(|(mi, method)| MethodQuality {
            method: *method,
            precision_at: per_method_precision[mi].iter().map(|xs| mean(xs)).collect(),
            ndcg_at: per_method_ndcg[mi].iter().map(|xs| mean(xs)).collect(),
            relative_recall: if pool_total == 0 {
                0.0
            } else {
                per_method_relevant_found[mi] as f64 / pool_total as f64
            },
        })
        .collect()
}

/// Figure 9 / §8.2.2: how many relevant functions AutoType finds per type.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// (type name, #relevant functions ranked).
    pub per_type: Vec<(&'static str, usize)>,
    pub covered: usize,
    pub total: usize,
    pub mean_relevant: f64,
}

pub fn fig9(engine: &AutoType, types: &[&SemanticType], cfg: &EvalConfig) -> CoverageReport {
    let mut per_type = Vec::new();
    for ty in types {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 2);
        let positives = ty.examples(&mut rng, cfg.n_pos);
        let relevant = match build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) {
            None => 0,
            Some(mut session) => session
                .rank(Method::DnfS)
                .iter()
                .filter(|f| f.intent == Some(ty.slug) && f.score > 0.8)
                .count(),
        };
        per_type.push((ty.name, relevant));
    }
    let covered = per_type.iter().filter(|(_, n)| *n > 0).count();
    let counts: Vec<f64> = per_type
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(_, n)| *n as f64)
        .collect();
    CoverageReport {
        covered,
        total: per_type.len(),
        mean_relevant: mean(&counts),
        per_type,
    }
}

/// Figures 10(a)/(b)/13: sensitivity sweeps returning precision@1..=4.
pub fn sensitivity_examples(
    engine: &AutoType,
    types: &[&SemanticType],
    cfg: &EvalConfig,
    n_examples: usize,
    noise: f64,
    method: Method,
) -> Vec<f64> {
    let pool_values = table_value_pool(cfg.seed);
    let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for ty in types {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 3);
        let mut positives = ty.examples(&mut rng, n_examples);
        // Inject noise: corrupt a fraction of the positives into invalid
        // strings (Figure 10(b)).
        let n_noise = (noise * positives.len() as f64).round() as usize;
        if n_noise > 0 {
            let corrupted = generate_negatives(
                &positives.clone(),
                Strategy::S3,
                &MutationConfig {
                    char_probability: 0.8,
                    length_probability: 0.3,
                    per_positive: 1,
                },
                &mut rng,
            );
            for i in 0..n_noise.min(corrupted.len()) {
                if !(ty.validate)(&corrupted[i]) {
                    positives[i] = corrupted[i].clone();
                }
            }
        }
        let Some(mut session) = build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) else {
            for xs in per_k.iter_mut() {
                xs.push(0.0);
            }
            continue;
        };
        let holdout = Holdout::build(ty, cfg.n_test_pos, cfg.n_test_neg, &pool_values, &mut rng);
        let ranked = session.rank(method);
        let rels = top_k_relevances(&mut session, &ranked, ty.slug, &holdout, 4);
        for k in 1..=4 {
            per_k[k - 1].push(precision_at_k(&rels, k));
        }
    }
    per_k.iter().map(|xs| mean(xs)).collect()
}

/// Figure 10(c): negative-generation ablation, precision@1..=4 per mode.
pub fn fig10c(
    engine: &AutoType,
    types: &[&SemanticType],
    cfg: &EvalConfig,
) -> Vec<(&'static str, Vec<f64>)> {
    let pool_values = table_value_pool(cfg.seed);
    let modes: [(&'static str, NegativeMode); 3] = [
        ("orig", NegativeMode::Hierarchy),
        ("only_random_neg", NegativeMode::RandomOnly),
        ("no_neg", NegativeMode::None),
    ];
    let mut out = Vec::new();
    for (label, mode) in modes {
        let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for ty in types {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 4);
            let positives = ty.examples(&mut rng, cfg.n_pos);
            let Some(mut session) =
                build_session(engine, ty, ty.keyword(), &positives, mode, cfg.seed)
            else {
                for xs in per_k.iter_mut() {
                    xs.push(0.0);
                }
                continue;
            };
            let holdout =
                Holdout::build(ty, cfg.n_test_pos, cfg.n_test_neg, &pool_values, &mut rng);
            let ranked = session.rank(Method::DnfS);
            // Functions ranked without a validator (no-neg mode) are scored
            // with raw acceptance.
            let rels: Vec<f64> = {
                let mut rels = Vec::new();
                for f in ranked.iter().take(4) {
                    rels.push(relevance(&mut session, &f.clone(), ty.slug, &holdout));
                }
                rels.resize(4, 0.0);
                rels
            };
            for k in 1..=4 {
                per_k[k - 1].push(precision_at_k(&rels, k));
            }
        }
        out.push((label, per_k.iter().map(|xs| mean(xs)).collect()));
    }
    out
}

/// Per-keyword rows of Figure 12: (keyword, precision@1..=4).
pub type KeywordRows = Vec<(&'static str, Vec<f64>)>;

/// Figure 12: keyword sensitivity — precision@1..=4 for each alternative
/// keyword of each sampled type.
pub fn fig12(engine: &AutoType, cfg: &EvalConfig) -> Vec<(&'static str, KeywordRows)> {
    const FIG12_TYPES: &[&str] = &[
        "isbn", "ipv4", "swift", "zipcode", "sedol", "isin", "vin", "rgbcolor", "fasta", "doi",
    ];
    let pool_values = table_value_pool(cfg.seed);
    let mut out = Vec::new();
    for slug in FIG12_TYPES {
        let ty = by_slug(slug).expect("fig12 type");
        let mut rows = Vec::new();
        for keyword in ty.keywords {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 5);
            let positives = ty.examples(&mut rng, cfg.n_pos);
            let rels = match build_session(
                engine,
                ty,
                keyword,
                &positives,
                NegativeMode::Hierarchy,
                cfg.seed,
            ) {
                None => vec![0.0; 4],
                Some(mut session) => {
                    let holdout =
                        Holdout::build(ty, cfg.n_test_pos, cfg.n_test_neg, &pool_values, &mut rng);
                    let ranked = session.rank(Method::DnfS);
                    top_k_relevances(&mut session, &ranked, ty.slug, &holdout, 4)
                }
            };
            let precisions = (1..=4).map(|k| precision_at_k(&rels, k)).collect();
            rows.push((*keyword, precisions));
        }
        out.push((ty.name, rows));
    }
    out
}

/// Figure 14: per-type execution cost. Fuel is the deterministic stand-in
/// for wall-clock; `fuel_per_minute` calibrates the simulated 60-minute cap.
pub fn fig14(
    engine: &AutoType,
    types: &[&SemanticType],
    cfg: &EvalConfig,
    fuel_per_minute: f64,
) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    for ty in types {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 6);
        let positives = ty.examples(&mut rng, cfg.n_pos);
        let minutes = match build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) {
            None => 0.5, // retrieval-only, finishes immediately
            Some(session) => (session.fuel_spent as f64 / fuel_per_minute).min(60.0),
        };
        out.push((ty.name, minutes));
    }
    out
}

/// One Table 2 row: per-method detections and precision for a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    pub slug: &'static str,
    pub dnf: TypeOutcome,
    pub kw: TypeOutcome,
    pub regex: TypeOutcome,
    pub union_all: usize,
}

impl Table2Row {
    /// Figure 11's F-scores for this type: (DNF-S, REGEX, KW).
    pub fn f_scores(&self) -> (f64, f64, f64) {
        (self.dnf.f_score(), self.regex.f_score(), self.kw.f_score())
    }
}

/// Header keywords per Table 2 type (the KW detection baseline).
fn header_keywords(slug: &str) -> Vec<&'static str> {
    match slug {
        "datetime" => vec!["date", "time"],
        "address" => vec!["address"],
        "country" => vec!["country"],
        "phone" => vec!["phone", "telephone"],
        "currency" => vec!["price", "cost", "currency"],
        "email" => vec!["email", "e-mail"],
        "zipcode" => vec!["zip"],
        "url" => vec!["url", "website"],
        "isbn" => vec!["isbn"],
        "ipv4" => vec!["ip"],
        "ean" => vec!["ean"],
        "upc" => vec!["upc"],
        "isin" => vec!["isin"],
        "issn" => vec!["issn"],
        "creditcard" => vec!["card"],
        _ => vec![],
    }
}

/// Per-stage wall-clock timings of one [`table2_full`] run. Clock readings
/// vary run to run; the detections and scores they cover are deterministic
/// at any worker count.
#[derive(Debug, Clone)]
pub struct Table2Timings {
    /// Exec-pool worker count of the engine that ran the experiment.
    pub workers: usize,
    /// Columns in the generated corpus.
    pub columns: usize,
    /// Per-type synthesis: session build + ranking + pattern inference.
    pub sessions_ms: f64,
    /// Batched DNF-S detection (the column × detector matrix through the
    /// exec pool).
    pub dnf_ms: f64,
    /// Header-keyword baseline detection.
    pub kw_ms: f64,
    /// Inferred-pattern baseline detection.
    pub regex_ms: f64,
}

/// Everything a [`table2`] run produces: per-type rows plus the raw
/// per-method detections (for determinism pinning) and stage timings (for
/// `figures bench-json`).
#[derive(Debug, Clone)]
pub struct Table2Output {
    pub rows: Vec<Table2Row>,
    pub dnf: Vec<Detection>,
    pub kw: Vec<Detection>,
    pub regex: Vec<Detection>,
    pub timings: Table2Timings,
}

/// Table 2 / Figure 11: column-type detection over the synthetic web-table
/// corpus, comparing the synthesized DNF-S functions, header keywords, and
/// inferred REGEX patterns.
pub fn table2(
    engine: &AutoType,
    cfg: &EvalConfig,
    table_scale: f64,
    untyped: usize,
) -> Vec<Table2Row> {
    table2_full(engine, cfg, table_scale, untyped).rows
}

/// [`table2`] with detections and stage timings exposed.
///
/// DNF-S detection is batched: each per-type synthesized validator becomes
/// a thread-safe [`BatchValidator`] handle, and the whole column × detector
/// matrix fans out through the engine's exec pool as one job per cell
/// (`detect_by_values_batched`). The merge is index-ordered with
/// first-matching-type-wins per column and the strict `> VALUE_THRESHOLD`
/// acceptance rule, so detections and `Table2Row` scores are bit-identical
/// at every worker count — the same guarantee the trace engine pins in
/// `crates/core/tests/parallel_determinism.rs`, pinned here by
/// `crates/eval/tests/batched_detection.rs`.
pub fn table2_full(
    engine: &AutoType,
    cfg: &EvalConfig,
    table_scale: f64,
    untyped: usize,
) -> Table2Output {
    let ms = |t: std::time::Instant| t.elapsed().as_secs_f64() * 1e3;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7AB1E);
    let columns = generate_columns(
        &TableConfig {
            scale: table_scale,
            untyped,
            ..Default::default()
        },
        &mut rng,
    );

    // Build one session + top-1 function per type.
    let t = std::time::Instant::now();
    let mut sessions: Vec<(&'static str, Session<'_>, RankedFunction)> = Vec::new();
    let mut patterns: Vec<(&'static str, Option<InferredPattern>)> = Vec::new();
    for (slug, _) in PAPER_TYPE_COUNTS {
        let ty = by_slug(slug).expect("table type");
        let mut ty_rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 7);
        let positives = ty.examples(&mut ty_rng, cfg.n_pos);
        patterns.push((ty.slug, infer_pattern(&positives)));
        if let Some(mut session) = build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) {
            let ranked = session.rank(Method::DnfS);
            if let Some(top) = ranked.into_iter().next() {
                sessions.push((ty.slug, session, top));
            }
        }
    }
    let sessions_ms = ms(t);

    // DNF detection: >80% of values accepted by the synthesized validator,
    // batched through the exec pool. Functions without a validator would
    // answer false for every value (never reaching the threshold), so
    // skipping them changes nothing — including first-win priority.
    let t = std::time::Instant::now();
    let handles: Vec<(&'static str, BatchValidator<'_>)> = sessions
        .iter()
        .filter_map(|(slug, session, top)| session.batch_validator(top).map(|bv| (*slug, bv)))
        .collect();
    let detectors: Vec<SyncValueDetector<'_>> = handles
        .iter()
        .map(|(slug, bv)| {
            (
                *slug,
                Box::new(move |v: &str| bv.accepts(v)) as Box<dyn Fn(&str) -> bool + Sync>,
            )
        })
        .collect();
    let dnf_detections = detect_by_values_batched(&columns, &detectors, engine.pool());
    drop(detectors);
    // Fold the batch fuel back into each owning session's cost accounting.
    for (slug, bv) in handles {
        if let Some((_, session, _)) = sessions.iter_mut().find(|(s, _, _)| *s == slug) {
            session.absorb_batch(bv);
        }
    }
    let dnf_ms = ms(t);

    let t = std::time::Instant::now();
    let keywords: Vec<(&'static str, Vec<&'static str>)> = PAPER_TYPE_COUNTS
        .iter()
        .map(|(slug, _)| (*slug, header_keywords(slug)))
        .collect();
    let kw_detections = detect_by_header(&columns, &keywords);
    let kw_ms = ms(t);
    let t = std::time::Instant::now();
    let regex_detections = detect_by_pattern(&columns, &patterns);
    let regex_ms = ms(t);

    let rows = PAPER_TYPE_COUNTS
        .iter()
        .map(|(slug, _)| {
            let mut union = correct_columns(&dnf_detections, &columns, slug);
            union.extend(correct_columns(&kw_detections, &columns, slug));
            union.extend(correct_columns(&regex_detections, &columns, slug));
            Table2Row {
                slug,
                dnf: score_type(&dnf_detections, &columns, slug, &union),
                kw: score_type(&kw_detections, &columns, slug, &union),
                regex: score_type(&regex_detections, &columns, slug, &union),
                union_all: union.len(),
            }
        })
        .collect();
    Table2Output {
        rows,
        dnf: dnf_detections,
        kw: kw_detections,
        regex: regex_detections,
        timings: Table2Timings {
            workers: engine.workers(),
            columns: columns.len(),
            sessions_ms,
            dnf_ms,
            kw_ms,
            regex_ms,
        },
    }
}

/// Table 3: semantic transformations per popular type — names of the
/// harvested derived columns from the top functions.
pub fn table3(engine: &AutoType, cfg: &EvalConfig) -> Vec<(&'static str, Vec<String>)> {
    let mut out = Vec::new();
    for ty in popular_types() {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (ty.id as u64) << 8);
        let positives = ty.examples(&mut rng, cfg.n_pos);
        let Some(mut session) = build_session(
            engine,
            ty,
            ty.keyword(),
            &positives,
            NegativeMode::Hierarchy,
            cfg.seed,
        ) else {
            out.push((ty.name, Vec::new()));
            continue;
        };
        let ranked = session.rank(Method::DnfS);
        let mut names: Vec<String> = Vec::new();
        // The paper inspects the top-10 functions; our ranked lists are
        // shorter, so inspect every relevant ranked function.
        for f in ranked.iter().take(16).cloned().collect::<Vec<_>>() {
            if f.intent != Some(ty.slug) {
                continue;
            }
            for t in session.transformations(&f) {
                if !names.contains(&t.name) {
                    names.push(t.name.clone());
                }
            }
        }
        out.push((ty.name, names));
    }
    out
}

/// Returns the benchmark types filtered to a coverage class, or a named
/// subset by slug (test convenience).
pub fn types_by_coverage(coverage: Coverage) -> Vec<&'static SemanticType> {
    registry()
        .iter()
        .filter(|t| t.coverage == coverage)
        .collect()
}

pub fn types_by_slugs(slugs: &[&str]) -> Vec<&'static SemanticType> {
    slugs
        .iter()
        .map(|s| by_slug(s).expect("known slug"))
        .collect()
}

/// Per-stage wall-clock timings of one synthesis session, in milliseconds.
/// The clock readings vary run to run, but every *output* measured here
/// (ranking, fuel, verdicts) is deterministic at any worker count.
#[derive(Debug, Clone)]
pub struct StageTimings {
    pub slug: String,
    /// Trace-engine worker count the engine was built with.
    pub workers: usize,
    pub retrieval_ms: f64,
    /// Session build: negative generation + the candidate × example
    /// traced-execution hot loop (the stage the worker pool shards).
    pub trace_ms: f64,
    pub rank_ms: f64,
    pub validate_ms: f64,
    /// Functions in the final DNF-S ranking.
    pub ranked: usize,
    pub fuel_spent: u64,
}

/// Time each pipeline stage for one type on the given engine. Returns
/// `None` when retrieval or session construction fails for the type.
pub fn pipeline_timings(engine: &AutoType, slug: &str, cfg: &EvalConfig) -> Option<StageTimings> {
    let ms = |t: std::time::Instant| t.elapsed().as_secs_f64() * 1e3;
    let ty = by_slug(slug)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ ty.id as u64);
    let positives = ty.examples(&mut rng, cfg.n_pos);

    let t = std::time::Instant::now();
    let hits = engine.retrieve(ty.keyword());
    let retrieval_ms = ms(t);
    if hits.is_empty() {
        return None;
    }

    let t = std::time::Instant::now();
    let mut session =
        engine.session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)?;
    let trace_ms = ms(t);

    let t = std::time::Instant::now();
    let ranked = session.rank(Method::DnfS);
    let rank_ms = ms(t);

    let t = std::time::Instant::now();
    if let Some(top) = ranked.first() {
        let mut prng = StdRng::seed_from_u64(cfg.seed ^ 0xBE7C);
        for probe in ty.examples(&mut prng, cfg.n_test_pos) {
            std::hint::black_box(session.validate(top, &probe));
        }
    }
    let validate_ms = ms(t);

    Some(StageTimings {
        slug: slug.to_string(),
        workers: engine.workers(),
        retrieval_ms,
        trace_ms,
        rank_ms,
        validate_ms,
        ranked: ranked.len(),
        fuel_spent: session.fuel_spent,
    })
}

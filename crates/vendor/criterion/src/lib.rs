//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `criterion_group!`,
//! `criterion_main!` — measuring wall-clock time with `std::time::Instant`.
//! No statistical analysis, plots, or baselines: each benchmark is timed
//! over a warmup pass plus `sample_size` samples, reporting min / median /
//! mean. Use the `figures -- bench-json` mode of `autotype-bench` for
//! machine-readable timings tracked in-repo.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The per-iteration timing driver handed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup: one untimed call (fills caches, faults in lazy state).
        black_box(f());
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        sorted.len()
    );
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_count: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    report(name, &b.samples);
}

const DEFAULT_SAMPLES: usize = 20;

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Criterion's `sample_size` maps directly onto our per-bench sample
    /// count (minimum 2 to keep the median meaningful).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.sample_count, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id.id),
            self.sample_count,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, DEFAULT_SAMPLES, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: DEFAULT_SAMPLES,
            _criterion: self,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 5,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6, "warmup + samples");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`prop_assert!`] / [`prop_assert_eq!`],
//! [`strategy::Strategy`] with `prop_map`, integer-range strategies,
//! [`collection::vec`], and string strategies described by a small regex
//! subset (character classes, groups with alternation, `?`/`*`/`+`/`{m,n}`
//! quantifiers, and `\PC` for printable characters).
//!
//! Differences from upstream: a fixed number of deterministic cases per
//! test (no persisted failure seeds) and **no shrinking** — on failure the
//! generated inputs are printed as-is. That trades minimal counterexamples
//! for zero dependencies, which is what an offline build needs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases run per `proptest!` test function.
pub const DEFAULT_CASES: u32 = 64;

/// The RNG handed to strategies. A thin newtype so strategy signatures
/// don't leak the vendored rand crate.
pub struct TestRng(pub StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }

    #[inline]
    pub fn in_range(&mut self, lo: usize, hi_inclusive: usize) -> usize {
        if hi_inclusive <= lo {
            lo
        } else {
            self.0.gen_range(lo..=hi_inclusive)
        }
    }
}

/// Deterministic per-test seed derived from the test's name (FNV-1a), so
/// every test function explores its own fixed stream of cases.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of an associated type. Upstream proptest
    /// couples this with shrinking machinery; here it is pure generation.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` strategies are regex patterns generating matching strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let pattern = crate::pattern::Pattern::parse(self)
                .unwrap_or_else(|e| panic!("bad string strategy {self:?}: {e}"));
            pattern.generate(rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            self.as_str().generate(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Anything usable as the size argument of [`vec`]: a fixed length or
    /// a half-open range of lengths.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.in_range(self.start, self.end - 1)
            }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.in_range(*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` with a size drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod pattern {
    //! A tiny regex-subset *generator*: parses a pattern and produces
    //! strings matching it. Supported syntax: literals, `[...]` classes
    //! (ranges, escapes, literal `-` at the edges), `(...)` groups with
    //! `|` alternation, quantifiers `?` `*` `+` `{m}` `{m,n}`, escapes
    //! `\\ \[ \] \( \) \{ \} \- \. \| \? \* \+ \n \t`, and `\PC`
    //! (printable character). `*`/`+` are capped at 8 repetitions.

    use super::TestRng;

    const UNBOUNDED_CAP: usize = 8;

    #[derive(Debug, Clone)]
    pub enum Node {
        Literal(char),
        /// Expanded character class.
        Class(Vec<char>),
        /// Any printable character (`\PC`).
        Printable,
        /// Alternation of sequences.
        Group(Vec<Vec<Node>>),
        Repeat {
            node: Box<Node>,
            min: usize,
            max: usize,
        },
    }

    #[derive(Debug, Clone)]
    pub struct Pattern {
        seq: Vec<Node>,
    }

    impl Pattern {
        pub fn parse(pattern: &str) -> Result<Pattern, String> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut pos = 0;
            let alts = parse_alternation(&chars, &mut pos)?;
            if pos != chars.len() {
                return Err(format!("unexpected `{}` at {pos}", chars[pos]));
            }
            // A top-level alternation is a single-node sequence.
            if alts.len() == 1 {
                Ok(Pattern {
                    seq: alts.into_iter().next().unwrap(),
                })
            } else {
                Ok(Pattern {
                    seq: vec![Node::Group(alts)],
                })
            }
        }

        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for node in &self.seq {
                gen_node(node, rng, &mut out);
            }
            out
        }
    }

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(set) => {
                if !set.is_empty() {
                    out.push(set[rng.below(set.len())]);
                }
            }
            Node::Printable => {
                // Mostly ASCII printable, occasionally non-ASCII to keep
                // the lexer honest about multi-byte input.
                let c = if rng.below(8) == 0 {
                    ['é', 'λ', '☃', '中', '\u{00A0}'][rng.below(5)]
                } else {
                    char::from(rng.in_range(0x20, 0x7E) as u8)
                };
                out.push(c);
            }
            Node::Group(alts) => {
                let pick = &alts[rng.below(alts.len())];
                for n in pick {
                    gen_node(n, rng, out);
                }
            }
            Node::Repeat { node, min, max } => {
                let n = rng.in_range(*min, *max);
                for _ in 0..n {
                    gen_node(node, rng, out);
                }
            }
        }
    }

    fn parse_alternation(chars: &[char], pos: &mut usize) -> Result<Vec<Vec<Node>>, String> {
        let mut alts = vec![Vec::new()];
        while *pos < chars.len() {
            match chars[*pos] {
                ')' => break,
                '|' => {
                    *pos += 1;
                    alts.push(Vec::new());
                }
                _ => {
                    let atom = parse_atom(chars, pos)?;
                    let atom = parse_quantifier(chars, pos, atom)?;
                    alts.last_mut().unwrap().push(atom);
                }
            }
        }
        Ok(alts)
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let alts = parse_alternation(chars, pos)?;
                if *pos >= chars.len() || chars[*pos] != ')' {
                    return Err("unclosed group".into());
                }
                *pos += 1;
                Ok(Node::Group(alts))
            }
            '[' => {
                *pos += 1;
                parse_class(chars, pos)
            }
            '\\' => {
                *pos += 1;
                if *pos >= chars.len() {
                    return Err("dangling escape".into());
                }
                let c = chars[*pos];
                *pos += 1;
                match c {
                    'P' | 'p' => {
                        // Unicode category escape: consume the category
                        // letter (only `C`/printable is used here).
                        if *pos < chars.len() {
                            *pos += 1;
                        }
                        Ok(Node::Printable)
                    }
                    'n' => Ok(Node::Literal('\n')),
                    't' => Ok(Node::Literal('\t')),
                    'r' => Ok(Node::Literal('\r')),
                    'd' => Ok(Node::Class(('0'..='9').collect())),
                    'w' => {
                        let mut set: Vec<char> = ('a'..='z').collect();
                        set.extend('A'..='Z');
                        set.extend('0'..='9');
                        set.push('_');
                        Ok(Node::Class(set))
                    }
                    's' => Ok(Node::Class(vec![' ', '\t'])),
                    other => Ok(Node::Literal(other)),
                }
            }
            '.' => {
                *pos += 1;
                Ok(Node::Printable)
            }
            c => {
                *pos += 1;
                Ok(Node::Literal(c))
            }
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while *pos < chars.len() && chars[*pos] != ']' {
            let c = chars[*pos];
            if c == '\\' {
                *pos += 1;
                if *pos >= chars.len() {
                    return Err("dangling escape in class".into());
                }
                let e = chars[*pos];
                *pos += 1;
                let lit = match e {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                set.push(lit);
                prev = Some(lit);
            } else if c == '-'
                && prev.is_some()
                && *pos + 1 < chars.len()
                && chars[*pos + 1] != ']'
            {
                // Range: expand prev..=next.
                let lo = prev.unwrap();
                let hi = chars[*pos + 1];
                *pos += 2;
                if lo > hi {
                    return Err(format!("bad class range {lo}-{hi}"));
                }
                set.pop();
                for v in lo..=hi {
                    set.push(v);
                }
                prev = None;
            } else {
                *pos += 1;
                set.push(c);
                prev = Some(c);
            }
        }
        if *pos >= chars.len() {
            return Err("unclosed character class".into());
        }
        *pos += 1; // consume `]`
        set.sort_unstable();
        set.dedup();
        Ok(Node::Class(set))
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, node: Node) -> Result<Node, String> {
        if *pos >= chars.len() {
            return Ok(node);
        }
        let (min, max) = match chars[*pos] {
            '?' => {
                *pos += 1;
                (0, 1)
            }
            '*' => {
                *pos += 1;
                (0, UNBOUNDED_CAP)
            }
            '+' => {
                *pos += 1;
                (1, UNBOUNDED_CAP)
            }
            '{' => {
                *pos += 1;
                let mut first = String::new();
                while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                    first.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = first.parse().map_err(|_| "bad repeat count")?;
                let max = if *pos < chars.len() && chars[*pos] == ',' {
                    *pos += 1;
                    let mut second = String::new();
                    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                        second.push(chars[*pos]);
                        *pos += 1;
                    }
                    second.parse().map_err(|_| "bad repeat count")?
                } else {
                    min
                };
                if *pos >= chars.len() || chars[*pos] != '}' {
                    return Err("unclosed repetition".into());
                }
                *pos += 1;
                (min, max)
            }
            _ => return Ok(node),
        };
        Ok(Node::Repeat {
            node: Box::new(node),
            min,
            max,
        })
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run a closure-based test over [`DEFAULT_CASES`] deterministic cases.
/// `describe` renders the generated inputs for the failure message.
pub fn run_cases<F: FnMut(&mut TestRng) -> Result<(), String>>(test_name: &str, mut case: F) {
    let mut rng = TestRng::from_seed(seed_for(test_name));
    for i in 0..DEFAULT_CASES {
        if let Err(msg) = case(&mut rng) {
            panic!("property `{test_name}` failed on case {i}: {msg}");
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: `{}`: {} at {}:{}",
                stringify!($cond),
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}` (both: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            ));
        }
    }};
}

/// The `proptest!` block: each contained `#[test] fn name(arg in strategy,
/// ...) { body }` expands to a normal test running [`DEFAULT_CASES`]
/// deterministic cases. `prop_assert*` failures report the inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    // `#[test]` is captured by the attribute repetition (as in upstream
    // proptest) and re-emitted onto the generated zero-argument fn.
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            $crate::run_cases(stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                // Rendered eagerly: the body may move the inputs.
                let mut rendered = String::new();
                $(
                    rendered.push_str(concat!(stringify!($arg), " = "));
                    rendered.push_str(&format!("{:?}; ", $arg));
                )+
                let run = || -> Result<(), String> { $body Ok(()) };
                run().map_err(|e| format!("{e} [inputs: {rendered}]"))
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::pattern::Pattern;
    use crate::strategy::Strategy;
    use crate::TestRng;

    fn sample(pat: &str, seed: u64) -> String {
        let mut rng = TestRng::from_seed(seed);
        Pattern::parse(pat).unwrap().generate(&mut rng)
    }

    #[test]
    fn class_with_ranges_and_edge_dash() {
        for seed in 0..50 {
            let s = sample("[a-zA-Z0-9.:, -]{3,24}", seed);
            assert!((3..=24).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".:, -".contains(c)));
        }
    }

    #[test]
    fn groups_alternation_and_optional() {
        for seed in 0..50 {
            let s = sample("( {0,8})(def |if |return |x = )?[a-z]{0,5}", seed);
            let trimmed = s.trim_start_matches(' ');
            let rest = ["def ", "if ", "return ", "x = "]
                .iter()
                .find_map(|p| trimmed.strip_prefix(p))
                .unwrap_or(trimmed);
            assert!(rest.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn escaped_metacharacters_in_classes() {
        for seed in 0..50 {
            let s = sample("[a-z0-9 +\\-*/=():\\[\\]{}'\",.]{0,30}", seed);
            assert!(s.chars().count() <= 30);
        }
    }

    #[test]
    fn printable_escape_generates_printables() {
        for seed in 0..20 {
            let s = sample("\\PC{0,200}", seed);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn vec_strategy_and_prop_map() {
        let strat = crate::collection::vec(0u8..10, 3usize)
            .prop_map(|ds| ds.into_iter().map(|d| char::from(b'0' + d)).collect::<String>());
        let mut rng = TestRng::from_seed(1);
        for _ in 0..20 {
            let s = strat.generate(&mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_digit()));
        }
    }

    proptest! {
        /// The macro itself works end-to-end.
        #[test]
        fn macro_roundtrip(x in 0u64..100, s in "[ab]{1,4}") {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty() && s.len() <= 4, "bad length {}", s.len());
            prop_assert_eq!(s.chars().filter(|c| *c == 'a' || *c == 'b').count(), s.chars().count());
        }
    }
}

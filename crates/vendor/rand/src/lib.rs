//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool`. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic across platforms and runs, which is
//! all the reproduction requires (every seed is explicit; see DESIGN.md §7).
//!
//! Numbers produced differ from upstream `rand`'s ChaCha-based `StdRng`,
//! so absolute figure values differ from a build against crates.io, but
//! every run of *this* workspace is bit-identical.

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly. Blanket-implemented for
/// `Range<T>` / `RangeInclusive<T>` over every [`SampleUniform`] type, so
/// integer-literal ranges unify with the surrounding expression's type
/// (`b'0' + rng.gen_range(0..10)` infers `u8`, as with upstream rand).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types uniformly sampleable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Sample uniformly from `[0, span)` by widening multiplication (Lemire);
/// the bias without rejection is < 2^-64 per draw — irrelevant for test
/// data generation, and crucially deterministic.
#[inline]
fn bounded(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate seed for xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u8..=9);
            assert!(y <= 9);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

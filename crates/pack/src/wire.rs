//! Wire primitives for the pack format: a bounds-checked little-endian
//! reader/writer pair plus the IEEE CRC-32 used to seal payloads.
//!
//! Every multi-byte integer is little-endian. Strings are a `u32` byte
//! length followed by UTF-8 bytes. The reader never panics on truncated or
//! garbage input — every decode path returns [`WireError`].

/// Decode-side failures. The pack layer maps these onto `PackError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced field did.
    Truncated,
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length or tag field exceeded its sanity bound.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` as its IEEE-754 bit pattern (bit-exact round trip, NaN safe).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked decoder over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Sanity cap for any single length field (strings, lists). A valid pack is
/// a few kilobytes; anything claiming a multi-megabyte field is corrupt and
/// must fail fast instead of attempting the allocation.
pub const MAX_FIELD_LEN: u32 = 1 << 24;

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool")),
        }
    }

    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::Malformed("string length"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// A list length, checked against the sanity cap.
    pub fn list_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::Malformed(what));
        }
        Ok(len as usize)
    }
}

/// IEEE CRC-32 (the polynomial of zip/png), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// FNV-1a over a byte slice — the content hash behind deterministic pack
/// ids (not a seal; the seal is [`crc32`]).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(65535);
        w.u32(123_456_789);
        w.u64(u64::MAX);
        w.f64(-0.125);
        w.bool(true);
        w.bool(false);
        w.str("héllo ∧ wörld");
        w.str("");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo ∧ wörld");
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let mut w = Writer::new();
        w.str("0123456789");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_lengths_are_rejected_without_allocating() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // announced string length: 4 GiB
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.str(), Err(WireError::Malformed("string length")));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for "123456789" under IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bad_bool_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::Malformed("bool")));
    }
}

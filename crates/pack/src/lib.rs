//! # autotype-pack — versioned binary detector packs
//!
//! The paper's end product is the synthesized validator (§5.3, Appendix G):
//! a cheap Boolean function meant to be reused long after the expensive
//! mine-trace-rank pipeline has run. A **detector pack** is that validator
//! made durable — a deterministic, std-only binary serialization of
//! everything needed to answer `accepts(value)` again in a fresh process
//! with **zero re-synthesis and zero re-tracing**:
//!
//! * the expanded DNF-E clauses (trace literals over `SiteId`s),
//! * the candidate program snapshot — every source file of the executor's
//!   program at export time, **in order**, so re-parsing reproduces the
//!   exact file ids the literals reference,
//! * the entry point and invocation variant,
//! * the slice of the simulated pip index, so dynamic installs during a
//!   probe replay identically,
//! * ranking metadata and provenance (score, explanation, repository,
//!   mutation strategy) for observability.
//!
//! ## Byte layout (version 1)
//!
//! ```text
//! magic    4 bytes  b"ATPK"
//! version  u16      format version (currently 1)
//! length   u64      payload byte count
//! payload  ...      fields below, little-endian
//! crc32    u32      IEEE CRC-32 over the payload
//! ```
//!
//! Readers reject unknown magic, versions newer than they understand, and
//! payloads whose CRC does not match — always with an error, never a panic.
//! Versioning rule: additive fields bump the version and are appended to
//! the payload tail; field reordering or re-typing requires a new magic.
//!
//! [`Pack::validator`] rehydrates a [`PackValidator`] — the owned,
//! thread-safe analogue of the session's batch handle: each `accepts` call
//! clones the snapshot executor (Arc-shallow) and is a pure function of its
//! input, so verdicts are bit-identical to the in-process session validator
//! at any concurrency.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use autotype_exec::{probe_trace, Candidate, EntryPoint, Executor, Literal, PackageIndex};
use autotype_lang::{Program, SiteId, ValueSummary};
use autotype_synth::SynthesizedValidator;

mod wire;

pub use wire::{crc32, fnv1a, WireError};
use wire::{Reader, Writer};

/// File magic: "AutoType PacK".
pub const MAGIC: [u8; 4] = *b"ATPK";

/// Current format version.
pub const FORMAT_VERSION: u16 = 1;

/// Conventional file extension for packs on disk.
pub const PACK_EXTENSION: &str = "atpk";

/// Everything that can go wrong writing, reading, or rehydrating a pack.
#[derive(Debug)]
pub enum PackError {
    Io(std::io::Error),
    /// Fewer bytes than the fixed header, or a field running past the end.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Written by a newer format than this reader understands.
    UnsupportedVersion(u16),
    /// The payload CRC-32 does not match the sealed value.
    CorruptCrc {
        expected: u32,
        found: u32,
    },
    /// Structurally invalid payload (bad tag, bad UTF-8, absurd length).
    Malformed(String),
    /// A snapshot source file no longer parses (format-compatible but
    /// semantically broken pack).
    Parse(String),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Io(e) => write!(f, "pack I/O error: {e}"),
            PackError::Truncated => write!(f, "pack truncated"),
            PackError::BadMagic(m) => write!(f, "bad pack magic {m:?}"),
            PackError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "pack version {v} is newer than supported {FORMAT_VERSION}"
                )
            }
            PackError::CorruptCrc { expected, found } => {
                write!(
                    f,
                    "pack CRC mismatch: sealed {expected:#010x}, computed {found:#010x}"
                )
            }
            PackError::Malformed(what) => write!(f, "malformed pack: {what}"),
            PackError::Parse(what) => write!(f, "pack source no longer parses: {what}"),
        }
    }
}

impl std::error::Error for PackError {}

impl From<std::io::Error> for PackError {
    fn from(e: std::io::Error) -> PackError {
        PackError::Io(e)
    }
}

impl From<WireError> for PackError {
    fn from(e: WireError) -> PackError {
        match e {
            WireError::Truncated => PackError::Truncated,
            other => PackError::Malformed(other.to_string()),
        }
    }
}

/// A complete compiled detector, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct Pack {
    /// Benchmark-type slug this detector was synthesized for.
    pub slug: String,
    /// The search keyword the synthesis session used.
    pub keyword: String,
    /// Display label (`repo/file.entry`).
    pub label: String,
    /// Provenance: repository the candidate was mined from.
    pub repo_name: String,
    /// Provenance: module (file) name the candidate lives in.
    pub file: String,
    /// Provenance: accepted mutation strategy (empty when none separated).
    pub strategy: String,
    /// Ranking method that selected this function (e.g. `DNF-S`).
    pub method: String,
    /// Positive coverage (primary ranking score).
    pub score: f64,
    /// Negative coverage (tie-breaker).
    pub neg_fraction: f64,
    /// Human-readable concise DNF.
    pub explanation: String,
    /// Execution fuel per probe run.
    pub fuel: u64,
    /// Install count of the snapshot executor (accounting continuity).
    pub installs: u64,
    /// File id of the candidate's module within `files`.
    pub candidate_file: u32,
    /// How the candidate is invoked.
    pub entry: EntryPoint,
    /// The executor's program snapshot: `(module name, source)` in file-id
    /// order. Order is load-bearing — every `SiteId.file` in `dnf_e` indexes
    /// into it.
    pub files: Vec<(String, String)>,
    /// The pip-index slice available for dynamic installs during probes.
    pub packages: Vec<(String, String)>,
    /// The expanded DNF-E: disjunction of conjunctions of trace literals.
    pub dnf_e: Vec<Vec<Literal>>,
}

impl Pack {
    /// Deterministic content-derived identity: the slug plus an FNV-1a hash
    /// of the serialized payload. Two packs with the same id hold the same
    /// detector byte for byte.
    pub fn pack_id(&self) -> String {
        format!("{}-{:016x}", self.slug, fnv1a(&self.payload()))
    }

    /// Serialize to the full on-disk format (header + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut w = Writer::new();
        for b in MAGIC {
            w.u8(b);
        }
        w.u16(FORMAT_VERSION);
        w.u64(payload.len() as u64);
        let mut out = w.into_bytes();
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out
    }

    /// Parse the on-disk format, verifying magic, version, and CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Pack, PackError> {
        let mut r = Reader::new(bytes);
        let magic: [u8; 4] = [r.u8()?, r.u8()?, r.u8()?, r.u8()?];
        if magic != MAGIC {
            return Err(PackError::BadMagic(magic));
        }
        let version = r.u16()?;
        if version == 0 || version > FORMAT_VERSION {
            return Err(PackError::UnsupportedVersion(version));
        }
        let payload_len = r.u64()?;
        if payload_len > bytes.len() as u64 {
            return Err(PackError::Truncated);
        }
        if r.remaining() as u64 != payload_len + 4 {
            // Trailing garbage or a short CRC field: either way the seal
            // cannot be trusted.
            return Err(PackError::Truncated);
        }
        // Header: magic (4) + version (2) + payload length (8).
        const HEADER_LEN: usize = 14;
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len as usize];
        let mut tail = Reader::new(&bytes[HEADER_LEN + payload_len as usize..]);
        let expected = tail.u32()?;
        let found = crc32(payload);
        if expected != found {
            return Err(PackError::CorruptCrc { expected, found });
        }
        Pack::decode_payload(payload)
    }

    /// Write the pack to a file (atomically: temp file + rename, so a
    /// crashed writer never leaves a half-pack behind for the loader).
    pub fn save(&self, path: &Path) -> Result<(), PackError> {
        let tmp = path.with_extension("atpk.tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and parse a pack file.
    pub fn load(path: &Path) -> Result<Pack, PackError> {
        Pack::from_bytes(&std::fs::read(path)?)
    }

    /// Rehydrate the runtime validator: re-parse the program snapshot in
    /// file-id order, rebuild the executor **without** re-running static
    /// dependency resolution, and wrap the DNF-E.
    pub fn validator(&self) -> Result<PackValidator, PackError> {
        let mut program = Program::new();
        for (name, source) in &self.files {
            program
                .add_file(name, source)
                .map_err(|e| PackError::Parse(format!("{name}: {e}")))?;
        }
        let mut packages = PackageIndex::new();
        for (name, source) in &self.packages {
            packages.insert(name, source);
        }
        if self.candidate_file as usize >= self.files.len() {
            return Err(PackError::Malformed(format!(
                "candidate file id {} out of range ({} files)",
                self.candidate_file,
                self.files.len()
            )));
        }
        Ok(PackValidator {
            pack_id: self.pack_id(),
            slug: self.slug.clone(),
            label: self.label.clone(),
            packages,
            candidate: Candidate {
                file: self.candidate_file,
                entry: self.entry.clone(),
            },
            exec: Executor::from_snapshot(program, self.fuel, self.installs as usize),
            validator: SynthesizedValidator {
                dnf_e: self.dnf_e.clone(),
            },
            fuel: AtomicU64::new(0),
        })
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.str(&self.slug);
        w.str(&self.keyword);
        w.str(&self.label);
        w.str(&self.repo_name);
        w.str(&self.file);
        w.str(&self.strategy);
        w.str(&self.method);
        w.f64(self.score);
        w.f64(self.neg_fraction);
        w.str(&self.explanation);
        w.u64(self.fuel);
        w.u64(self.installs);
        w.u32(self.candidate_file);
        write_entry(&mut w, &self.entry);
        w.u32(self.files.len() as u32);
        for (name, source) in &self.files {
            w.str(name);
            w.str(source);
        }
        w.u32(self.packages.len() as u32);
        for (name, source) in &self.packages {
            w.str(name);
            w.str(source);
        }
        w.u32(self.dnf_e.len() as u32);
        for clause in &self.dnf_e {
            w.u32(clause.len() as u32);
            for literal in clause {
                write_literal(&mut w, literal);
            }
        }
        w.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> Result<Pack, PackError> {
        let mut r = Reader::new(payload);
        let slug = r.str()?;
        let keyword = r.str()?;
        let label = r.str()?;
        let repo_name = r.str()?;
        let file = r.str()?;
        let strategy = r.str()?;
        let method = r.str()?;
        let score = r.f64()?;
        let neg_fraction = r.f64()?;
        let explanation = r.str()?;
        let fuel = r.u64()?;
        let installs = r.u64()?;
        let candidate_file = r.u32()?;
        let entry = read_entry(&mut r)?;
        let n_files = r.list_len("file count")?;
        let mut files = Vec::with_capacity(n_files.min(1024));
        for _ in 0..n_files {
            files.push((r.str()?, r.str()?));
        }
        let n_packages = r.list_len("package count")?;
        let mut packages = Vec::with_capacity(n_packages.min(1024));
        for _ in 0..n_packages {
            packages.push((r.str()?, r.str()?));
        }
        let n_clauses = r.list_len("clause count")?;
        let mut dnf_e = Vec::with_capacity(n_clauses.min(1024));
        for _ in 0..n_clauses {
            let n_literals = r.list_len("literal count")?;
            let mut clause = Vec::with_capacity(n_literals.min(1024));
            for _ in 0..n_literals {
                clause.push(read_literal(&mut r)?);
            }
            dnf_e.push(clause);
        }
        if r.remaining() != 0 {
            return Err(PackError::Malformed(format!(
                "{} unread payload bytes",
                r.remaining()
            )));
        }
        Ok(Pack {
            slug,
            keyword,
            label,
            repo_name,
            file,
            strategy,
            method,
            score,
            neg_fraction,
            explanation,
            fuel,
            installs,
            candidate_file,
            entry,
            files,
            packages,
            dnf_e,
        })
    }
}

fn write_entry(w: &mut Writer, entry: &EntryPoint) {
    match entry {
        EntryPoint::Function { name } => {
            w.u8(0);
            w.str(name);
        }
        EntryPoint::MethodWithParam { class, method } => {
            w.u8(1);
            w.str(class);
            w.str(method);
        }
        EntryPoint::CtorThenMethod { class, method } => {
            w.u8(2);
            w.str(class);
            w.str(method);
        }
        EntryPoint::ArgvFunction { name } => {
            w.u8(3);
            w.str(name);
        }
        EntryPoint::StdinFunction { name } => {
            w.u8(4);
            w.str(name);
        }
        EntryPoint::FileFunction { name, takes_path } => {
            w.u8(5);
            w.str(name);
            w.bool(*takes_path);
        }
        EntryPoint::ScriptConstant { variable } => {
            w.u8(6);
            w.str(variable);
        }
    }
}

fn read_entry(r: &mut Reader<'_>) -> Result<EntryPoint, PackError> {
    Ok(match r.u8()? {
        0 => EntryPoint::Function { name: r.str()? },
        1 => EntryPoint::MethodWithParam {
            class: r.str()?,
            method: r.str()?,
        },
        2 => EntryPoint::CtorThenMethod {
            class: r.str()?,
            method: r.str()?,
        },
        3 => EntryPoint::ArgvFunction { name: r.str()? },
        4 => EntryPoint::StdinFunction { name: r.str()? },
        5 => EntryPoint::FileFunction {
            name: r.str()?,
            takes_path: r.bool()?,
        },
        6 => EntryPoint::ScriptConstant { variable: r.str()? },
        tag => return Err(PackError::Malformed(format!("entry-point tag {tag}"))),
    })
}

fn write_literal(w: &mut Writer, literal: &Literal) {
    match literal {
        Literal::Branch { site, taken } => {
            w.u8(0);
            w.u32(site.file);
            w.u32(site.line);
            w.bool(*taken);
        }
        Literal::Ret { site, value } => {
            w.u8(1);
            w.u32(site.file);
            w.u32(site.line);
            let (tag, flag) = match value {
                ValueSummary::Bool(b) => (0u8, *b),
                ValueSummary::NumZero(z) => (1, *z),
                ValueSummary::LenZero(z) => (2, *z),
                ValueSummary::IsNone(n) => (3, *n),
            };
            w.u8(tag);
            w.bool(flag);
        }
        Literal::Exception { kind } => {
            w.u8(2);
            w.str(kind);
        }
    }
}

fn read_literal(r: &mut Reader<'_>) -> Result<Literal, PackError> {
    Ok(match r.u8()? {
        0 => Literal::Branch {
            site: SiteId::new(r.u32()?, r.u32()?),
            taken: r.bool()?,
        },
        1 => {
            let site = SiteId::new(r.u32()?, r.u32()?);
            let tag = r.u8()?;
            let flag = r.bool()?;
            let value = match tag {
                0 => ValueSummary::Bool(flag),
                1 => ValueSummary::NumZero(flag),
                2 => ValueSummary::LenZero(flag),
                3 => ValueSummary::IsNone(flag),
                t => return Err(PackError::Malformed(format!("value-summary tag {t}"))),
            };
            Literal::Ret { site, value }
        }
        2 => Literal::Exception { kind: r.str()? },
        tag => return Err(PackError::Malformed(format!("literal tag {tag}"))),
    })
}

/// The rehydrated online validator: runs the packed candidate under
/// instrumentation and checks `∧T(s) → DNF-E` (Algorithm 3), exactly like
/// the in-process session's batch handle.
///
/// Thread-safe by construction: every [`accepts`](PackValidator::accepts)
/// call clones the snapshot executor (Arc-shallow — parsed ASTs are
/// shared), so each call is a pure function of its input and dynamic
/// installs land in discarded clones. Fuel accumulates in an `AtomicU64`
/// (a commutative sum — deterministic under any schedule).
#[derive(Debug)]
pub struct PackValidator {
    pack_id: String,
    slug: String,
    label: String,
    packages: PackageIndex,
    candidate: Candidate,
    exec: Executor,
    validator: SynthesizedValidator,
    fuel: AtomicU64,
}

impl PackValidator {
    /// Content-derived pack identity (`slug-<fnv64 hex>`).
    pub fn pack_id(&self) -> &str {
        &self.pack_id
    }

    pub fn slug(&self) -> &str {
        &self.slug
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// The DNF-E itself (for explain endpoints and tests).
    pub fn dnf_e(&self) -> &[Vec<Literal>] {
        &self.validator.dnf_e
    }

    /// Algorithm 3 on one input: run, trace, check `∧T(s) → DNF-E`.
    pub fn accepts(&self, input: &str) -> bool {
        let (trace, fuel) = self.trace(input);
        self.fuel.fetch_add(fuel, Ordering::Relaxed);
        self.validator.accepts(&trace)
    }

    /// Probe and return `(verdict, fuel_used)` without touching the
    /// internal fuel counter — callers that keep their own fuel accounting
    /// (the serve runtime's metrics) use this to avoid double counting.
    pub fn accepts_with_fuel(&self, input: &str) -> (bool, u64) {
        let (trace, fuel) = self.trace(input);
        (self.validator.accepts(&trace), fuel)
    }

    /// The per-probe fuel budget baked into the pack at export time.
    pub fn fuel_budget(&self) -> u64 {
        self.exec.fuel()
    }

    /// A reusable probe slot for this validator: one executor clone that
    /// [`accepts_with_fuel_in`](Self::accepts_with_fuel_in) resets after
    /// every probe instead of recloning. A worker that holds a slot pays
    /// the snapshot clone once per lease, not once per probe.
    pub fn probe_executor(&self) -> ProbeExecutor {
        ProbeExecutor {
            exec: self.exec.clone(),
            base_files: self.exec.program().files.len(),
            base_installs: self.exec.installs,
        }
    }

    /// [`accepts_with_fuel`](Self::accepts_with_fuel) through a reusable
    /// [`ProbeExecutor`] and an optional per-probe fuel ceiling (clamped to
    /// the pack's own budget). The slot is rolled back to the pack snapshot
    /// after the run — dynamic installs are undone, the fuel budget is
    /// restored — so every probe still sees the exact rehydrated state and
    /// verdicts stay bit-identical to the clone-per-probe path.
    pub fn accepts_with_fuel_in(
        &self,
        slot: &mut ProbeExecutor,
        input: &str,
        max_fuel: Option<u64>,
    ) -> (bool, u64) {
        let budget = self.exec.fuel();
        slot.exec
            .set_fuel(max_fuel.map_or(budget, |cap| cap.min(budget)));
        let (trace, fuel) = probe_trace(&mut slot.exec, &self.candidate, input, &self.packages);
        slot.exec
            .reset_snapshot(slot.base_files, slot.base_installs);
        (self.validator.accepts(&trace), fuel)
    }

    /// The featurized probe trace for one input (with the synthetic
    /// black-box literal), without touching the fuel counter.
    pub fn trace(&self, input: &str) -> (BTreeSet<Literal>, u64) {
        let mut exec = self.exec.clone();
        probe_trace(&mut exec, &self.candidate, input, &self.packages)
    }

    /// Total fuel burned by all `accepts` calls so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.load(Ordering::Relaxed)
    }

    /// Drain the fuel counter (serve-runtime metric scraping).
    pub fn take_fuel(&self) -> u64 {
        self.fuel.swap(0, Ordering::Relaxed)
    }
}

/// A leased, reusable probe executor (see
/// [`PackValidator::probe_executor`]): the snapshot clone plus the rollback
/// point [`PackValidator::accepts_with_fuel_in`] restores after each run.
#[derive(Debug)]
pub struct ProbeExecutor {
    exec: Executor,
    base_files: usize,
    base_installs: usize,
}

/// Convenience: load a pack file and rehydrate its validator in one step.
pub fn load_pack(path: &Path) -> Result<PackValidator, PackError> {
    Pack::load(path)?.validator()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built pack around a trivial one-file program, small enough to
    /// exercise the full format without a synthesis session.
    fn sample_pack() -> Pack {
        let source =
            "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n";
        // The DNF-E: the branch on line 2 taken, and the synthetic
        // black-box return literal.
        let clause = vec![
            Literal::Branch {
                site: SiteId::new(0, 2),
                taken: true,
            },
            Literal::Ret {
                site: SiteId::new(u32::MAX, 0),
                value: ValueSummary::Bool(true),
            },
        ];
        Pack {
            slug: "evenlen".into(),
            keyword: "even length".into(),
            label: "demo/mod.is_even_len".into(),
            repo_name: "demo".into(),
            file: "mod".into(),
            strategy: "S1".into(),
            method: "DNF-S".into(),
            score: 1.0,
            neg_fraction: 0.0,
            explanation: "(b2==True)".into(),
            fuel: 10_000,
            installs: 0,
            candidate_file: 0,
            entry: EntryPoint::Function {
                name: "is_even_len".into(),
            },
            files: vec![("mod".into(), source.into())],
            packages: vec![],
            dnf_e: vec![clause],
        }
    }

    #[test]
    fn byte_round_trip_is_identity() {
        let pack = sample_pack();
        let bytes = pack.to_bytes();
        let back = Pack::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, pack);
        assert_eq!(back.pack_id(), pack.pack_id());
    }

    #[test]
    fn rehydrated_validator_detects() {
        let v = sample_pack().validator().expect("validator");
        assert!(v.accepts("abcd"));
        assert!(v.accepts(""));
        assert!(!v.accepts("abc"));
        assert!(v.fuel_spent() > 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_pack().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Pack::from_bytes(&bytes),
            Err(PackError::BadMagic(_))
        ));
    }

    #[test]
    fn newer_version_is_rejected() {
        let mut bytes = sample_pack().to_bytes();
        bytes[4..6].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert!(matches!(
            Pack::from_bytes(&bytes),
            Err(PackError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let bytes = sample_pack().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Pack::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_of_payload_is_caught() {
        let pack = sample_pack();
        let bytes = pack.to_bytes();
        // Flip one bit in every payload byte: the CRC must catch each.
        for i in 18..bytes.len() - 4 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                matches!(
                    Pack::from_bytes(&corrupt),
                    Err(PackError::CorruptCrc { .. })
                ),
                "flip at byte {i} must fail the CRC"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_pack().to_bytes();
        bytes.push(0);
        assert!(Pack::from_bytes(&bytes).is_err());
    }

    #[test]
    fn reused_executor_matches_clone_per_probe() {
        let v = sample_pack().validator().expect("validator");
        let mut slot = v.probe_executor();
        for input in ["abcd", "", "abc", "x", "abcdef", "odd"] {
            let (cloned, cloned_fuel) = v.accepts_with_fuel(input);
            let (reused, reused_fuel) = v.accepts_with_fuel_in(&mut slot, input, None);
            assert_eq!(reused, cloned, "verdict drift on {input:?}");
            assert_eq!(reused_fuel, cloned_fuel, "fuel drift on {input:?}");
        }
    }

    #[test]
    fn reused_executor_rolls_back_dynamic_installs() {
        // The candidate imports `latelib` inside its body: invisible until
        // run time, so every probe triggers the dynamic install loop. The
        // reused slot must roll the install back after each probe and still
        // answer identically to a fresh clone.
        let source = "def f(s):\n    import latelib\n    if latelib.short(s):\n        return True\n    return False\n";
        let pack = Pack {
            files: vec![("mod".into(), source.into())],
            packages: vec![(
                "latelib".into(),
                "def short(s):\n    if len(s) < 3:\n        return True\n    return False\n".into(),
            )],
            entry: EntryPoint::Function { name: "f".into() },
            ..sample_pack()
        };
        let v = pack.validator().expect("validator");
        let mut slot = v.probe_executor();
        for input in ["ab", "abcd", "", "abc"] {
            let (cloned, cloned_fuel) = v.accepts_with_fuel(input);
            let (reused, reused_fuel) = v.accepts_with_fuel_in(&mut slot, input, None);
            assert_eq!(reused, cloned, "verdict drift on {input:?}");
            assert_eq!(reused_fuel, cloned_fuel, "fuel drift on {input:?}");
        }
    }

    #[test]
    fn fuel_ceiling_clamps_to_pack_budget_and_caps_runs() {
        let v = sample_pack().validator().expect("validator");
        assert_eq!(v.fuel_budget(), 10_000);
        let mut slot = v.probe_executor();
        // A cap above the budget clamps down to the budget: same verdict,
        // same fuel as the uncapped probe.
        let uncapped = v.accepts_with_fuel_in(&mut slot, "abcd", None);
        assert_eq!(
            v.accepts_with_fuel_in(&mut slot, "abcd", Some(u64::MAX)),
            uncapped
        );
        // A starvation cap exhausts fuel: the probe cannot accept and burns
        // at most the cap. The cap must not leak into later probes.
        let (verdict, fuel) = v.accepts_with_fuel_in(&mut slot, "abcd", Some(1));
        assert!(!verdict, "starved probe cannot accept");
        assert!(fuel <= 1, "burned {fuel} with cap 1");
        assert_eq!(v.accepts_with_fuel_in(&mut slot, "abcd", None), uncapped);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("autotype-pack-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evenlen.atpk");
        let pack = sample_pack();
        pack.save(&path).expect("save");
        let back = Pack::load(&path).expect("load");
        assert_eq!(back, pack);
        std::fs::remove_file(&path).ok();
    }
}

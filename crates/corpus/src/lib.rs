//! # autotype-corpus — the synthetic open-source universe
//!
//! AutoType mines GitHub and Gist; a Rust reproduction cannot crawl and
//! execute arbitrary Python, so this crate *generates* the universe the
//! system searches: repositories of PyLite code with realistic population
//! properties (DESIGN.md documents the substitution):
//!
//! * every **covered** benchmark type has faithful validators/parsers —
//!   mostly code "not initially written for data validation" (§8.2.2):
//!   parsers that raise on bad input, converters, class-based readers —
//!   wrapped in all six invocation variants of Appendix D.1;
//! * **sloppy** variants reproduce the §9.2 failure modes (a UPC checksum
//!   without a length check accepts ISBNs);
//! * the 24 **NoCode** types have nothing, and the 4
//!   **UnsupportedInvocation** types only have multi-step pipelines the
//!   code analysis rejects;
//! * distractor fleets create the keyword ambiguities of Figure 12
//!   ("SWIFT" the language vs. SWIFT messages; "DOI number") and the
//!   keyword-bait that sinks the KW baseline;
//! * a simulated pip index (`relib`, `checklib`) exercises the
//!   execute-parse-install-rerun loop.

pub mod build;
pub mod misc;
pub mod model;
pub mod pylite;
pub mod recipes;
pub mod snippets;
pub mod wrap;

pub use build::{build_corpus, CorpusConfig};
pub use model::{Corpus, Quality, Repository, SnippetFile};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn corpus_is_nontrivial() {
        let corpus = build_corpus(&CorpusConfig::default());
        let total_files: usize = corpus.repositories.iter().map(|r| r.files.len()).sum();
        assert!(total_files > 150, "only {total_files} files");
    }
}

//! PyLite source emitters: the "code that developers wrote" which the
//! corpus plants into synthetic repositories.
//!
//! Templates are parameterized by names/comments so repeated instantiations
//! look like independent GitHub projects, and by *quality* knobs (length
//! checks, prefix checks) so the corpus contains the sloppy variants the
//! paper observes in the wild (§9.2).

/// The shared pattern/helper package, installable from the simulated pip
/// index as `relib`.
pub fn relib_source() -> &'static str {
    r#"def all_digits(s):
    if len(s) == 0:
        return False
    for c in s:
        if not c.isdigit():
            return False
    return True

def all_hex(s):
    if len(s) == 0:
        return False
    for c in s:
        if c not in '0123456789abcdefABCDEF':
            return False
    return True

def match_shape(s, shape):
    if len(s) != len(shape):
        return False
    i = 0
    while i < len(s):
        c = s[i]
        k = shape[i]
        if k == 'd':
            if not c.isdigit():
                return False
        elif k == 'h':
            if c not in '0123456789abcdefABCDEF':
                return False
        elif k == 'u':
            if not c.isalpha():
                return False
            if not c.isupper():
                return False
        elif k == 'w':
            if not c.isalpha():
                return False
            if not c.islower():
                return False
        elif k == 'a':
            if not c.isalpha():
                return False
        elif k == 'n':
            if not c.isalnum():
                return False
        elif k == '*':
            pass
        else:
            if c != k:
                return False
        i += 1
    return True

def match_any(s, shapes):
    for p in shapes:
        if match_shape(s, p):
            return True
    return False

def int_between(s, lo, hi):
    v = int(s)
    if v < lo:
        return False
    if v > hi:
        return False
    return True

def parts_in_range(s, sep, n, lo, hi):
    parts = s.split(sep)
    if len(parts) != n:
        return False
    for p in parts:
        if not all_digits(p):
            return False
        v = int(p)
        if v < lo:
            return False
        if v > hi:
            return False
    return True

def strip_chars(s, chars):
    out = ''
    for c in s:
        if c not in chars:
            out = out + c
    return out
"#
}

/// Shared checksum package (`checklib` in the pip index).
pub fn checklib_source() -> &'static str {
    r#"def luhn_sum(s):
    total = 0
    flip = 0
    i = len(s) - 1
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = flip + 1
        i = i - 1
    return total

def luhn_ok(s):
    return luhn_sum(s) % 10 == 0

def gs1_check(s):
    total = 0
    flip = 0
    i = len(s) - 2
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 0:
            total = total + d * 3
        else:
            total = total + d
        flip = flip + 1
        i = i - 1
    return (10 - total % 10) % 10

def gs1_ok(s):
    if len(s) < 2:
        return False
    return gs1_check(s) == int(s[len(s) - 1])

def mod97(s):
    rem = 0
    for c in s:
        if c.isdigit():
            rem = (rem * 10 + int(c)) % 97
        else:
            v = ord(c.upper()) - 55
            if v < 10:
                raise ValueError('bad character')
            if v > 35:
                raise ValueError('bad character')
            rem = (rem * 100 + v) % 97
    return rem
"#
}

/// Inline Luhn body reused by several emitters.
fn luhn_body() -> &'static str {
    r#"def luhn_total(s):
    total = 0
    flip = 0
    i = len(s) - 1
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = flip + 1
        i = i - 1
    return total
"#
}

/// Credit-card validator mirroring the paper's Listing 1: brand detection
/// from the prefix, then a Luhn checksum. `check_brand` / `check_length`
/// are the quality knobs.
pub fn creditcard_validator(func: &str, check_brand: bool, check_length: bool) -> String {
    let mut src = String::from("# validate credit card numbers using the luhn checksum\n");
    src.push_str(luhn_body());
    src.push('\n');
    src.push_str(&format!("def {func}(s):\n"));
    src.push_str("    num = s.replace(' ', '')\n    num = num.replace('-', '')\n");
    if check_length {
        src.push_str(
            "    if len(num) < 13:\n        return False\n    if len(num) > 16:\n        return False\n",
        );
    }
    src.push_str("    for c in num:\n        if not c.isdigit():\n            return False\n");
    if check_brand {
        src.push_str(
            r#"    prefix = int(num[:4])
    brand = None
    # visa starts with 4
    if prefix / 1000 == 4:
        brand = 'Visa'
    # mastercard starts with 51-55
    elif prefix / 100 >= 51 and prefix / 100 <= 55:
        brand = 'Mastercard'
    elif prefix / 100 == 34 or prefix / 100 == 37:
        brand = 'Amex'
    elif prefix == 6011:
        brand = 'Discover'
    elif prefix / 100 == 65:
        brand = 'Discover'
    if brand == None:
        return False
"#,
        );
    }
    src.push_str("    return luhn_total(num) % 10 == 0\n");
    src
}

/// A Listing-1-style class that parses a card number into brand and issuer
/// information — the re-purposed parser the paper's Figure 6 harvests
/// transformations from.
pub fn creditcard_class() -> String {
    r#"# parse credit card numbers: brand, issuer bank prefix, checksum
def luhn_total(s):
    total = 0
    flip = 0
    i = len(s) - 1
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = flip + 1
        i = i - 1
    return total

class CreditCard:
    def __init__(self, s):
        self.raw = s
        self.card_brand = None
        self.issuer_prefix = None
        self.cardnumber = None
    def read_from_number(self):
        num = self.raw.replace(' ', '')
        num = num.replace('-', '')
        prefix = int(num[:4])
        if prefix / 1000 == 4:
            self.card_brand = 'Visa'
        elif prefix / 100 >= 51 and prefix / 100 <= 55:
            self.card_brand = 'Mastercard'
        elif prefix / 100 == 34 or prefix / 100 == 37:
            self.card_brand = 'Amex'
        elif prefix == 6011:
            self.card_brand = 'Discover'
        else:
            raise ValueError('unknown card brand')
        self.issuer_prefix = num[:6]
        if luhn_total(num) % 10 == 0:
            self.cardnumber = num
        else:
            raise ValueError('checksum failed')
        return self
"#
    .to_string()
}

/// Luhn-with-fixed-length validator (IMEI = 15, UIC wagon = 12). `strip`
/// removes separators first.
pub fn luhn_fixed_len(func: &str, len: usize, comment: &str) -> String {
    format!(
        "# {comment}\n{luhn}\ndef {func}(s):\n    num = s.replace(' ', '')\n    num = num.replace('-', '')\n    if len(num) != {len}:\n        return False\n    for c in num:\n        if not c.isdigit():\n            return False\n    return luhn_total(num) % 10 == 0\n",
        luhn = luhn_body()
    )
}

/// GS1 checksum validator. `lens` = accepted lengths (empty = no length
/// check, the sloppy variant of §9.2); `prefix` = required digit prefix.
pub fn gs1_validator(func: &str, lens: &[usize], prefix: Option<&str>, comment: &str) -> String {
    let mut src = format!("# {comment}\n");
    src.push_str(
        r#"def gs1_check_digit(s):
    total = 0
    flip = 0
    i = len(s) - 2
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 0:
            total = total + d * 3
        else:
            total = total + d
        flip = flip + 1
        i = i - 1
    return (10 - total % 10) % 10
"#,
    );
    src.push('\n');
    src.push_str(&format!("def {func}(s):\n"));
    src.push_str("    num = s.replace('-', '')\n    num = num.replace(' ', '')\n");
    src.push_str("    if len(num) < 2:\n        return False\n");
    src.push_str("    for c in num:\n        if not c.isdigit():\n            return False\n");
    if !lens.is_empty() {
        let cond = lens
            .iter()
            .map(|l| format!("len(num) != {l}"))
            .collect::<Vec<_>>()
            .join(" and ");
        src.push_str(&format!("    if {cond}:\n        return False\n"));
    }
    if let Some(p) = prefix {
        src.push_str(&format!(
            "    if num[:{}] != '{p}':\n        return False\n",
            p.len()
        ));
    }
    src.push_str("    return gs1_check_digit(num) == int(num[len(num) - 1])\n");
    src
}

/// Combined ISBN-10/ISBN-13 validator, the robust dash-stripping function
/// §9.2 contrasts against the REGEX baseline.
pub fn isbn_validator(func: &str) -> String {
    format!(
        r#"# validate ISBN international standard book numbers (10 or 13 digits)
def {func}(s):
    num = s.replace('-', '')
    num = num.replace(' ', '')
    if num[:4] == 'ISBN':
        num = num[4:]
    if len(num) == 13:
        if num[:3] != '978' and num[:3] != '979':
            return False
        total = 0
        flip = 0
        i = 11
        while i >= 0:
            d = int(num[i])
            if flip % 2 == 0:
                total = total + d * 3
            else:
                total = total + d
            flip = flip + 1
            i = i - 1
        return (10 - total % 10) % 10 == int(num[12])
    elif len(num) == 10:
        total = 0
        i = 0
        while i < 10:
            c = num[i]
            if c == 'X' or c == 'x':
                if i != 9:
                    return False
                v = 10
            else:
                v = int(c)
            total = total + (i + 1) * v
            i = i + 1
        return total % 11 == 0
    return False
"#
    )
}

/// ISBN parser that decodes prefix / registration group (language area) —
/// a transformation source for Table 3.
pub fn isbn_parser() -> String {
    r#"# parse ISBN-13 into prefix, language group and check digit
def parse_isbn(s):
    num = s.replace('-', '')
    if len(num) != 13:
        raise ValueError('need isbn13')
    for c in num:
        if not c.isdigit():
            raise ValueError('digits only')
    total = 0
    flip = 0
    i = 11
    while i >= 0:
        d = int(num[i])
        if flip % 2 == 0:
            total = total + d * 3
        else:
            total = total + d
        flip = flip + 1
        i = i - 1
    if (10 - total % 10) % 10 != int(num[12]):
        raise ValueError('bad check digit')
    groups = {'0': 'English', '1': 'English', '2': 'French', '3': 'German', '4': 'Japanese', '5': 'Russian', '7': 'Chinese'}
    info = {}
    info['ean_prefix'] = num[:3]
    info['group'] = num[3]
    lang = groups.get(num[3])
    if lang == None:
        lang = 'Other'
    info['language'] = lang
    info['check_digit'] = num[12]
    return info
"#
    .to_string()
}

/// ISSN validator (weights 8..2 mod 11, X check character).
pub fn issn_validator(func: &str) -> String {
    format!(
        r#"# validate ISSN serial numbers
def {func}(s):
    num = s.replace('-', '')
    if len(num) != 8:
        return False
    total = 0
    i = 0
    while i < 7:
        if not num[i].isdigit():
            return False
        total = total + (8 - i) * int(num[i])
        i = i + 1
    c = num[7]
    if c == 'X' or c == 'x':
        check = 10
    elif c.isdigit():
        check = int(c)
    else:
        return False
    return (total + check) % 11 == 0
"#
    )
}

/// IBAN validator (rotate + mod 97), decoding the country for Table 3.
pub fn iban_validator(func: &str, parse: bool) -> String {
    let countries = "{'DE': 'Germany', 'FR': 'France', 'GB': 'United Kingdom', 'ES': 'Spain', 'IT': 'Italy', 'NL': 'Netherlands', 'CH': 'Switzerland', 'AT': 'Austria'}";
    let mut src = String::from("# validate IBAN international bank account numbers (mod 97)\n");
    src.push_str(&format!("countries = {countries}\n\n"));
    src.push_str(&format!("def {func}(s):\n"));
    src.push_str(
        r#"    num = s.replace(' ', '')
    if len(num) < 15:
        raise ValueError('too short')
    if len(num) > 34:
        raise ValueError('too long')
    country = num[:2]
    if not country.isalpha():
        raise ValueError('country code')
    if not country.isupper():
        raise ValueError('country code case')
    rotated = num[4:] + num[:4]
    rem = 0
    for c in rotated:
        if c.isdigit():
            rem = (rem * 10 + int(c)) % 97
        else:
            v = ord(c.upper()) - 55
            if v < 10:
                raise ValueError('bad char')
            if v > 35:
                raise ValueError('bad char')
            rem = (rem * 100 + v) % 97
    if rem != 1:
        raise ValueError('mod97 failed')
"#,
    );
    if parse {
        src.push_str(
            r#"    info = {}
    info['country_code'] = country
    name = countries.get(country)
    if name == None:
        name = 'Unknown'
    info['country'] = name
    info['check_digits'] = num[2:4]
    return info
"#,
        );
    } else {
        src.push_str("    return True\n");
    }
    src
}

/// LEI validator (plain mod 97 == 1 over 20 alphanumerics).
pub fn lei_validator(func: &str) -> String {
    format!(
        r#"# validate LEI legal entity identifiers (ISO 17442)
def {func}(s):
    if len(s) != 20:
        return False
    rem = 0
    for c in s:
        if c.isdigit():
            rem = (rem * 10 + int(c)) % 97
        elif c.isalpha() and c.isupper():
            v = ord(c) - 55
            rem = (rem * 100 + v) % 97
        else:
            return False
    return rem == 1
"#
    )
}

/// ISIN validator (letter expansion + Luhn).
pub fn isin_validator(func: &str) -> String {
    format!(
        r#"# validate ISIN securities identifiers (Luhn over expanded digits)
def {func}(s):
    if len(s) != 12:
        return False
    if not s[0].isalpha() or not s[1].isalpha():
        return False
    if not s[0].isupper() or not s[1].isupper():
        return False
    expanded = ''
    for c in s:
        if c.isdigit():
            expanded = expanded + c
        elif c.isupper():
            expanded = expanded + str(ord(c) - 55)
        else:
            return False
    total = 0
    flip = 0
    i = len(expanded) - 1
    while i >= 0:
        d = int(expanded[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = flip + 1
        i = i - 1
    return total % 10 == 0
"#
    )
}

/// CUSIP validator.
pub fn cusip_validator(func: &str) -> String {
    format!(
        r#"# validate CUSIP securities numbers
def {func}(s):
    if len(s) != 9:
        return False
    total = 0
    i = 0
    while i < 8:
        c = s[i]
        if c.isdigit():
            v = int(c)
        elif c.isalpha():
            v = ord(c.upper()) - 55
        elif c == '*':
            v = 36
        elif c == '@':
            v = 37
        elif c == '#':
            v = 38
        else:
            return False
        if i % 2 == 1:
            v = v * 2
        total = total + v / 10 + v % 10
        i = i + 1
    if not s[8].isdigit():
        return False
    return (10 - total % 10) % 10 == int(s[8])
"#
    )
}

/// SEDOL validator.
pub fn sedol_validator(func: &str) -> String {
    format!(
        r#"# validate SEDOL stock exchange daily official list codes
def {func}(s):
    if len(s) != 7:
        return False
    weights = [1, 3, 1, 7, 3, 9, 1]
    total = 0
    i = 0
    while i < 7:
        c = s[i]
        if c.isdigit():
            v = int(c)
        elif c.isalpha() and c.isupper():
            if c in 'AEIOU':
                return False
            v = ord(c) - 55
        else:
            return False
        total = total + weights[i] * v
        i = i + 1
    if not s[6].isdigit():
        return False
    return total % 10 == 0
"#
    )
}

/// ABA routing-number validator (3-7-1 weights).
pub fn aba_validator(func: &str) -> String {
    format!(
        r#"# validate ABA bank routing transit numbers
def {func}(s):
    if len(s) != 9:
        return False
    for c in s:
        if not c.isdigit():
            return False
    d = []
    for c in s:
        d.append(int(c))
    total = 3 * (d[0] + d[3] + d[6]) + 7 * (d[1] + d[4] + d[7]) + (d[2] + d[5] + d[8])
    return total % 10 == 0
"#
    )
}

/// VIN validator with transliteration; optionally decodes WMI / year for
/// transformations.
pub fn vin_validator(func: &str, parse: bool) -> String {
    let mut src = String::from(
        r#"# validate vehicle identification numbers (ISO 3779)
translit = {'A': 1, 'B': 2, 'C': 3, 'D': 4, 'E': 5, 'F': 6, 'G': 7, 'H': 8, 'J': 1, 'K': 2, 'L': 3, 'M': 4, 'N': 5, 'P': 7, 'R': 9, 'S': 2, 'T': 3, 'U': 4, 'V': 5, 'W': 6, 'X': 7, 'Y': 8, 'Z': 9}
regions = {'1': 'North America', '2': 'North America', '3': 'North America', '4': 'North America', '5': 'North America', 'J': 'Asia', 'K': 'Asia', 'L': 'Asia', 'S': 'Europe', 'W': 'Europe', 'Z': 'Europe'}
"#,
    );
    src.push_str(&format!("\ndef {func}(s):\n"));
    src.push_str(
        r#"    if len(s) != 17:
        raise ValueError('vin must be 17 characters')
    weights = [8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2]
    total = 0
    i = 0
    while i < 17:
        c = s[i]
        if c.isdigit():
            v = int(c)
        else:
            u = c.upper()
            if u not in translit:
                raise ValueError('illegal vin character')
            v = translit[u]
        total = total + weights[i] * v
        i = i + 1
    r = total % 11
    if r == 10:
        expected = 'X'
    else:
        expected = str(r)
    if s[8] != expected:
        raise ValueError('check digit mismatch')
"#,
    );
    if parse {
        src.push_str(
            r#"    info = {}
    info['wmi'] = s[:3]
    info['serial'] = s[11:]
    region = regions.get(s[0])
    if region == None:
        region = 'Other'
    info['region'] = region
    info['year_code'] = s[9]
    return info
"#,
        );
    } else {
        src.push_str("    return True\n");
    }
    src
}

/// IMO ship-number validator.
pub fn imo_validator(func: &str) -> String {
    format!(
        r#"# validate IMO international maritime organization ship numbers
def {func}(s):
    num = s
    if num[:4] == 'IMO ':
        num = num[4:]
    elif num[:3] == 'IMO':
        num = num[3:]
    num = num.strip()
    if len(num) != 7:
        return False
    for c in num:
        if not c.isdigit():
            return False
    total = 0
    i = 0
    while i < 6:
        total = total + int(num[i]) * (7 - i)
        i = i + 1
    return total % 10 == int(num[6])
"#
    )
}

/// NHS number validator.
pub fn nhs_validator(func: &str) -> String {
    format!(
        r#"# validate UK NHS numbers (mod 11)
def {func}(s):
    num = s.replace(' ', '')
    if len(num) != 10:
        return False
    for c in num:
        if not c.isdigit():
            return False
    total = 0
    i = 0
    while i < 9:
        total = total + int(num[i]) * (10 - i)
        i = i + 1
    check = 11 - total % 11
    if check == 11:
        check = 0
    if check == 10:
        return False
    return check == int(num[9])
"#
    )
}

/// DEA registration-number validator.
pub fn dea_validator(func: &str) -> String {
    format!(
        r#"# validate DEA registration numbers
def {func}(s):
    if len(s) != 9:
        return False
    if s[0] not in 'ABFGMPRX':
        return False
    if not s[1].isalpha():
        return False
    if not s[1].isupper():
        return False
    digits = s[2:]
    for c in digits:
        if not c.isdigit():
            return False
    total = int(digits[0]) + int(digits[2]) + int(digits[4])
    total = total + 2 * (int(digits[1]) + int(digits[3]) + int(digits[5]))
    return total % 10 == int(digits[6])
"#
    )
}

/// CAS registry-number validator.
pub fn cas_validator(func: &str) -> String {
    format!(
        r#"# validate CAS chemical registry numbers
def {func}(s):
    parts = s.split('-')
    if len(parts) != 3:
        return False
    a = parts[0]
    b = parts[1]
    c = parts[2]
    if len(a) < 2 or len(a) > 7:
        return False
    if len(b) != 2 or len(c) != 1:
        return False
    digits = a + b
    for ch in digits:
        if not ch.isdigit():
            return False
    if not c.isdigit():
        return False
    total = 0
    i = len(digits) - 1
    w = 1
    while i >= 0:
        total = total + w * int(digits[i])
        w = w + 1
        i = i - 1
    return total % 10 == int(c)
"#
    )
}

/// ORCID validator (ISO 7064 mod 11-2 over 4x4 dash groups).
pub fn orcid_validator(func: &str) -> String {
    format!(
        r#"# validate ORCID researcher identifiers (mod 11-2)
def {func}(s):
    parts = s.split('-')
    if len(parts) != 4:
        return False
    for p in parts:
        if len(p) != 4:
            return False
    compact = parts[0] + parts[1] + parts[2] + parts[3]
    total = 0
    i = 0
    while i < 15:
        if not compact[i].isdigit():
            return False
        total = (total + int(compact[i])) * 2
        i = i + 1
    remainder = total % 11
    result = (12 - remainder) % 11
    if result == 10:
        expected = 'X'
    else:
        expected = str(result)
    return compact[15] == expected
"#
    )
}

/// Chinese resident-ID validator with birth-date decoding.
pub fn chinaid_validator(func: &str) -> String {
    format!(
        r#"# validate chinese resident identity numbers (GB 11643)
def {func}(s):
    if len(s) != 18:
        raise ValueError('must be 18 characters')
    weights = [7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2]
    checkmap = '10X98765432'
    total = 0
    i = 0
    while i < 17:
        if not s[i].isdigit():
            raise ValueError('digits expected')
        total = total + int(s[i]) * weights[i]
        i = i + 1
    expected = checkmap[total % 11]
    last = s[17].upper()
    if last != expected:
        raise ValueError('check char mismatch')
    year = int(s[6:10])
    month = int(s[10:12])
    day = int(s[12:14])
    if year < 1900 or year > 2024:
        raise ValueError('year out of range')
    if month < 1 or month > 12:
        raise ValueError('month out of range')
    if day < 1 or day > 31:
        raise ValueError('day out of range')
    info = {{}}
    info['region'] = s[:6]
    info['birth_year'] = year
    info['birth_month'] = month
    return info
"#
    )
}

/// NMEA 0183 sentence validator (XOR checksum).
pub fn nmea_validator(func: &str) -> String {
    format!(
        r#"# validate NMEA 0183 GPS sentences (XOR checksum)
def {func}(s):
    if len(s) < 9:
        return False
    if s[0] != '$':
        return False
    star = s.find('*')
    if star < 0:
        return False
    payload = s[1:star]
    given = s[star + 1:]
    if len(given) != 2:
        return False
    total = 0
    for c in payload:
        v = ord(c)
        x = 0
        bit = 128
        a = total
        b = v
        while bit >= 1:
            abit = 0
            bbit = 0
            if a >= bit:
                abit = 1
                a = a - bit
            if b >= bit:
                bbit = 1
                b = b - bit
            if abit != bbit:
                x = x + bit
            bit = bit / 2
        total = x
    expected = int(given, 16)
    return total == expected
"#
    )
}

//! Invocation-variant wrappers and distractor code.
//!
//! Each wrapper rewrites a validator module so it must be invoked through a
//! different channel of Appendix D.1, giving the code-analysis stage all
//! six variants to discover.

/// Variant 4: wrap `inner` behind a `sys.argv`-reading main.
pub fn wrap_argv(module_src: &str, inner: &str) -> String {
    format!(
        "{module_src}\nimport sys\n\ndef main_from_args():\n    value = sys.argv[0]\n    return {inner}(value)\n"
    )
}

/// Variant 5: wrap `inner` behind an `input()`-reading main.
pub fn wrap_stdin(module_src: &str, inner: &str) -> String {
    format!(
        "{module_src}\n\ndef main_from_stdin():\n    value = input()\n    return {inner}(value)\n"
    )
}

/// Variant 6: wrap `inner` behind a file-reading main.
pub fn wrap_file(module_src: &str, inner: &str) -> String {
    format!(
        "{module_src}\n\ndef main_from_file():\n    fp = open('input.txt')\n    value = fp.read()\n    return {inner}(value)\n"
    )
}

/// Variant 2: class with a parameter-less constructor and a method taking
/// the value.
pub fn wrap_class_method(module_src: &str, inner: &str, class: &str) -> String {
    format!(
        "{module_src}\n\nclass {class}:\n    def __init__(self):\n        self.result = None\n    def check(self, value):\n        self.result = {inner}(value)\n        return self.result\n"
    )
}

/// Variant 3: class whose constructor takes the value, with a
/// parameter-less method.
pub fn wrap_class_ctor(module_src: &str, inner: &str, class: &str) -> String {
    format!(
        "{module_src}\n\nclass {class}:\n    def __init__(self, value):\n        self.value = value\n    def check(self):\n        return {inner}(self.value)\n"
    )
}

/// Appendix D.1 script form: a hard-coded constant the analyzer rewrites.
pub fn wrap_script(module_src: &str, inner: &str, example: &str) -> String {
    let escaped = example
        .replace('\\', "\\\\")
        .replace('\'', "\\'")
        .replace('\n', "\\n");
    format!("{module_src}\n\nsample_value = '{escaped}'\nresult = {inner}(sample_value)\n")
}

// ---------------------------------------------------------------------
// Distractors.
// ---------------------------------------------------------------------

/// A generic integer/float parsing utility — accepts anything numeric, so
/// it cannot tell mutation-based negatives from positives (§6's motivating
/// example for why random negatives fail).
pub fn int_utils() -> String {
    r#"# general purpose number parsing helpers
def to_int(s):
    return int(s.strip())

def to_float(s):
    return float(s.strip())

def is_number(s):
    t = s.strip()
    if len(t) == 0:
        return False
    body = t
    if body[0] == '-' or body[0] == '+':
        body = body[1:]
    dots = 0
    for c in body:
        if c == '.':
            dots += 1
        elif not c.isdigit():
            return False
    return len(body) > 0 and dots <= 1
"#
    .to_string()
}

/// Generic string helpers — run successfully on every input, producing
/// identical traces for P and N (never rankable).
pub fn string_utils() -> String {
    r#"# assorted string manipulation helpers
def reverse_string(s):
    out = ''
    i = len(s) - 1
    while i >= 0:
        out = out + s[i]
        i -= 1
    return out

def shout(s):
    return s.upper()

def whisper(s):
    return s.lower()

def word_count(s):
    return len(s.split())
"#
    .to_string()
}

/// The "Swift programming language" repository — dominates the ambiguous
/// "SWIFT" query (Figure 12's quality collapse) while being irrelevant to
/// SWIFT financial messages.
pub fn swift_language_repo_file() -> String {
    r#"# swift language tutorial helpers: swift syntax, swift compiler tips
def count_swift_keywords(s):
    keywords = ['func', 'var', 'let', 'class', 'struct', 'enum', 'guard']
    total = 0
    for k in keywords:
        total = total + s.count(k)
    return total

def looks_like_swift_code(s):
    if s.find('func ') >= 0:
        return True
    if s.find('let ') >= 0:
        return True
    return False
"#
    .to_string()
}

/// Keyword-bait distractor: mentions the type name everywhere but the code
/// is irrelevant (hurts the KW baseline, not DNF ranking).
pub fn keyword_bait(type_name: &str, func: &str) -> String {
    format!(
        r#"# {type_name} form field helper: renders a {type_name} input widget
# this module talks about {type_name} a lot but never validates one
def {func}(s):
    label = '{type_name}'
    html = '<label>' + label + '</label><input name="' + label + '" value="' + s + '">'
    return html
"#
    )
}

/// An intent-matching but broken validator: rejects everything.
pub fn broken_validator(type_name: &str, func: &str) -> String {
    format!(
        r#"# {type_name} validator (work in progress, currently disabled)
def {func}(s):
    # TODO: implement the real {type_name} check
    if len(s) >= 0:
        raise NotImplementedError('{type_name} validation not finished')
    return False
"#
    )
}

/// Multi-step invocation chain (the shape AutoType cannot invoke, §8.2.2:
/// `a = foo1(); b = foo2(a); c = foo3(b, s)`).
pub fn multi_step_chain(type_name: &str, prefix: &str) -> String {
    format!(
        r#"# {type_name} processing pipeline (requires staged setup)
def {prefix}_make_context():
    ctx = {{}}
    ctx['strict'] = True
    return ctx

def {prefix}_load_rules(ctx):
    rules = {{}}
    rules['ctx'] = ctx
    rules['max_len'] = 256
    return rules

def {prefix}_process(rules, s):
    if len(s) > rules['max_len']:
        raise ValueError('too long')
    return s
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_lang::parse_source;

    #[test]
    fn wrappers_emit_valid_pylite() {
        let base = "def inner(s):\n    return len(s) > 0\n";
        for src in [
            wrap_argv(base, "inner"),
            wrap_stdin(base, "inner"),
            wrap_file(base, "inner"),
            wrap_class_method(base, "inner", "Checker"),
            wrap_class_ctor(base, "inner", "Checker"),
            wrap_script(base, "inner", "it's a test"),
        ] {
            parse_source(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn distractors_emit_valid_pylite() {
        for src in [
            int_utils(),
            string_utils(),
            swift_language_repo_file(),
            keyword_bait("credit card", "render_field"),
            broken_validator("ISBN", "check_isbn"),
            multi_step_chain("SQL statement", "sql"),
        ] {
            parse_source(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }

    #[test]
    fn script_wrapper_escapes_quotes() {
        let src = wrap_script("def f(s):\n    return s\n", "f", "o'neill");
        assert!(src.contains("o\\'neill"));
        parse_source(&src).unwrap();
    }

    #[test]
    fn multi_step_chain_has_no_single_param_candidates() {
        let src = multi_step_chain("TAF message", "taf");
        let module = parse_source(&src).unwrap();
        // foo1 takes 0 params without IO, foo2 takes 1... wait: load_rules
        // takes 1 param (ctx) so it IS single-param invocable — but running
        // it on a *string* fails immediately (it indexes a dict), and
        // process takes 2. The chain as a whole is unusable for detection.
        let funcs: Vec<_> = module.functions().collect();
        assert_eq!(funcs.len(), 3);
        assert_eq!(funcs[2].params.len(), 2, "final step needs two params");
    }
}

//! Corpus assembly: repositories, distractor fleets, and the package index.

use crate::model::{Corpus, Quality, Repository, SnippetFile};
use crate::recipes::snippet_files_for;
use crate::{pylite, wrap};
use autotype_typesys::{registry, Coverage, SemanticType};

/// Corpus-construction knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    pub seed: u64,
    /// Size of the "Swift programming language" distractor fleet that makes
    /// the bare "SWIFT" query ambiguous (Figure 12).
    pub swift_fleet: usize,
    /// Size of the "number"-dense distractor fleet that degrades the
    /// non-standard "DOI number" query (Figure 12).
    pub number_fleet: usize,
    /// Whether to add keyword-bait files for popular types (drives the KW
    /// baseline's false positives in Figure 8).
    pub keyword_bait: bool,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xA07071,
            swift_fleet: 12,
            number_fleet: 12,
            keyword_bait: true,
        }
    }
}

/// Build the full synthetic open-source universe.
pub fn build_corpus(config: &CorpusConfig) -> Corpus {
    let mut corpus = Corpus::default();
    corpus
        .packages
        .insert("relib".to_string(), pylite::relib_source().to_string());
    corpus.packages.insert(
        "checklib".to_string(),
        pylite::checklib_source().to_string(),
    );

    for ty in registry() {
        match ty.coverage {
            Coverage::Covered => add_type_repos(&mut corpus, ty, config),
            Coverage::UnsupportedInvocation => add_unsupported_repo(&mut corpus, ty),
            Coverage::NoCode => { /* nothing exists on "GitHub" */ }
        }
    }

    add_distractors(&mut corpus, config);
    corpus
}

fn readme_for(ty: &SemanticType) -> String {
    // READMEs mention every known keyword for the type, so well-established
    // alternate names retrieve the same repositories (the insensitive cases
    // of Figure 12). The DOI repositories deliberately never say "number",
    // and the SWIFT repositories lead with "SWIFT message".
    let mut text = format!(
        "{} utilities. This project can parse, validate and convert {} values.\n",
        ty.name, ty.name
    );
    for kw in ty.keywords {
        text.push_str(&format!("Supports lookups by {kw}.\n"));
    }
    text.push_str("Includes unit tests and example scripts.\n");
    text
}

fn add_type_repos(corpus: &mut Corpus, ty: &SemanticType, config: &CorpusConfig) {
    let mut files = snippet_files_for(ty, config.seed);
    if files.is_empty() {
        return;
    }
    // Real repositories carry generic helper modules alongside the type
    // logic. These parse-anything helpers are what make *random* negative
    // examples useless (§6: every int-accepting function separates numeric
    // positives from random strings) — the Figure 10(c) mechanism.
    files.push(SnippetFile {
        name: format!("{}_helpers", ty.slug),
        source: wrap::int_utils(),
        intent: None,
        quality: Quality::Unrelated,
    });
    // Chunk into repositories of up to 3 files so popular types occupy
    // several repositories, as on real GitHub.
    let repo_suffixes = ["tools", "parser", "scripts", "lib", "utils"];
    for (chunk_idx, chunk) in files.chunks(3).enumerate() {
        let suffix = repo_suffixes[chunk_idx % repo_suffixes.len()];
        let id = corpus.repositories.len();
        corpus.repositories.push(Repository {
            id,
            name: format!("{}-{}", ty.slug, suffix),
            description: format!("Parse and validate {} values ({})", ty.name, ty.keyword()),
            readme: readme_for(ty),
            files: chunk.to_vec(),
        });
    }
    // Roughly half the popular types attract keyword-stuffed UI projects
    // (enough to cost the KW baseline its top ranks, as in Figure 8).
    if config.keyword_bait && ty.popular && ty.id.is_multiple_of(2) {
        let id = corpus.repositories.len();
        corpus.repositories.push(Repository {
            id,
            name: format!("{}-ui-widgets", ty.slug),
            description: format!("Render {} form fields and input widgets", ty.name),
            readme: format!(
                "Front-end helpers for {} entry forms. {} widgets, {} labels, {} styling.\n",
                ty.name, ty.name, ty.name, ty.name
            ),
            files: vec![
                SnippetFile {
                    name: format!("{}_widgets", ty.slug),
                    source: wrap::keyword_bait(ty.name, "render_field"),
                    intent: None,
                    quality: Quality::Unrelated,
                },
                SnippetFile {
                    name: format!("{}_labels", ty.slug),
                    source: wrap::keyword_bait(ty.name, "render_label"),
                    intent: None,
                    quality: Quality::Unrelated,
                },
                SnippetFile {
                    name: format!("{}_tooltips", ty.slug),
                    source: wrap::keyword_bait(ty.name, "render_tooltip"),
                    intent: None,
                    quality: Quality::Unrelated,
                },
            ],
        });
    }
}

/// Repositories for the four types whose code needs multi-step invocation
/// chains (§8.2.2: SQL query, TAF, ISNI, Reuters instrument code).
fn add_unsupported_repo(corpus: &mut Corpus, ty: &SemanticType) {
    let id = corpus.repositories.len();
    let prefix: String = ty
        .slug
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    corpus.repositories.push(Repository {
        id,
        name: format!("{}-pipeline", ty.slug),
        description: format!("Staged processing pipeline for {} data", ty.name),
        readme: readme_for(ty),
        files: vec![SnippetFile {
            name: format!("{}_pipeline", ty.slug),
            source: wrap::multi_step_chain(ty.name, &prefix),
            intent: Some(ty.slug),
            quality: Quality::Good,
        }],
    });
}

fn add_distractors(corpus: &mut Corpus, config: &CorpusConfig) {
    let mut push = |name: String, description: String, readme: String, files: Vec<SnippetFile>| {
        let id = corpus.repositories.len();
        corpus.repositories.push(Repository {
            id,
            name,
            description,
            readme,
            files,
        });
    };

    push(
        "number-parse-kit".into(),
        "General purpose number parsing".into(),
        "Parse integers and floats from strings. Handles signs and decimals.\n".into(),
        vec![SnippetFile {
            name: "numparse".into(),
            source: wrap::int_utils(),
            intent: None,
            quality: Quality::Unrelated,
        }],
    );
    push(
        "string-toolbox".into(),
        "Assorted string helpers".into(),
        "Reverse, upper, lower, word counting and other string utilities.\n".into(),
        vec![SnippetFile {
            name: "strtools".into(),
            source: wrap::string_utils(),
            intent: None,
            quality: Quality::Unrelated,
        }],
    );

    // The Swift-language fleet: saturates the bare "SWIFT" query.
    const SWIFT_TOPICS: &[&str] = &[
        "tutorial",
        "examples",
        "compiler",
        "syntax",
        "playground",
        "cookbook",
        "patterns",
        "snippets",
        "macros",
        "concurrency",
        "generics",
        "protocols",
        "closures",
        "optionals",
    ];
    for i in 0..config.swift_fleet {
        let topic = SWIFT_TOPICS[i % SWIFT_TOPICS.len()];
        push(
            format!("swift-{topic}"),
            format!("Swift {topic}: learn the Swift programming language"),
            format!(
                "Swift {topic} for Swift developers. Swift swift swift code samples in Swift.\n"
            ),
            vec![SnippetFile {
                name: format!("swift_{topic}"),
                source: wrap::swift_language_repo_file(),
                intent: None,
                quality: Quality::Unrelated,
            }],
        );
    }

    // The "number"-dense fleet: makes the non-standard "DOI number" query
    // retrieve the wrong repositories.
    const NUMBER_TOPICS: &[&str] = &[
        "serial",
        "account",
        "invoice",
        "ticket",
        "tracking",
        "order",
        "part",
        "batch",
        "lot",
        "case",
        "reference",
        "customer",
    ];
    for i in 0..config.number_fleet {
        let topic = NUMBER_TOPICS[i % NUMBER_TOPICS.len()];
        push(
            format!("{topic}-number-manager"),
            format!("Manage {topic} number records: number generation, number lookup"),
            format!(
                "{topic} number tools. Generate a number, check a number, renumber a number, \
                 format the number, number history, number audits, number reports.\n"
            ),
            vec![SnippetFile {
                name: format!("{topic}_numbers"),
                source: wrap::int_utils(),
                intent: None,
                quality: Quality::Unrelated,
            }],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_and_all_files_parse() {
        let corpus = build_corpus(&CorpusConfig::default());
        corpus.verify_parses().unwrap();
        assert!(corpus.repositories.len() > 100);
    }

    #[test]
    fn covered_types_have_repositories_uncovered_do_not() {
        let corpus = build_corpus(&CorpusConfig::default());
        for ty in registry() {
            let relevant = corpus
                .repositories
                .iter()
                .any(|r| r.files.iter().any(|f| f.intent == Some(ty.slug)));
            match ty.coverage {
                Coverage::Covered | Coverage::UnsupportedInvocation => {
                    assert!(relevant, "{} should have code in the corpus", ty.name)
                }
                Coverage::NoCode => {
                    assert!(!relevant, "{} should have no code", ty.name)
                }
            }
        }
    }

    #[test]
    fn packages_are_registered() {
        let corpus = build_corpus(&CorpusConfig::default());
        assert!(corpus.packages.contains_key("relib"));
        assert!(corpus.packages.contains_key("checklib"));
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_corpus(&CorpusConfig::default());
        let b = build_corpus(&CorpusConfig::default());
        assert_eq!(a.repositories.len(), b.repositories.len());
        for (ra, rb) in a.repositories.iter().zip(&b.repositories) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.files.len(), rb.files.len());
            for (fa, fb) in ra.files.iter().zip(&rb.files) {
                assert_eq!(fa.source, fb.source);
            }
        }
    }

    #[test]
    fn sloppy_upc_reproduces_the_paper_false_positive() {
        // §9.2: the best UPC function checks the GS1 checksum but not the
        // length, so valid ISBN-13s pass it.
        let corpus = build_corpus(&CorpusConfig::default());
        let upc_repo = corpus
            .repositories
            .iter()
            .find(|r| r.files.iter().any(|f| f.intent == Some("upc")))
            .unwrap();
        let upc_file = upc_repo
            .files
            .iter()
            .find(|f| f.intent == Some("upc"))
            .unwrap();
        assert_eq!(upc_file.quality, Quality::Sloppy);
    }
}

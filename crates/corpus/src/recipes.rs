//! Per-type snippet recipes: which PyLite code exists "in the wild" for
//! each covered benchmark type.
//!
//! Every covered type gets at least one faithful validator; popular types
//! additionally get parser/converter variants (the re-purposed code §8.2.2
//! observes), sloppy variants (the §9.2 false-positive sources), and
//! broken/keyword-bait files. Counts per type vary to reproduce the
//! Figure 9 distribution (1..33 relevant functions, mean ≈ 7.4).

use crate::misc;
use crate::model::{Quality, SnippetFile};
use crate::pylite;
use crate::snippets;
use crate::wrap;
use autotype_typesys::gen as pools;
use autotype_typesys::{by_slug, SemanticType};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A snippet before wrapping: base source + the name of its single-string
/// entry function.
struct Base {
    source: String,
    entry: &'static str,
    quality: Quality,
}

fn base(source: String, entry: &'static str) -> Base {
    Base {
        source,
        entry,
        quality: Quality::Good,
    }
}

fn sloppy(source: String, entry: &'static str) -> Base {
    Base {
        source,
        entry,
        quality: Quality::Sloppy,
    }
}

/// The primary and alternative implementations available for a type.
fn bases_for(slug: &str) -> Vec<Base> {
    match slug {
        // --- checksum family -------------------------------------------
        "creditcard" => vec![
            base(
                pylite::creditcard_validator("is_valid_card", true, true),
                "is_valid_card",
            ),
            base(pylite::creditcard_class(), "CreditCard.read_from_number"),
            sloppy(
                pylite::creditcard_validator("check_card", false, false),
                "check_card",
            ),
        ],
        "imei" => vec![base(
            pylite::luhn_fixed_len(
                "is_valid_imei",
                15,
                "validate IMEI mobile equipment identifiers",
            ),
            "is_valid_imei",
        )],
        "uic" => vec![base(
            pylite::luhn_fixed_len(
                "check_wagon_number",
                12,
                "validate UIC railway wagon numbers",
            ),
            "check_wagon_number",
        )],
        "isin" => vec![base(
            pylite::isin_validator("is_valid_isin"),
            "is_valid_isin",
        )],
        "upc" => vec![
            // The paper's §9.2 false positive: the best available UPC code
            // computes the checksum without verifying the length, so ISBN
            // columns (same GS1 algorithm) slip through.
            sloppy(
                pylite::gs1_validator(
                    "check_upc",
                    &[],
                    None,
                    "validate UPC universal product codes",
                ),
                "check_upc",
            ),
        ],
        "ean" => vec![
            base(
                pylite::gs1_validator(
                    "is_valid_ean",
                    &[8, 13],
                    None,
                    "validate EAN european article numbers",
                ),
                "is_valid_ean",
            ),
            sloppy(
                pylite::gs1_validator("ean_checksum_ok", &[], None, "EAN barcode checksum"),
                "ean_checksum_ok",
            ),
        ],
        "gtin" => vec![base(
            pylite::gs1_validator(
                "is_valid_gtin",
                &[14],
                None,
                "validate GTIN global trade item numbers",
            ),
            "is_valid_gtin",
        )],
        "gln" => vec![base(
            pylite::gs1_validator(
                "is_valid_gln",
                &[13],
                None,
                "validate GLN global location numbers",
            ),
            "is_valid_gln",
        )],
        "ismn" => vec![base(
            pylite::gs1_validator(
                "is_valid_ismn",
                &[13],
                Some("9790"),
                "validate ISMN music numbers",
            ),
            "is_valid_ismn",
        )],
        "isbn" => vec![
            base(pylite::isbn_validator("is_valid_isbn"), "is_valid_isbn"),
            base(pylite::isbn_parser(), "parse_isbn"),
        ],
        "issn" => vec![base(
            pylite::issn_validator("is_valid_issn"),
            "is_valid_issn",
        )],
        "iban" => vec![
            base(
                pylite::iban_validator("validate_iban", false),
                "validate_iban",
            ),
            base(pylite::iban_validator("parse_iban", true), "parse_iban"),
        ],
        "lei" => vec![base(pylite::lei_validator("is_valid_lei"), "is_valid_lei")],
        "cusip" => vec![base(
            pylite::cusip_validator("is_valid_cusip"),
            "is_valid_cusip",
        )],
        "sedol" => vec![base(
            pylite::sedol_validator("is_valid_sedol"),
            "is_valid_sedol",
        )],
        "aba" => vec![base(
            pylite::aba_validator("is_valid_routing"),
            "is_valid_routing",
        )],
        "vin" => vec![
            base(pylite::vin_validator("validate_vin", false), "validate_vin"),
            base(pylite::vin_validator("decode_vin", true), "decode_vin"),
        ],
        "imo" => vec![base(pylite::imo_validator("is_valid_imo"), "is_valid_imo")],
        "nhs" => vec![base(pylite::nhs_validator("is_valid_nhs"), "is_valid_nhs")],
        "dea" => vec![base(pylite::dea_validator("is_valid_dea"), "is_valid_dea")],
        "cas" => vec![base(pylite::cas_validator("is_valid_cas"), "is_valid_cas")],
        "orcid" => vec![base(
            pylite::orcid_validator("is_valid_orcid"),
            "is_valid_orcid",
        )],
        "chinaid" => vec![base(
            pylite::chinaid_validator("parse_resident_id"),
            "parse_resident_id",
        )],
        "nmea" => vec![base(
            pylite::nmea_validator("check_sentence"),
            "check_sentence",
        )],

        // --- structural parsers ----------------------------------------
        "ipv4" => vec![
            base(snippets::ipv4_parser("parse_ipv4", true), "parse_ipv4"),
            sloppy(snippets::ipv4_parser("split_ip", false), "split_ip"),
        ],
        "ipv6" => vec![base(
            snippets::ipv6_validator("is_valid_ipv6"),
            "is_valid_ipv6",
        )],
        "url" => vec![base(snippets::url_parser("parse_url"), "parse_url")],
        "email" => vec![
            base(
                snippets::email_validator("is_valid_email", false),
                "is_valid_email",
            ),
            base(
                snippets::email_validator("parse_email", true),
                "parse_email",
            ),
        ],
        "phone" => vec![base(snippets::phone_parser("parse_phone"), "parse_phone")],
        "address" => vec![base(
            snippets::address_parser("parse_address", pools::US_STATES, pools::STREET_SUFFIXES),
            "parse_address",
        )],
        "datetime" => vec![base(snippets::date_parser("parse_date"), "parse_date")],
        "json" => vec![base(snippets::json_validator("is_json"), "is_json")],
        "xml" => vec![base(
            snippets::xml_validator("is_well_formed_xml"),
            "is_well_formed_xml",
        )],
        "html" => vec![base(
            snippets::html_validator("looks_like_html"),
            "looks_like_html",
        )],
        "roman" => vec![base(snippets::roman_parser("roman_to_int"), "roman_to_int")],
        "currency" => vec![base(
            snippets::currency_parser("parse_money"),
            "parse_money",
        )],
        "chemformula" => vec![base(
            snippets::chemformula_parser("parse_formula"),
            "parse_formula",
        )],
        "smiles" => vec![base(
            snippets::smiles_validator("is_valid_smiles"),
            "is_valid_smiles",
        )],
        "inchi" => vec![base(
            snippets::inchi_validator("parse_inchi"),
            "parse_inchi",
        )],
        "fasta" => vec![base(snippets::fasta_validator("is_fasta"), "is_fasta")],
        "fastq" => vec![base(snippets::fastq_validator("is_fastq"), "is_fastq")],
        "geojson" => vec![base(
            snippets::geojson_validator("is_geojson"),
            "is_geojson",
        )],
        "fix" => vec![base(snippets::fix_parser("parse_fix"), "parse_fix")],
        "swift" => vec![base(
            snippets::swift_parser("parse_mt_message"),
            "parse_mt_message",
        )],
        "doi" => vec![base(snippets::doi_parser("parse_doi"), "parse_doi")],
        "personname" => vec![base(
            snippets::personname_checker("looks_like_name", pools::FIRST_NAMES),
            "looks_like_name",
        )],
        "longlat" => vec![base(
            snippets::longlat_parser("parse_coordinates"),
            "parse_coordinates",
        )],
        "oid" => vec![base(
            snippets::oid_validator("is_valid_oid"),
            "is_valid_oid",
        )],
        "unixtime" => vec![base(
            snippets::unixtime_validator("is_epoch_time"),
            "is_epoch_time",
        )],

        // --- shape / charset types --------------------------------------
        "md5" => vec![base(
            snippets::inline_shape_validator("is_md5", &"h".repeat(32), "detect MD5 hash digests"),
            "is_md5",
        )],
        "zipcode" => vec![base(
            snippets::shape_validator(
                "is_zipcode",
                &["ddddd", "ddddd-dddd"],
                "validate US zipcodes",
            ),
            "is_zipcode",
        )],
        "hexcolor" => vec![base(
            snippets::shape_validator(
                "is_hex_color",
                &["#hhhhhh", "#hhh"],
                "validate hex color codes",
            ),
            "is_hex_color",
        )],
        "guid" => vec![base(
            snippets::inline_shape_validator(
                "is_guid",
                "hhhhhhhh-hhhh-hhhh-hhhh-hhhhhhhhhhhh",
                "validate GUID unique identifiers",
            ),
            "is_guid",
        )],
        "mac" => vec![base(
            snippets::shape_validator(
                "is_mac_address",
                &["hh:hh:hh:hh:hh:hh", "hh-hh-hh-hh-hh-hh"],
                "validate MAC hardware addresses",
            ),
            "is_mac_address",
        )],
        "ssn" => vec![base(misc::ssn_validator("is_valid_ssn"), "is_valid_ssn")],
        "ein" => vec![base(misc::ein_validator("is_valid_ein"), "is_valid_ein")],
        "ndc" => vec![base(
            snippets::shape_validator(
                "is_ndc",
                &[
                    "dddd-ddd-d",
                    "dddd-ddd-dd",
                    "ddddd-ddd-d",
                    "ddddd-ddd-dd",
                    "dddd-dddd-d",
                    "dddd-dddd-dd",
                    "ddddd-dddd-d",
                    "ddddd-dddd-dd",
                ],
                "validate FDA national drug codes",
            ),
            "is_ndc",
        )],
        "hcpcs" => vec![base(
            snippets::inline_shape_validator("is_hcpcs", "udddd", "validate HCPCS procedure codes"),
            "is_hcpcs",
        )],
        "icd9" => vec![base(
            snippets::shape_validator(
                "is_icd9",
                &[
                    "ddd", "ddd.d", "ddd.dd", "Vdd", "Vdd.d", "Vdd.dd", "Eddd", "Eddd.d",
                ],
                "validate ICD-9 diagnosis codes",
            ),
            "is_icd9",
        )],
        "icd10" => vec![base(
            snippets::shape_validator(
                "is_icd10",
                &[
                    "udd", "udd.d", "udd.dd", "udd.ddd", "udn", "udn.d", "udn.dd", "udn.nnn",
                    "udn.nnnn",
                ],
                "validate ICD-10 diagnosis codes",
            ),
            "is_icd10",
        )],
        "atc" => vec![base(
            snippets::shape_validator(
                "is_atc",
                &["u", "udd", "uddu", "udduu", "udduudd"],
                "validate ATC therapeutic chemical codes",
            ),
            "is_atc",
        )],
        "uniprot" => vec![base(
            snippets::shape_validator(
                "is_uniprot",
                &["udnnnd"],
                "validate Uniprot protein accessions",
            ),
            "is_uniprot",
        )],
        "ensembl" => vec![base(
            snippets::shape_validator(
                "is_ensembl",
                &[
                    "ENSGddddddddddd",
                    "ENSTddddddddddd",
                    "ENSPddddddddddd",
                    "ENSEddddddddddd",
                ],
                "validate Ensembl gene identifiers",
            ),
            "is_ensembl",
        )],
        "snpid" => vec![base(
            misc::prefix_digits_validator("is_rsid", "rs", 1, 10, "validate dbSNP rs identifiers"),
            "is_rsid",
        )],
        "asin" => vec![base(
            snippets::shape_validator(
                "is_asin",
                &["B0nnnnnnnn", "dddddddddd", "ddddddddd*"],
                "validate amazon ASIN identifiers",
            ),
            "is_asin",
        )],
        "isrc" => vec![base(
            snippets::shape_validator(
                "is_isrc",
                &["uunnnddddddd", "uu-nnn-dd-ddddd"],
                "validate ISRC recording codes",
            ),
            "is_isrc",
        )],
        "bibcode" => vec![base(
            snippets::inline_shape_validator(
                "is_bibcode",
                "dddd**************u",
                "validate ADS bibcodes",
            ),
            "is_bibcode",
        )],
        "ukpostcode" => vec![base(
            snippets::shape_validator(
                "is_uk_postcode",
                &[
                    "ud duu", "udd duu", "uud duu", "uudd duu", "udu duu", "uudu duu",
                ],
                "validate UK postal codes",
            ),
            "is_uk_postcode",
        )],
        "capostcode" => vec![base(
            snippets::shape_validator(
                "is_ca_postcode",
                &["udu dud", "ududud"],
                "validate Canadian postal codes",
            ),
            "is_ca_postcode",
        )],
        "mgrs" => vec![base(misc::mgrs_validator("is_mgrs", false), "is_mgrs")],
        "usng" => vec![base(misc::mgrs_validator("is_usng", true), "is_usng")],
        "utm" => vec![base(misc::utm_validator("is_utm"), "is_utm")],
        "ticker" => vec![base(misc::ticker_validator("is_ticker"), "is_ticker")],
        "bitcoin" => vec![base(
            misc::bitcoin_validator("is_btc_address"),
            "is_btc_address",
        )],
        "msisdn" => vec![base(misc::msisdn_validator("is_msisdn"), "is_msisdn")],
        "rgbcolor" => vec![base(misc::rgb_validator("parse_rgb"), "parse_rgb")],
        "cmyk" => vec![base(
            misc::percent_color_validator("is_cmyk", "cmyk", 4, false, 0),
            "is_cmyk",
        )],
        "hsl" => vec![base(
            misc::percent_color_validator("is_hsl", "hsl", 3, true, 360),
            "is_hsl",
        )],

        // --- pool lookups ------------------------------------------------
        "country" => {
            let mut pool: Vec<&str> = Vec::new();
            pool.extend_from_slice(pools::COUNTRY_CODES_2);
            pool.extend_from_slice(pools::COUNTRY_CODES_3);
            pool.extend_from_slice(pools::COUNTRY_NAMES);
            vec![base(
                snippets::pool_validator(
                    "is_country",
                    &pool,
                    "look up ISO country codes and names",
                    false,
                ),
                "is_country",
            )]
        }
        "usstate" => vec![base(
            snippets::pool_validator(
                "is_us_state",
                pools::US_STATES,
                "look up US state abbreviations",
                false,
            ),
            "is_us_state",
        )],
        "airport" => vec![base(
            snippets::pool_validator(
                "is_airport_code",
                pools::AIRPORT_CODES,
                "look up IATA airport codes",
                false,
            ),
            "is_airport_code",
        )],
        "drugname" => vec![base(
            snippets::pool_validator(
                "is_drug_name",
                pools::DRUG_NAMES,
                "look up medication drug names",
                true,
            ),
            "is_drug_name",
        )],
        "bookname" => vec![base(
            snippets::pool_validator(
                "is_book_title",
                pools::BOOK_TITLES,
                "look up famous book titles",
                false,
            ),
            "is_book_title",
        )],
        "httpstatus" => vec![base(
            snippets::pool_validator(
                "is_http_status",
                pools::HTTP_STATUS,
                "look up HTTP status codes",
                false,
            ),
            "is_http_status",
        )],
        _ => Vec::new(),
    }
}

/// Build all repository snippet files for one benchmark type, wrapping
/// alternates into different invocation variants for coverage.
pub fn snippet_files_for(ty: &SemanticType, seed: u64) -> Vec<SnippetFile> {
    let bases = bases_for(ty.slug);
    if bases.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ ty.id as u64);
    let mut files = Vec::new();
    // A deterministic per-type "popularity" factor controls how many
    // wrapped copies exist (Figure 9's long-tailed distribution).
    let copies = if ty.popular {
        3 + (ty.id % 4)
    } else {
        1 + (ty.id % 3)
    };
    for (i, b) in bases.iter().enumerate() {
        files.push(SnippetFile {
            name: format!("{}_{}", ty.slug, i),
            source: b.source.clone(),
            intent: Some(ty.slug),
            quality: b.quality,
        });
    }
    // Popular types additionally get a "tagger" — validates internally but
    // returns an uninformative label (branch-only signal; see
    // snippets::tagger).
    let primary_entry_simple = !bases[0].entry.contains('.');
    let mut tagger_src: Option<String> = None;
    if ty.popular && primary_entry_simple {
        let inner = bases[0].entry;
        let src = snippets::tagger(&bases[0].source, inner, ty.slug);
        files.push(SnippetFile {
            name: format!("{}_tagger", ty.slug),
            source: src.clone(),
            intent: Some(ty.slug),
            quality: Quality::Good,
        });
        tagger_src = Some(src);
    }
    // Wrapped variants: alternate between the boolean validator and the
    // tagger so the RET baseline (black-box view) misses about half of the
    // re-wrapped relevant functions, as in the paper's Figure 8.
    let primary = &bases[0];
    let inner = primary
        .entry
        .split('.')
        .next()
        .unwrap_or(primary.entry)
        .to_string();
    // Class-style entries cannot be re-wrapped directly; skip those.
    let wrappable = !primary.entry.contains('.');
    if wrappable {
        let example = (ty.generate)(&mut rng);
        let tagged = |src: &Option<String>| -> (String, String) {
            match src {
                Some(s) => (s.clone(), "classify_value".to_string()),
                None => (primary.source.clone(), inner.clone()),
            }
        };
        let (t_src, t_inner) = tagged(&tagger_src);
        let wrappers: Vec<(&str, String)> = vec![
            ("argv", wrap::wrap_argv(&primary.source, &inner)),
            ("stdin", wrap::wrap_stdin(&t_src, &t_inner)),
            ("file", wrap::wrap_file(&primary.source, &inner)),
            ("cls", wrap::wrap_class_method(&t_src, &t_inner, "Checker")),
            (
                "obj",
                wrap::wrap_class_ctor(&primary.source, &inner, "Validator"),
            ),
            ("script", wrap::wrap_script(&t_src, &t_inner, &example)),
        ];
        for (suffix, source) in wrappers.into_iter().take(copies) {
            files.push(SnippetFile {
                name: format!("{}_{}", ty.slug, suffix),
                source,
                intent: Some(ty.slug),
                quality: primary.quality,
            });
        }
    }
    files
}

/// Sanity helper used by tests: the ground-truth validator for a slug.
pub fn oracle(slug: &str) -> fn(&str) -> bool {
    by_slug(slug).expect("known slug").validate
}

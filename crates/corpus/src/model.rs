//! Corpus data model: repositories of PyLite source files with ground-truth
//! labels (which type a file's code *intends* to handle, and how well).

use autotype_lang::{parse_source, ParseError, Program};
use std::collections::BTreeMap;

/// Ground-truth quality of a snippet, standing in for the human judge of
/// §8.1 plus the paper's observation that "some code on GitHub is not
/// implemented as well as others".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Faithful validation/parsing logic for the intended type.
    Good,
    /// Intends the type but cuts corners (e.g. a UPC checksum without a
    /// length check — the paper's §9.2 false-positive source).
    Sloppy,
    /// Intends the type but is broken (crashes or rejects everything).
    Broken,
    /// Unrelated to any benchmark type (distractor).
    Unrelated,
}

/// One source file inside a repository.
#[derive(Debug, Clone)]
pub struct SnippetFile {
    /// Module name (unique within the repository).
    pub name: String,
    /// PyLite source text.
    pub source: String,
    /// Slug of the benchmark type this file's code intends to handle
    /// (`None` for distractors). This is the `I(F)` ground truth.
    pub intent: Option<&'static str>,
    pub quality: Quality,
}

/// A crawled repository: metadata (used by the search engines) plus files.
#[derive(Debug, Clone)]
pub struct Repository {
    pub id: usize,
    pub name: String,
    pub description: String,
    pub readme: String,
    pub files: Vec<SnippetFile>,
}

impl Repository {
    /// Build the executable program for this repository (its own files
    /// only; packages are installed by the executor).
    pub fn program(&self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        for file in &self.files {
            program.add_file(&file.name, &file.source)?;
        }
        Ok(program)
    }

    /// All identifier text of the repository (for the Code search field).
    pub fn code_text(&self) -> String {
        self.files
            .iter()
            .map(|f| f.source.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Ground-truth intent of a file by name.
    pub fn intent_of(&self, file_name: &str) -> Option<&'static str> {
        self.files
            .iter()
            .find(|f| f.name == file_name)
            .and_then(|f| f.intent)
    }

    /// Ground-truth quality of a file by name.
    pub fn quality_of(&self, file_name: &str) -> Option<Quality> {
        self.files
            .iter()
            .find(|f| f.name == file_name)
            .map(|f| f.quality)
    }
}

/// The whole synthetic open-source universe.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    pub repositories: Vec<Repository>,
    /// The simulated pip index: package name → PyLite source.
    pub packages: BTreeMap<String, String>,
}

impl Corpus {
    /// Sanity-check that every file parses (the corpus generator must not
    /// emit invalid PyLite).
    pub fn verify_parses(&self) -> Result<(), String> {
        for repo in &self.repositories {
            for file in &repo.files {
                parse_source(&file.source).map_err(|e| {
                    format!(
                        "{}/{}: {e}\n--- source ---\n{}",
                        repo.name, file.name, file.source
                    )
                })?;
            }
        }
        for (name, source) in &self.packages {
            parse_source(source).map_err(|e| format!("package {name}: {e}"))?;
        }
        Ok(())
    }

    pub fn repository(&self, id: usize) -> &Repository {
        &self.repositories[id]
    }
}

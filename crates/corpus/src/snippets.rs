//! More snippet emitters: shape/pool-based validators, bespoke parsers for
//! structural types, invocation-variant wrappers, and distractor code.

/// A validator delegating to the `relib` shape matcher (exercises the
/// pip-install loop, §4.2).
pub fn shape_validator(func: &str, shapes: &[&str], comment: &str) -> String {
    let list = shapes
        .iter()
        .map(|s| format!("'{s}'"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "# {comment}\nimport relib\n\ndef {func}(s):\n    shapes = [{list}]\n    if relib.match_any(s, shapes):\n        return True\n    return False\n"
    )
}

/// An inline (no-import) shape validator for a single fixed pattern.
pub fn inline_shape_validator(func: &str, shape: &str, comment: &str) -> String {
    format!(
        r#"# {comment}
def {func}(s):
    shape = '{shape}'
    if len(s) != len(shape):
        return False
    i = 0
    while i < len(s):
        c = s[i]
        k = shape[i]
        if k == 'd':
            if not c.isdigit():
                return False
        elif k == 'h':
            if c not in '0123456789abcdefABCDEF':
                return False
        elif k == 'u':
            if not c.isalpha():
                return False
            if not c.isupper():
                return False
        elif k == 'n':
            if not c.isalnum():
                return False
        elif k != '*':
            if c != k:
                return False
        i += 1
    return True
"#
    )
}

/// Membership-lookup validator over a constant pool (country codes, state
/// abbreviations, airport codes, drug names, ...).
pub fn pool_validator(func: &str, pool: &[&str], comment: &str, case_insensitive: bool) -> String {
    let entries = pool
        .iter()
        .map(|p| {
            format!(
                "'{}'",
                if case_insensitive {
                    p.to_lowercase()
                } else {
                    p.to_string()
                }
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let lookup = if case_insensitive {
        "s.strip().lower()"
    } else {
        "s.strip()"
    };
    format!(
        "# {comment}\nKNOWN = [{entries}]\n\ndef {func}(s):\n    key = {lookup}\n    if key in KNOWN:\n        return True\n    return False\n"
    )
}

/// IPv4 parser (raises on invalid input; exposes octets for Table 3).
pub fn ipv4_parser(func: &str, strict_segments: bool) -> String {
    let mut src = String::from("# parse ipv4 dotted-quad addresses into octets\n");
    src.push_str(&format!("def {func}(s):\n"));
    src.push_str("    parts = s.split('.')\n");
    if strict_segments {
        src.push_str("    if len(parts) != 4:\n        raise ValueError('ipv4 needs 4 octets')\n");
    }
    src.push_str(
        r#"    octets = []
    for p in parts:
        if len(p) == 0 or len(p) > 3:
            raise ValueError('bad octet')
        v = int(p)
        if v < 0 or v > 255:
            raise ValueError('octet out of range')
        octets.append(v)
    info = {}
    info['network'] = octets[0]
    info['host'] = octets[len(octets) - 1]
    if octets[0] == 10:
        info['private'] = True
    elif octets[0] == 192:
        info['private'] = True
    else:
        info['private'] = False
    return info
"#,
    );
    src
}

/// IPv6 validator (full and :: compressed forms).
pub fn ipv6_validator(func: &str) -> String {
    format!(
        r#"# validate ipv6 addresses including compressed forms
def group_ok(g):
    if len(g) < 1 or len(g) > 4:
        return False
    for c in g:
        if c not in '0123456789abcdefABCDEF':
            return False
    return True

def {func}(s):
    if len(s) == 0:
        return False
    double = s.count('::')
    if double > 1:
        return False
    if s.count(':::') > 0:
        return False
    if double == 1:
        halves = s.split('::')
        head = halves[0]
        tail = halves[1]
        count = 0
        if len(head) > 0:
            for g in head.split(':'):
                if not group_ok(g):
                    return False
                count += 1
        if len(tail) > 0:
            for g in tail.split(':'):
                if not group_ok(g):
                    return False
                count += 1
        return count <= 7
    groups = s.split(':')
    if len(groups) != 8:
        return False
    for g in groups:
        if not group_ok(g):
            return False
    return True
"#
    )
}

/// URL parser exposing scheme/host/path.
pub fn url_parser(func: &str) -> String {
    format!(
        r#"# parse urls into scheme, host and path
def {func}(s):
    marker = s.find('://')
    if marker < 0:
        raise ValueError('missing scheme')
    scheme = s[:marker]
    if scheme not in ['http', 'https', 'ftp', 'ftps']:
        raise ValueError('unknown scheme')
    rest = s[marker + 3:]
    slash = rest.find('/')
    if slash < 0:
        host = rest
        path = '/'
    else:
        host = rest[:slash]
        path = rest[slash:]
    if host.find('.') < 0:
        raise ValueError('host needs a dot')
    for c in host:
        if not c.isalnum() and c != '.' and c != '-' and c != ':':
            raise ValueError('bad host character')
    info = {{}}
    info['scheme'] = scheme
    info['host'] = host
    info['path'] = path
    domain_parts = host.split('.')
    info['tld'] = domain_parts[len(domain_parts) - 1]
    return info
"#
    )
}

/// Email validator with domain extraction.
pub fn email_validator(func: &str, parse: bool) -> String {
    let mut src = String::from("# validate email addresses and extract the domain\n");
    src.push_str(&format!("def {func}(s):\n"));
    src.push_str(
        r#"    at = s.find('@')
    if at <= 0:
        raise ValueError('missing @')
    local = s[:at]
    domain = s[at + 1:]
    if s.find(' ') >= 0:
        raise ValueError('no spaces allowed')
    for c in local:
        if not c.isalnum() and c not in '._%+-':
            raise ValueError('bad local character')
    labels = domain.split('.')
    if len(labels) < 2:
        raise ValueError('domain needs a dot')
    for label in labels:
        if len(label) == 0:
            raise ValueError('empty label')
        for c in label:
            if not c.isalnum() and c != '-':
                raise ValueError('bad domain character')
    tld = labels[len(labels) - 1]
    if len(tld) < 2:
        raise ValueError('short tld')
    for c in tld:
        if not c.isalpha():
            raise ValueError('tld must be letters')
"#,
    );
    if parse {
        src.push_str("    info = {}\n    info['local'] = local\n    info['domain'] = domain\n    info['tld'] = tld\n    return info\n");
    } else {
        src.push_str("    return True\n");
    }
    src
}

/// US phone-number parser.
pub fn phone_parser(func: &str) -> String {
    format!(
        r#"# parse north american phone numbers
def {func}(s):
    t = s.strip()
    country = '1'
    if t[:2] == '+1':
        t = t[2:].strip()
    digits = ''
    for c in t:
        if c.isdigit():
            digits = digits + c
        elif c not in ' ()-.':
            raise ValueError('bad character in phone number')
    if len(digits) == 11 and digits[0] == '1':
        digits = digits[1:]
    if len(digits) != 10:
        raise ValueError('need 10 digits')
    if int(digits[0]) < 2:
        raise ValueError('bad area code')
    info = {{}}
    info['country'] = country
    info['area_code'] = digits[:3]
    info['exchange'] = digits[3:6]
    info['line'] = digits[6:]
    return info
"#
    )
}

/// Mailing-address parser — the "address-parsing service" style function
/// (§9.2: the top function cannot handle partial addresses).
pub fn address_parser(func: &str, states: &[&str], suffixes: &[&str]) -> String {
    let state_list = states
        .iter()
        .map(|s| format!("'{s}'"))
        .collect::<Vec<_>>()
        .join(", ");
    let suffix_list = suffixes
        .iter()
        .map(|s| format!("'{}'", s.to_lowercase()))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"# parse US mailing addresses into street, city, state and zip
STATES = [{state_list}]
SUFFIXES = [{suffix_list}]

def {func}(s):
    parts = s.split(',')
    if len(parts) < 3:
        raise ValueError('need street, city and state parts')
    street = parts[0].strip()
    words = street.split()
    if len(words) < 3:
        raise ValueError('street too short')
    number = words[0]
    for c in number:
        if not c.isdigit():
            raise ValueError('house number expected')
    suffix = words[len(words) - 1].lower()
    suffix = suffix.strip('.')
    if suffix not in SUFFIXES:
        raise ValueError('unknown street suffix')
    tail = parts[len(parts) - 1].strip()
    tail_words = tail.split()
    if len(tail_words) != 2:
        raise ValueError('state and zip expected')
    state = tail_words[0]
    if state not in STATES:
        raise ValueError('unknown state')
    zipcode = tail_words[1]
    zip5 = zipcode.split('-')[0]
    if len(zip5) != 5:
        raise ValueError('zip must be 5 digits')
    for c in zip5:
        if not c.isdigit():
            raise ValueError('zip must be digits')
    info = {{}}
    info['street_number'] = number
    info['city'] = parts[1].strip()
    info['state'] = state
    info['zipcode'] = zipcode
    return info
"#
    )
}

/// Date parser with month-name dictionary, numeric formats and range
/// checks — the paper's running example of *implicit* validation ("Sep" is
/// a month, "Abc" is not).
pub fn date_parser(func: &str) -> String {
    format!(
        r#"# parse date strings: 'Sep 15, 2011', '2011-09-15', '09/15/2011'
MONTHS = {{'jan': 1, 'feb': 2, 'mar': 3, 'apr': 4, 'may': 5, 'jun': 6, 'jul': 7, 'aug': 8, 'sep': 9, 'oct': 10, 'nov': 11, 'dec': 12, 'january': 1, 'february': 2, 'march': 3, 'april': 4, 'june': 6, 'july': 7, 'august': 8, 'september': 9, 'october': 10, 'november': 11, 'december': 12}}

def days_in(month, year):
    if month in [1, 3, 5, 7, 8, 10, 12]:
        return 31
    if month == 2:
        if year % 4 == 0 and year % 100 != 0:
            return 29
        if year % 400 == 0:
            return 29
        return 28
    return 30

def check_ymd(year, month, day):
    if year < 1000 or year > 2100:
        raise ValueError('year out of range')
    if month < 1 or month > 12:
        raise ValueError('month out of range')
    if day < 1 or day > days_in(month, year):
        raise ValueError('day out of range')
    info = {{}}
    info['year'] = year
    info['month'] = month
    info['day'] = day
    return info

def {func}(s):
    tokens = s.strip().split()
    while len(tokens) > 0:
        last = tokens[len(tokens) - 1]
        if last == 'AM' or last == 'PM' or last.find(':') >= 0:
            tokens.pop()
        else:
            break
    t = ' '.join(tokens)
    if t.find('-') > 0:
        parts = t.split('-')
        if len(parts) == 3 and len(parts[0]) == 4:
            return check_ymd(int(parts[0]), int(parts[1]), int(parts[2]))
        raise ValueError('bad dashed date')
    if t.find('/') > 0:
        parts = t.split('/')
        if len(parts) == 3 and len(parts[2]) == 4:
            return check_ymd(int(parts[2]), int(parts[0]), int(parts[1]))
        raise ValueError('bad slashed date')
    cleaned = t.replace(',', ' ')
    tokens = cleaned.split()
    if len(tokens) == 3:
        m = MONTHS.get(tokens[0].lower())
        if m != None:
            return check_ymd(int(tokens[2]), m, int(tokens[1]))
        m = MONTHS.get(tokens[1].lower())
        if m != None:
            return check_ymd(int(tokens[2]), m, int(tokens[0]))
    raise ValueError('unrecognized date format')
"#
    )
}

/// JSON syntax checker (stack-based: braces, brackets, strings, commas).
pub fn json_validator(func: &str) -> String {
    format!(
        r#"# check whether a string is a well-formed json document
def {func}(s):
    t = s.strip()
    if len(t) == 0:
        return False
    first = t[0]
    if first != '{{' and first != '[':
        return False
    stack = []
    in_string = False
    escaped = False
    i = 0
    while i < len(t):
        c = t[i]
        if in_string:
            if escaped:
                escaped = False
            elif c == '\\':
                escaped = True
            elif c == '"':
                in_string = False
        else:
            if c == '"':
                in_string = True
            elif c == '{{' or c == '[':
                stack.append(c)
            elif c == '}}':
                if len(stack) == 0 or stack.pop() != '{{':
                    return False
            elif c == ']':
                if len(stack) == 0 or stack.pop() != '[':
                    return False
        i += 1
    if in_string:
        return False
    return len(stack) == 0
"#
    )
}

/// XML well-formedness checker (tag stack).
pub fn xml_validator(func: &str) -> String {
    format!(
        r#"# check whether a string is well-formed xml
def {func}(s):
    t = s.strip()
    if len(t) == 0 or t[0] != '<':
        return False
    stack = []
    saw = False
    i = 0
    while i < len(t):
        if t[i] == '<':
            close = -1
            j = i + 1
            while j < len(t):
                if t[j] == '>':
                    close = j
                    break
                j += 1
            if close < 0:
                return False
            tag = t[i + 1:close]
            if len(tag) == 0:
                return False
            if tag[0] == '?' or tag[0] == '!':
                pass
            elif tag[0] == '/':
                name = tag[1:]
                if len(stack) == 0:
                    return False
                if stack.pop() != name:
                    return False
            elif tag[len(tag) - 1] == '/':
                saw = True
            else:
                name = tag.split()[0]
                if not name[0].isalpha():
                    return False
                stack.append(name)
                saw = True
            i = close + 1
        else:
            i += 1
    return len(stack) == 0 and saw
"#
    )
}

/// HTML sniffer.
pub fn html_validator(func: &str) -> String {
    format!(
        r#"# detect html markup fragments
TAGS = ['html', 'div', 'p', 'a', 'span', 'table', 'tr', 'td', 'ul', 'li', 'h1', 'h2', 'body', 'b', 'i', 'img', 'br', 'head', 'title']

def {func}(s):
    t = s.strip().lower()
    if len(t) < 3:
        return False
    if t[0] != '<':
        return False
    if t[len(t) - 1] != '>':
        return False
    for tag in TAGS:
        if t.find('<' + tag) >= 0:
            if t.find('</' + tag + '>') >= 0:
                return True
            if t.find('/>') >= 0:
                return True
    return False
"#
    )
}

/// Roman-numeral parser (value computation with subtractive checks).
pub fn roman_parser(func: &str) -> String {
    format!(
        r#"# convert roman numerals to integers with strict validation
VALUES = {{'I': 1, 'V': 5, 'X': 10, 'L': 50, 'C': 100, 'D': 500, 'M': 1000}}

def {func}(s):
    if len(s) == 0:
        raise ValueError('empty')
    total = 0
    i = 0
    prev = 0
    repeat = 0
    while i < len(s):
        c = s[i]
        if c not in VALUES:
            raise ValueError('not a roman numeral character')
        v = VALUES[c]
        if i + 1 < len(s):
            nxt = s[i + 1]
            if nxt not in VALUES:
                raise ValueError('not a roman numeral character')
            w = VALUES[nxt]
        else:
            w = 0
        if v == prev:
            repeat += 1
            if repeat >= 3:
                if c == 'V' or c == 'L' or c == 'D':
                    raise ValueError('illegal repeat')
                raise ValueError('too many repeats')
        else:
            repeat = 0
        if v < w:
            if w > v * 10:
                raise ValueError('illegal subtractive pair')
            if c == 'V' or c == 'L' or c == 'D':
                raise ValueError('illegal subtractive pair')
            total = total + w - v
            i += 2
            prev = 0
            continue
        total = total + v
        prev = v
        i += 1
    if total <= 0 or total > 3999:
        raise ValueError('out of range')
    return total
"#
    )
}

/// Currency-amount parser.
pub fn currency_parser(func: &str) -> String {
    format!(
        r#"# parse currency amounts like $1,234.56 or USD 25.00
CODES = ['USD', 'EUR', 'GBP', 'JPY', 'CHF', 'CAD', 'AUD', 'CNY', 'INR', 'BRL', 'SEK', 'NOK', 'DKK', 'KRW', 'MXN', 'ZAR', 'PLN', 'CZK', 'NZD', 'SGD']

def check_number(n):
    if len(n) == 0:
        raise ValueError('no amount')
    dot = n.find('.')
    if dot >= 0:
        frac = n[dot + 1:]
        if len(frac) != 2:
            raise ValueError('cents must be 2 digits')
        for c in frac:
            if not c.isdigit():
                raise ValueError('bad cents')
        whole = n[:dot]
    else:
        whole = n
    groups = whole.split(',')
    if len(groups) == 1:
        if len(whole) == 0:
            raise ValueError('no digits')
        for c in whole:
            if not c.isdigit():
                raise ValueError('bad digit')
        return True
    if len(groups[0]) == 0 or len(groups[0]) > 3:
        raise ValueError('bad grouping')
    gi = 0
    for g in groups:
        if gi > 0 and len(g) != 3:
            raise ValueError('bad thousands group')
        for c in g:
            if not c.isdigit():
                raise ValueError('bad digit')
        gi += 1
    return True

def {func}(s):
    t = s.strip()
    info = {{}}
    symbol = t[0]
    if symbol == '$' or symbol == '€' or symbol == '£' or symbol == '¥':
        info['currency'] = symbol
        check_number(t[1:].strip())
        return info
    if len(t) > 4 and t[:3] in CODES and t[3] == ' ':
        info['currency'] = t[:3]
        check_number(t[4:])
        return info
    if len(t) > 4 and t[len(t) - 3:] in CODES and t[len(t) - 4] == ' ':
        info['currency'] = t[len(t) - 3:]
        check_number(t[:len(t) - 4])
        return info
    raise ValueError('no currency marker')
"#
    )
}

/// Chemical-formula parser with atomic masses (Table 3: molecular mass).
pub fn chemformula_parser(func: &str) -> String {
    format!(
        r#"# parse chemical formulas and compute molecular mass
MASSES = {{'H': 1, 'He': 4, 'Li': 7, 'Be': 9, 'B': 11, 'C': 12, 'N': 14, 'O': 16, 'F': 19, 'Ne': 20, 'Na': 23, 'Mg': 24, 'Al': 27, 'Si': 28, 'P': 31, 'S': 32, 'Cl': 35, 'Ar': 40, 'K': 39, 'Ca': 40, 'Fe': 56, 'Cu': 64, 'Zn': 65, 'Br': 80, 'Ag': 108, 'I': 127, 'Au': 197, 'Hg': 201, 'Pb': 207, 'Sn': 119, 'Ni': 59, 'Mn': 55, 'Cr': 52, 'Co': 59, 'Ti': 48}}

def {func}(s):
    if len(s) == 0 or len(s) > 60:
        raise ValueError('bad length')
    mass = 0
    atoms = 0
    i = 0
    while i < len(s):
        sym = None
        if i + 1 < len(s):
            two = s[i:i + 2]
            if two in MASSES:
                sym = two
                i += 2
        if sym == None:
            one = s[i]
            if one not in MASSES:
                raise ValueError('unknown element')
            sym = one
            i += 1
        count = 0
        digits = ''
        while i < len(s) and s[i].isdigit():
            digits = digits + s[i]
            i += 1
        if len(digits) > 0:
            if digits[0] == '0':
                raise ValueError('count cannot start with zero')
            count = int(digits)
        else:
            count = 1
        mass = mass + MASSES[sym] * count
        atoms = atoms + count
    info = {{}}
    info['mass'] = mass
    info['atoms'] = atoms
    return info
"#
    )
}

/// OID validator.
pub fn oid_validator(func: &str) -> String {
    format!(
        r#"# validate dotted OID object identifiers
def {func}(s):
    parts = s.split('.')
    if len(parts) < 3:
        return False
    for p in parts:
        if len(p) == 0:
            return False
        for c in p:
            if not c.isdigit():
                return False
        if len(p) > 1 and p[0] == '0':
            return False
    first = int(parts[0])
    second = int(parts[1])
    if first > 2:
        return False
    if first < 2 and second > 39:
        return False
    return True
"#
    )
}

/// Long/lat pair parser with range checks.
pub fn longlat_parser(func: &str) -> String {
    format!(
        r#"# parse latitude, longitude coordinate pairs
def parse_coord(p):
    t = p.strip()
    if len(t) == 0:
        raise ValueError('empty coordinate')
    body = t
    if body[0] == '-':
        body = body[1:]
    dot = body.find('.')
    if dot < 0:
        raise ValueError('decimal point required')
    for c in body:
        if not c.isdigit() and c != '.':
            raise ValueError('bad coordinate character')
    return float(t)

def {func}(s):
    parts = s.split(',')
    if len(parts) != 2:
        raise ValueError('need two coordinates')
    lat = parse_coord(parts[0])
    lon = parse_coord(parts[1])
    if lat < -90.0 or lat > 90.0:
        raise ValueError('latitude out of range')
    if lon < -180.0 or lon > 180.0:
        raise ValueError('longitude out of range')
    info = {{}}
    info['latitude'] = lat
    info['longitude'] = lon
    if lat >= 0.0:
        info['hemisphere'] = 'N'
    else:
        info['hemisphere'] = 'S'
    return info
"#
    )
}

/// FIX-protocol message parser.
pub fn fix_parser(func: &str) -> String {
    format!(
        r#"# parse FIX protocol messages (tag=value fields)
def {func}(s):
    if s[:8] != '8=FIX.4.' and s[:9] != '8=FIXT.1.':
        raise ValueError('missing begin string')
    fields = s.split('|')
    tags = {{}}
    count = 0
    for f in fields:
        if len(f) == 0:
            continue
        eq = f.find('=')
        if eq <= 0:
            raise ValueError('field without tag')
        tag = f[:eq]
        for c in tag:
            if not c.isdigit():
                raise ValueError('tag must be numeric')
        tags[tag] = f[eq + 1:]
        count += 1
    if count < 4:
        raise ValueError('too few fields')
    if '35' not in tags:
        raise ValueError('missing msgtype')
    info = {{}}
    info['msg_type'] = tags['35']
    info['fields'] = count
    return info
"#
    )
}

/// SWIFT MT message parser.
pub fn swift_parser(func: &str) -> String {
    format!(
        r#"# parse SWIFT MT interbank financial messages (block format)
def {func}(s):
    if s[:6] != '{{1:F01':
        raise ValueError('missing basic header block')
    close = s.find('}}')
    if close < 0:
        raise ValueError('unterminated block 1')
    block1 = s[4:close]
    if len(block1) < 12:
        raise ValueError('short header')
    bic = block1[:8]
    for c in bic:
        if not c.isalnum():
            raise ValueError('bad BIC character')
    if s[close:close + 4] != '}}{{2:':
        raise ValueError('missing application header')
    info = {{}}
    info['bic'] = bic
    info['lt_address'] = block1[:12]
    return info
"#
    )
}

/// DOI parser.
pub fn doi_parser(func: &str) -> String {
    format!(
        r#"# parse DOI identifiers (10.prefix/suffix)
def {func}(s):
    if s[:3] != '10.':
        raise ValueError('doi must start with 10.')
    slash = s.find('/')
    if slash < 0:
        raise ValueError('missing suffix')
    registrant = s[3:slash]
    if len(registrant) < 4 or len(registrant) > 5:
        raise ValueError('bad registrant length')
    for c in registrant:
        if not c.isdigit():
            raise ValueError('registrant must be digits')
    suffix = s[slash + 1:]
    if len(suffix) == 0:
        raise ValueError('empty suffix')
    for c in suffix:
        if c == ' ':
            raise ValueError('no spaces in doi')
    info = {{}}
    info['registrant'] = registrant
    info['suffix'] = suffix
    return info
"#
    )
}

/// Person-name heuristic checker with a first-name table (the paper found
/// gender-prediction and profile-lookup code; this mirrors the lookup).
pub fn personname_checker(func: &str, first_names: &[&str]) -> String {
    let names = first_names
        .iter()
        .map(|n| format!("'{n}'"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        r#"# guess whether a string is a person name using a first-name table
FIRST_NAMES = [{names}]

def {func}(s):
    words = s.split()
    if len(words) < 2 or len(words) > 3:
        return False
    for w in words:
        if not w[0].isalpha():
            return False
        if not w[0].isupper():
            return False
        rest = w[1:]
        for c in rest:
            if not c.isalpha() and c != '.':
                return False
    if words[0] in FIRST_NAMES:
        return True
    return False
"#
    )
}

/// FASTA validator.
pub fn fasta_validator(func: &str) -> String {
    format!(
        r#"# validate FASTA gene sequence records
def {func}(s):
    lines = s.split('\n')
    if len(lines) < 2:
        return False
    header = lines[0]
    if len(header) < 2 or header[0] != '>':
        return False
    saw = False
    i = 1
    while i < len(lines):
        line = lines[i]
        if len(line) > 0:
            for c in line:
                if c.upper() not in 'ACGTUNRYKMSWBDHV':
                    return False
            saw = True
        i += 1
    return saw
"#
    )
}

/// FASTQ validator.
pub fn fastq_validator(func: &str) -> String {
    format!(
        r#"# validate FASTQ sequencing reads (4-line records)
def {func}(s):
    lines = s.split('\n')
    if len(lines) != 4:
        return False
    if len(lines[0]) < 2 or lines[0][0] != '@':
        return False
    seq = lines[1]
    if len(seq) == 0:
        return False
    for c in seq:
        if c not in 'ACGTN':
            return False
    if len(lines[2]) == 0 or lines[2][0] != '+':
        return False
    return len(lines[3]) == len(seq)
"#
    )
}

/// SMILES validator (balanced brackets + charset).
pub fn smiles_validator(func: &str) -> String {
    format!(
        r#"# validate SMILES molecular notation strings
def {func}(s):
    if len(s) == 0 or len(s) > 200:
        return False
    first = s[0]
    if not first.isalpha() and first != '[':
        return False
    paren = 0
    bracket = 0
    letters = 0
    for c in s:
        if c.isalpha():
            letters += 1
        elif c.isdigit():
            pass
        elif c in '()[]=#@+-/\\%.':
            if c == '(':
                paren += 1
            elif c == ')':
                paren -= 1
                if paren < 0:
                    return False
            elif c == '[':
                bracket += 1
            elif c == ']':
                bracket -= 1
                if bracket < 0:
                    return False
        else:
            return False
    return paren == 0 and bracket == 0 and letters > 0
"#
    )
}

/// InChI validator (prefix + formula layer via chemformula-style parse).
pub fn inchi_validator(func: &str) -> String {
    format!(
        r#"# validate InChI chemical identifiers
ELEMENTS = ['H', 'He', 'Li', 'Be', 'B', 'C', 'N', 'O', 'F', 'Ne', 'Na', 'Mg', 'Al', 'Si', 'P', 'S', 'Cl', 'Ar', 'K', 'Ca', 'Fe', 'Cu', 'Zn', 'Br', 'Ag', 'I', 'Au', 'Hg', 'Pb', 'Sn', 'Ni', 'Mn', 'Cr', 'Co', 'Ti']

def formula_ok(s):
    if len(s) == 0:
        return False
    i = 0
    while i < len(s):
        sym = None
        if i + 1 < len(s):
            if s[i:i + 2] in ELEMENTS:
                sym = s[i:i + 2]
                i += 2
        if sym == None:
            if s[i] not in ELEMENTS:
                return False
            i += 1
        while i < len(s) and s[i].isdigit():
            i += 1
    return True

def {func}(s):
    body = None
    if s[:9] == 'InChI=1S/':
        body = s[9:]
    elif s[:8] == 'InChI=1/':
        body = s[8:]
    else:
        raise ValueError('missing InChI prefix')
    layers = body.split('/')
    if not formula_ok(layers[0]):
        raise ValueError('bad formula layer')
    return layers[0]
"#
    )
}

/// GeoJSON validator (JSON structure + geometry type).
pub fn geojson_validator(func: &str) -> String {
    format!(
        r#"# validate geojson geometry documents
GEOMETRIES = ['Point', 'LineString', 'Polygon', 'MultiPoint', 'MultiLineString', 'MultiPolygon', 'Feature', 'FeatureCollection', 'GeometryCollection']

def balanced(t):
    stack = []
    in_string = False
    i = 0
    while i < len(t):
        c = t[i]
        if in_string:
            if c == '"':
                in_string = False
        else:
            if c == '"':
                in_string = True
            elif c == '{{' or c == '[':
                stack.append(c)
            elif c == '}}':
                if len(stack) == 0 or stack.pop() != '{{':
                    return False
            elif c == ']':
                if len(stack) == 0 or stack.pop() != '[':
                    return False
        i += 1
    return len(stack) == 0 and not in_string

def {func}(s):
    t = s.strip()
    if len(t) == 0 or t[0] != '{{':
        return False
    if not balanced(t):
        return False
    if t.find('"type"') < 0:
        return False
    for g in GEOMETRIES:
        if t.find('"' + g + '"') >= 0:
            return True
    return False
"#
    )
}

/// Unix-timestamp validator.
pub fn unixtime_validator(func: &str) -> String {
    format!(
        r#"# detect unix epoch timestamps
def {func}(s):
    if len(s) < 9 or len(s) > 10:
        return False
    for c in s:
        if not c.isdigit():
            return False
    v = int(s)
    if v < 100000000:
        return False
    if v > 2200000000:
        return False
    return True
"#
    )
}

/// A "tagger": classifies the input by running the validator internally and
/// returning a label string either way — never raising, never returning a
/// boolean. Its validity signal lives *only* in branch literals, which is
/// exactly the class of relevant function the RET baseline misses (§8.2.1,
/// the Listing 1 discussion).
pub fn tagger(module_src: &str, inner: &str, slug: &str) -> String {
    format!(
        r#"{module_src}

def classify_value(s):
    ok = False
    try:
        result = {inner}(s)
        if result == False:
            ok = False
        else:
            ok = True
    except:
        ok = False
    if ok:
        label = '{slug}'
    else:
        label = 'unknown'
    return label
"#
    )
}

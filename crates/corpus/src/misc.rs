//! Remaining small emitters: prefix/charset validators, colors, grid
//! coordinates, tickers, and other format types.

/// `prefix` followed by `min..=max` digits.
pub fn prefix_digits_validator(
    func: &str,
    prefix: &str,
    min: usize,
    max: usize,
    comment: &str,
) -> String {
    format!(
        r#"# {comment}
def {func}(s):
    if s[:{plen}] != '{prefix}':
        return False
    digits = s[{plen}:]
    if len(digits) < {min} or len(digits) > {max}:
        return False
    if digits[0] == '0':
        return False
    for c in digits:
        if not c.isdigit():
            return False
    return True
"#,
        plen = prefix.len()
    )
}

/// Stock ticker: 1-5 uppercase letters, optional 1-2 letter exchange suffix.
pub fn ticker_validator(func: &str) -> String {
    format!(
        r#"# validate stock ticker symbols
def {func}(s):
    symbol = s
    dot = s.find('.')
    if dot >= 0:
        symbol = s[:dot]
        suffix = s[dot + 1:]
        if len(suffix) < 1 or len(suffix) > 2:
            return False
        for c in suffix:
            if not c.isalpha() or not c.isupper():
                return False
    if len(symbol) < 1 or len(symbol) > 5:
        return False
    for c in symbol:
        if not c.isalpha():
            return False
        if not c.isupper():
            return False
    return True
"#
    )
}

/// Bitcoin address: base58 charset, 26-35 chars, prefix 1 or 3.
pub fn bitcoin_validator(func: &str) -> String {
    format!(
        r#"# validate bitcoin wallet addresses (base58, legacy prefixes)
BASE58 = '123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz'

def {func}(s):
    if len(s) < 26 or len(s) > 35:
        return False
    if s[0] != '1' and s[0] != '3':
        return False
    for c in s:
        if c not in BASE58:
            return False
    return True
"#
    )
}

/// MSISDN: 10-15 digits starting with a known country calling code.
pub fn msisdn_validator(func: &str) -> String {
    format!(
        r#"# validate MSISDN mobile subscriber numbers
PREFIXES = ['1', '7', '20', '27', '30', '31', '33', '34', '39', '40', '41', '44', '46', '47', '48', '49', '52', '55', '61', '62', '63', '64', '65', '66', '81', '82', '86', '90', '91']

def {func}(s):
    if len(s) < 10 or len(s) > 15:
        return False
    for c in s:
        if not c.isdigit():
            return False
    for p in PREFIXES:
        if s[:len(p)] == p:
            return True
    return False
"#
    )
}

/// RGB color: `rgb(r, g, b)` or bare `r,g,b` with components 0-255.
pub fn rgb_validator(func: &str) -> String {
    format!(
        r#"# parse rgb color triples
def {func}(s):
    t = s.strip()
    if t[:4] == 'rgb(':
        if t[len(t) - 1] != ')':
            raise ValueError('unclosed rgb()')
        t = t[4:len(t) - 1]
    parts = t.split(',')
    if len(parts) != 3:
        raise ValueError('need three components')
    values = []
    for p in parts:
        q = p.strip()
        if len(q) == 0 or len(q) > 3:
            raise ValueError('bad component')
        for c in q:
            if not c.isdigit():
                raise ValueError('component must be digits')
        v = int(q)
        if v > 255:
            raise ValueError('component over 255')
        values.append(v)
    info = {{}}
    info['red'] = values[0]
    info['green'] = values[1]
    info['blue'] = values[2]
    info['hex'] = 'computed'
    return info
"#
    )
}

/// Percent-tuple colors: `cmyk(..%, ..%, ..%, ..%)` / `hsl(h, s%, l%)`.
pub fn percent_color_validator(
    func: &str,
    prefix: &str,
    parts: usize,
    first_is_plain: bool,
    first_max: u32,
) -> String {
    let first_check = if first_is_plain {
        format!(
            r#"    q = items[0].strip()
    for c in q:
        if not c.isdigit():
            return False
    if int(q) > {first_max}:
        return False
    start = 1
"#
        )
    } else {
        "    start = 0\n".to_string()
    };
    format!(
        r#"# parse {prefix} color values
def {func}(s):
    t = s.strip()
    if t[:{plen_plus}] != '{prefix}(':
        return False
    if t[len(t) - 1] != ')':
        return False
    inner = t[{plen_plus}:len(t) - 1]
    items = inner.split(',')
    if len(items) != {parts}:
        return False
{first_check}    i = start
    while i < {parts}:
        q = items[i].strip()
        if len(q) < 2 or q[len(q) - 1] != '%':
            return False
        num = q[:len(q) - 1]
        for c in num:
            if not c.isdigit():
                return False
        if int(num) > 100:
            return False
        i += 1
    return True
"#,
        plen_plus = prefix.len() + 1,
    )
}

/// MGRS / USNG grid reference validator (`spaced` allows the USNG form).
pub fn mgrs_validator(func: &str, spaced: bool) -> String {
    let strip = if spaced {
        "    t = s.replace(' ', '')\n"
    } else {
        "    t = s\n"
    };
    format!(
        r#"# validate military grid reference system coordinates
def {func}(s):
{strip}    if len(t) < 5:
        return False
    zone_len = 0
    if t[0].isdigit():
        zone_len = 1
        if len(t) > 1 and t[1].isdigit():
            zone_len = 2
    else:
        return False
    zone = int(t[:zone_len])
    if zone < 1 or zone > 60:
        return False
    rest = t[zone_len:]
    if len(rest) < 3:
        return False
    if rest[0] not in 'CDEFGHJKLMNPQRSTUVWX':
        return False
    if not rest[1].isalpha() or not rest[1].isupper():
        return False
    if not rest[2].isalpha() or not rest[2].isupper():
        return False
    digits = rest[3:]
    if len(digits) == 0 or len(digits) > 10:
        return False
    if len(digits) % 2 != 0:
        return False
    for c in digits:
        if not c.isdigit():
            return False
    return True
"#
    )
}

/// UTM coordinate validator (`17T 630084 4833438`).
pub fn utm_validator(func: &str) -> String {
    format!(
        r#"# validate UTM universal transverse mercator coordinates
def {func}(s):
    parts = s.split()
    if len(parts) != 3:
        return False
    zb = parts[0]
    if len(zb) < 2 or len(zb) > 3:
        return False
    band = zb[len(zb) - 1]
    if band not in 'CDEFGHJKLMNPQRSTUVWX':
        return False
    zone_digits = zb[:len(zb) - 1]
    for c in zone_digits:
        if not c.isdigit():
            return False
    zone = int(zone_digits)
    if zone < 1 or zone > 60:
        return False
    easting = parts[1]
    if len(easting) < 5 or len(easting) > 7:
        return False
    for c in easting:
        if not c.isdigit():
            return False
    northing = parts[2]
    if len(northing) < 6 or len(northing) > 8:
        return False
    for c in northing:
        if not c.isdigit():
            return False
    return True
"#
    )
}

/// SSN validator with the forbidden-range rules.
pub fn ssn_validator(func: &str) -> String {
    format!(
        r#"# validate US social security numbers
def {func}(s):
    parts = s.split('-')
    if len(parts) != 3:
        return False
    if len(parts[0]) != 3 or len(parts[1]) != 2 or len(parts[2]) != 4:
        return False
    for p in parts:
        for c in p:
            if not c.isdigit():
                return False
    area = int(parts[0])
    if area == 0 or area == 666 or area >= 900:
        return False
    if int(parts[1]) == 0:
        return False
    if int(parts[2]) == 0:
        return False
    return True
"#
    )
}

/// EIN validator with a valid-prefix table.
pub fn ein_validator(func: &str) -> String {
    format!(
        r#"# validate employer identification numbers
BAD_PREFIXES = ['00', '07', '08', '09', '17', '18', '19', '28', '29', '49', '69', '70', '78', '79', '89', '96', '97']

def {func}(s):
    parts = s.split('-')
    if len(parts) != 2:
        return False
    if len(parts[0]) != 2 or len(parts[1]) != 7:
        return False
    for p in parts:
        for c in p:
            if not c.isdigit():
                return False
    if parts[0] in BAD_PREFIXES:
        return False
    return True
"#
    )
}

//! Behavioral verification of every generated snippet: the code the corpus
//! plants must actually *behave* like type-handling code — completing
//! normally (and truthily) on valid values of its intended type, and
//! erroring out or returning falsy on garbage. This is what makes the
//! downstream trace-separation experiments meaningful.

use autotype_corpus::{build_corpus, CorpusConfig, Quality};
use autotype_exec::{analyze_module, Candidate, EntryPoint, Executor, PackageIndex, RunOutcome};
use autotype_lang::Value;
use autotype_typesys::{registry, Coverage};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FUEL: u64 = 400_000;

fn package_index(corpus: &autotype_corpus::Corpus) -> PackageIndex {
    let mut idx = PackageIndex::new();
    for (name, source) in &corpus.packages {
        idx.insert(name, source);
    }
    idx
}

/// A run "accepts" when it completes and does not return an explicit False
/// (parsers signal acceptance by not raising).
fn accepts(outcome: &RunOutcome) -> bool {
    match &outcome.result {
        Ok(Value::Bool(false)) => false,
        Ok(_) => true,
        Err(_) => false,
    }
}

#[test]
fn every_good_primary_snippet_accepts_positives_and_rejects_garbage() {
    let corpus = build_corpus(&CorpusConfig::default());
    let packages = package_index(&corpus);
    let mut rng = StdRng::seed_from_u64(99);
    let mut checked_types = 0;

    for ty in registry()
        .iter()
        .filter(|t| t.coverage == Coverage::Covered)
    {
        // Find the type's first Good-quality snippet file.
        let Some((repo, file)) = corpus.repositories.iter().find_map(|r| {
            r.files
                .iter()
                .find(|f| {
                    f.intent == Some(ty.slug)
                        && f.quality == Quality::Good
                        // Taggers classify instead of accept/reject; raw
                        // acceptance semantics do not apply to them.
                        && !f.name.ends_with("_tagger")
                        && !f.source.contains("def classify_value")
                })
                .map(|f| (r, f))
        }) else {
            // Some types only ship sloppy code on purpose (UPC).
            continue;
        };
        let program = repo.program().unwrap_or_else(|e| {
            panic!("{}: {e}", ty.slug);
        });
        let file_id = program.file_id(&file.name).unwrap();
        let (cands, _) = analyze_module(file_id, &program.file(file_id).module);
        // The emitters define helpers first and the main entry last; pick
        // the plain-function candidate for the last-defined function.
        let main_fn = program
            .file(file_id)
            .module
            .functions()
            .last()
            .map(|f| f.name.clone());
        let cand: Candidate = cands
            .iter()
            .find(|c| {
                matches!(&c.entry, EntryPoint::Function { name } if Some(name) == main_fn.as_ref())
            })
            .or_else(|| {
                cands
                    .iter()
                    .find(|c| matches!(c.entry, EntryPoint::Function { .. }))
            })
            .or_else(|| cands.first())
            .unwrap_or_else(|| panic!("{}: no candidates in {}", ty.slug, file.name))
            .clone();

        let mut exec = Executor::new(program, &packages, FUEL);
        // Positives must be accepted.
        let positives = ty.examples(&mut rng, 8);
        let mut accepted = 0;
        for p in &positives {
            let out = exec.run(&cand, p, &packages);
            if accepts(&out) {
                accepted += 1;
            }
        }
        assert!(
            accepted >= 7,
            "{}: snippet {} ({:?}) accepted only {accepted}/8 positives, e.g. {:?}",
            ty.slug,
            file.name,
            cand.entry,
            positives.first()
        );

        // Clearly-wrong inputs must be rejected (completed-but-falsy or
        // raised).
        let garbage = ["", "!!!", "hello world this is not typed data", "@@##$$"];
        let mut rejected = 0;
        for g in garbage {
            let out = exec.run(&cand, g, &packages);
            if !accepts(&out) {
                rejected += 1;
            }
        }
        assert!(
            rejected >= 3,
            "{}: snippet {} rejected only {rejected}/4 garbage inputs",
            ty.slug,
            file.name
        );
        checked_types += 1;
    }
    assert!(checked_types >= 70, "only {checked_types} types checked");
}

#[test]
fn sloppy_upc_snippet_accepts_isbn13() {
    // Reproduces the §9.2 false-positive mechanism end to end.
    let corpus = build_corpus(&CorpusConfig::default());
    let packages = package_index(&corpus);
    let (repo, file) = corpus
        .repositories
        .iter()
        .find_map(|r| {
            r.files
                .iter()
                .find(|f| f.intent == Some("upc"))
                .map(|f| (r, f))
        })
        .unwrap();
    let program = repo.program().unwrap();
    let file_id = program.file_id(&file.name).unwrap();
    let (cands, _) = analyze_module(file_id, &program.file(file_id).module);
    let cand = cands
        .iter()
        .find(|c| matches!(c.entry, EntryPoint::Function { .. }))
        .unwrap()
        .clone();
    let mut exec = Executor::new(program, &packages, FUEL);
    // A valid UPC passes...
    let upc = exec.run(&cand, "036000291452", &packages);
    assert!(accepts(&upc));
    // ...but so does a valid ISBN-13 (same GS1 checksum, length unchecked).
    let isbn = exec.run(&cand, "9784063641561", &packages);
    assert!(accepts(&isbn), "sloppy UPC must accept ISBN-13");
}

#[test]
fn multi_step_pipelines_yield_no_separating_candidates() {
    let corpus = build_corpus(&CorpusConfig::default());
    for ty in registry()
        .iter()
        .filter(|t| t.coverage == Coverage::UnsupportedInvocation)
    {
        let repo = corpus
            .repositories
            .iter()
            .find(|r| r.files.iter().any(|f| f.intent == Some(ty.slug)))
            .unwrap_or_else(|| panic!("{} repo missing", ty.slug));
        let program = repo.program().unwrap();
        for (fid, _) in program.files.iter().enumerate() {
            let (cands, stats) = analyze_module(fid as u32, &program.files[fid].module);
            // The final multi-parameter step must be rejected.
            assert!(stats.rejected_multi_param >= 1, "{}", ty.slug);
            // Whatever single-param helpers remain do not touch the input
            // in a type-specific way — sanity: none of them is the
            // `*_process` function.
            for c in &cands {
                assert!(
                    !c.entry.label().contains("process"),
                    "{}: {} should be rejected",
                    ty.slug,
                    c.entry.label()
                );
            }
        }
    }
}

#[test]
fn wrapped_variants_execute_equivalently() {
    // The argv/stdin/file/class wrappers of a validator must agree with
    // the plain function on the same inputs.
    let corpus = build_corpus(&CorpusConfig::default());
    let packages = package_index(&corpus);
    let mut rng = StdRng::seed_from_u64(7);
    let ty = autotype_typesys::by_slug("creditcard").unwrap();
    let positives = ty.examples(&mut rng, 3);

    let mut variants_seen = 0;
    for repo in &corpus.repositories {
        for file in &repo.files {
            if file.intent != Some("creditcard") || file.quality != Quality::Good {
                continue;
            }
            let program = repo.program().unwrap();
            let file_id = program.file_id(&file.name).unwrap();
            let (cands, _) = analyze_module(file_id, &program.file(file_id).module);
            for cand in cands {
                // Skip the Listing-1 class (raises on valid-but-unknown
                // brands by design) and taggers (classify, never reject).
                let label = cand.entry.label();
                if label.contains("CreditCard") || label.contains("classify_value") {
                    continue;
                }
                // Wrappers around the tagger inherit its classify-don't-
                // reject behavior.
                if file.source.contains("classify_value(value)") {
                    continue;
                }
                let mut exec = Executor::new(program.clone(), &packages, FUEL);
                for p in &positives {
                    let out = exec.run(&cand, p, &packages);
                    assert!(accepts(&out), "{:?} rejected positive {p}", cand.entry);
                }
                let out = exec.run(&cand, "not-a-card", &packages);
                assert!(!accepts(&out), "{:?} accepted garbage", cand.entry);
                variants_seen += 1;
            }
        }
    }
    assert!(
        variants_seen >= 4,
        "only {variants_seen} variants exercised"
    );
}

//! Regenerate every table and figure of the AutoType paper.
//!
//! ```text
//! figures [experiment] [--full]
//!
//! experiments: fig8 fig9 fig10a fig10b fig10c fig12 fig13 fig14
//!              table2 table3 all bench-json
//! ```
//!
//! `bench-json` is not part of `all`: it sweeps the exec-pool worker count
//! over a few representative types and writes per-stage wall-clock timings
//! to `BENCH_pipeline.json` — the synthesis pipeline stages per type, plus
//! the batched table2 column detection and the search-index build (figures
//! themselves are bit-identical at every worker count; only the timings
//! vary).
//!
//! Without `--full`, sweeps run over the 20 popular types and a scaled
//! table corpus so the whole suite finishes in minutes; `--full` evaluates
//! all 112 benchmark types and the full-scale column corpus.

use autotype_bench::{engine_with_workers, session_for, standard_engine};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_eval as eval;
use autotype_eval::EvalConfig;
use autotype_exec::ExecPool;
use autotype_rank::Method;
use autotype_search::SearchEngine;
use autotype_typesys::{popular_types, registry, SemanticType};
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");

    if which == "bench-json" {
        bench_json();
        return;
    }

    let engine = standard_engine();
    let cfg = EvalConfig::default();
    let popular: Vec<&SemanticType> = popular_types();
    let all_types: Vec<&SemanticType> = registry().iter().collect();
    let fig8_types: &[&SemanticType] = if full { &all_types } else { &popular };

    let run = |name: &str| which == name || which == "all";

    if run("fig8") {
        println!(
            "== Figure 8: ranking quality ({} types) ==",
            fig8_types.len()
        );
        let results = eval::fig8(&engine, fig8_types, &cfg);
        print!("{:<8}", "method");
        for k in 1..=cfg.k_max {
            print!("  p@{k:<4}");
        }
        for k in 1..=cfg.k_max {
            print!(" ndcg@{k}");
        }
        println!("  rel-recall@{}", cfg.k_max);
        for r in &results {
            print!("{:<8}", r.method.name());
            for p in &r.precision_at {
                print!("  {p:>5.2}");
            }
            for n in &r.ndcg_at {
                print!("  {n:>5.2}");
            }
            println!("  {:>5.2}", r.relative_recall);
        }
        println!();
    }

    if run("fig9") {
        println!("== Figure 9 / §8.2.2: coverage over all 112 types ==");
        let report = eval::fig9(&engine, &all_types, &cfg);
        println!(
            "covered {}/{} types; mean relevant functions per covered type: {:.1}",
            report.covered, report.total, report.mean_relevant
        );
        // Distribution histogram.
        let mut buckets = [0usize; 7]; // 0,1-2,3-4,5-6,7-9,10-14,15+
        for (_, n) in &report.per_type {
            let b = match n {
                0 => 0,
                1..=2 => 1,
                3..=4 => 2,
                5..=6 => 3,
                7..=9 => 4,
                10..=14 => 5,
                _ => 6,
            };
            buckets[b] += 1;
        }
        let labels = ["0", "1-2", "3-4", "5-6", "7-9", "10-14", "15+"];
        for (label, count) in labels.iter().zip(buckets) {
            println!(
                "  {label:>6} relevant functions: {count:>3} types {}",
                "#".repeat(count)
            );
        }
        println!();
    }

    if run("fig10a") {
        println!("== Figure 10(a): #positive examples (DNF-S, 20 popular types) ==");
        println!("{:<12} p@1   p@2   p@3   p@4", "examples");
        for n in [10usize, 20, 30] {
            let p = eval::sensitivity_examples(&engine, &popular, &cfg, n, 0.0, Method::DnfS);
            println!("{n:<12} {:.2}  {:.2}  {:.2}  {:.2}", p[0], p[1], p[2], p[3]);
        }
        println!();
    }

    if run("fig10b") {
        println!("== Figure 10(b): noise in positive examples (DNF-S) ==");
        println!("{:<12} p@1   p@2   p@3   p@4", "noise");
        for noise in [0.0, 0.1, 0.2, 0.3] {
            let p =
                eval::sensitivity_examples(&engine, &popular, &cfg, cfg.n_pos, noise, Method::DnfS);
            println!(
                "{:<12} {:.2}  {:.2}  {:.2}  {:.2}",
                format!("{:.0}%", noise * 100.0),
                p[0],
                p[1],
                p[2],
                p[3]
            );
        }
        println!();
    }

    if run("fig10c") {
        println!("== Figure 10(c): negative-generation ablation ==");
        println!("{:<18} p@1   p@2   p@3   p@4", "mode");
        for (label, p) in eval::fig10c(&engine, &popular, &cfg) {
            println!(
                "{label:<18} {:.2}  {:.2}  {:.2}  {:.2}",
                p[0], p[1], p[2], p[3]
            );
        }
        println!();
    }

    if run("fig12") {
        println!("== Figure 12: keyword sensitivity (10 types × alternates) ==");
        for (ty, rows) in eval::fig12(&engine, &cfg) {
            println!("{ty}:");
            for (keyword, p) in rows {
                println!(
                    "  {keyword:<55} p@1 {:.2}  p@2 {:.2}  p@3 {:.2}  p@4 {:.2}",
                    p[0], p[1], p[2], p[3]
                );
            }
        }
        println!();
    }

    if run("fig13") {
        println!("== Figure 13: LR sensitivity to #examples vs DNF-S ==");
        println!("{:<22} p@1   p@2   p@3   p@4", "setting");
        let d = eval::sensitivity_examples(&engine, &popular, &cfg, 20, 0.0, Method::DnfS);
        println!(
            "{:<22} {:.2}  {:.2}  {:.2}  {:.2}",
            "DNF-S #pos=20", d[0], d[1], d[2], d[3]
        );
        for n in [10usize, 20, 30] {
            let p = eval::sensitivity_examples(&engine, &popular, &cfg, n, 0.0, Method::Lr);
            println!(
                "{:<22} {:.2}  {:.2}  {:.2}  {:.2}",
                format!("LR #pos={n}"),
                p[0],
                p[1],
                p[2],
                p[3]
            );
        }
        println!();
    }

    if run("fig14") {
        println!("== Figure 14: running-time distribution (simulated minutes) ==");
        let fuel_per_minute = 25_000.0;
        let types: &[&SemanticType] = if full { &all_types } else { &popular };
        let times = eval::fig14(&engine, types, &cfg, fuel_per_minute);
        let under10 = times.iter().filter(|(_, m)| *m < 10.0).count();
        let capped = times.iter().filter(|(_, m)| *m >= 60.0).count();
        println!(
            "{} types < 10 min; {} types hit the 60-min cap (of {})",
            under10,
            capped,
            times.len()
        );
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (name, minutes) in sorted.iter().take(10) {
            println!("  {minutes:>5.1} min  {name}");
        }
        println!();
    }

    if run("table2") {
        let (scale, untyped) = if full { (1.0, 20_000) } else { (0.1, 600) };
        println!("== Table 2 / Figure 11: column-type detection (scale {scale}) ==");
        println!(
            "{:<12} {:>16} {:>16} {:>16} {:>7}   F: dnf   regex  kw",
            "type", "DNF-S", "KW", "REGEX", "union"
        );
        let rows = eval::table2(&engine, &cfg, scale, untyped);
        for r in &rows {
            let fmt = |o: &autotype_eval::Table2Row, which: u8| {
                let oc = match which {
                    0 => &o.dnf,
                    1 => &o.kw,
                    _ => &o.regex,
                };
                if oc.detected == 0 {
                    "0 (-)".to_string()
                } else {
                    format!("{} ({:.2})", oc.correct, oc.precision())
                }
            };
            let (fd, fr, fk) = r.f_scores();
            println!(
                "{:<12} {:>16} {:>16} {:>16} {:>7}   {fd:.2}   {fr:.2}   {fk:.2}",
                r.slug,
                fmt(r, 0),
                fmt(r, 1),
                fmt(r, 2),
                r.union_all
            );
        }
        println!();
    }

    if run("table3") {
        println!("== Table 3: semantic transformations (20 popular types) ==");
        let rows = eval::table3(&engine, &cfg);
        let counts: Vec<f64> = rows.iter().map(|(_, t)| t.len() as f64).collect();
        for (ty, transforms) in &rows {
            let preview: Vec<&str> = transforms.iter().take(6).map(|s| s.as_str()).collect();
            println!("{ty:<28} ({:>2}) {}", transforms.len(), preview.join(", "));
        }
        println!(
            "mean transformations per type: {:.1}",
            autotype_eval::mean(&counts)
        );
        println!();
    }
}

/// Sweep the trace-engine worker count and record per-stage wall-clock
/// timings: the per-type synthesis pipeline, the batched table2 column
/// detection, and the search-index build. Written as hand-rolled JSON: the
/// repo is dependency-free by policy and the schema is a few numbers per
/// row.
fn bench_json() {
    let ms = |t: std::time::Instant| t.elapsed().as_secs_f64() * 1e3;
    let cfg = EvalConfig::default();
    let slugs = ["creditcard", "ipv6", "isbn"];
    let mut rows: Vec<eval::StageTimings> = Vec::new();
    let mut detection_rows: Vec<(eval::Table2Timings, f64, usize)> = Vec::new();
    let documents = autotype::corpus_documents(&build_corpus(&CorpusConfig::default()));
    println!("== bench-json: per-stage timings across worker counts ==");
    for workers in [1usize, 2, 4, 8] {
        let engine = engine_with_workers(workers);
        for slug in slugs {
            let Some(t) = eval::pipeline_timings(&engine, slug, &cfg) else {
                eprintln!("  skipped {slug} at workers={workers}: no session");
                continue;
            };
            println!(
                "workers={:<2} {:<12} retrieval {:>8.3} ms  trace {:>9.3} ms  rank {:>8.3} ms  validate {:>8.3} ms  ({} ranked, fuel {})",
                t.workers, t.slug, t.retrieval_ms, t.trace_ms, t.rank_ms, t.validate_ms, t.ranked, t.fuel_spent
            );
            rows.push(t);
        }

        // Both-engine index build over the corpus documents (the serial
        // phase ROADMAP flagged; one job per repository document).
        let pool = ExecPool::new(workers);
        let t = std::time::Instant::now();
        let gh = SearchEngine::github_with_pool(&documents, &pool);
        let bing = SearchEngine::bing_with_pool(&documents, &pool);
        let index_build_ms = ms(t);
        std::hint::black_box((&gh, &bing));

        // Batched table2 column detection (the column × detector matrix
        // through the exec pool).
        let out = eval::table2_full(&engine, &cfg, 0.1, 600);
        println!(
            "workers={:<2} table2: sessions {:>9.3} ms  dnf-detect {:>9.3} ms  kw {:>7.3} ms  regex {:>8.3} ms  index-build {:>8.3} ms  ({} columns, {} dnf detections)",
            workers,
            out.timings.sessions_ms,
            out.timings.dnf_ms,
            out.timings.kw_ms,
            out.timings.regex_ms,
            index_build_ms,
            out.timings.columns,
            out.dnf.len()
        );
        detection_rows.push((out.timings, index_build_ms, out.dnf.len()));
    }

    // --- Serve: pack cold-load and verdict-cache latency. ---
    // Synthesize one pack per slug, then measure what a deployment sees:
    // cold pack load, first (uncached) batch, repeat (cached) batch.
    println!("== bench-json: serve (pack cold-load + verdict cache) ==");
    struct ServeRow {
        slug: String,
        pack_id: String,
        pack_bytes: u64,
        cold_load_ms: f64,
    }
    let pack_dir =
        std::env::temp_dir().join(format!("autotype-bench-packs-{}", std::process::id()));
    std::fs::create_dir_all(&pack_dir).expect("pack dir");
    let engine = standard_engine();
    let mut serve_rows: Vec<ServeRow> = Vec::new();
    let mut batch: Vec<String> = Vec::new();
    for (i, slug) in slugs.iter().enumerate() {
        let (mut session, ty) = session_for(&engine, slug, 20, 0xBEEF + i as u64);
        let ranked = session.rank(Method::DnfS);
        let Some(top) = ranked.first().cloned() else {
            eprintln!("  skipped {slug}: nothing ranked");
            continue;
        };
        let path = pack_dir.join(format!("{i:02}-{slug}.atpk"));
        session
            .save_pack(&top, slug, Method::DnfS, &path)
            .expect("save pack");
        let pack_bytes = std::fs::metadata(&path).expect("pack metadata").len();
        let t = std::time::Instant::now();
        let validator = autotype_pack::load_pack(&path).expect("load pack");
        let cold_load_ms = ms(t);
        println!(
            "serve: {:<12} pack {:>7} bytes  cold-load {:>7.3} ms  ({})",
            slug,
            pack_bytes,
            cold_load_ms,
            validator.pack_id()
        );
        serve_rows.push(ServeRow {
            slug: slug.to_string(),
            pack_id: validator.pack_id().to_string(),
            pack_bytes,
            cold_load_ms,
        });
        // The probe batch: this type's positives plus shared junk.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xCAFE + i as u64);
        batch.extend(ty.examples(&mut rng, 20));
    }
    for junk in ["", "hello world", "12345", "not-a-type", "###"] {
        batch.push(junk.to_string());
    }
    let serve_workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let runtime = autotype_serve::DetectorRuntime::load_dir(&pack_dir, serve_workers, 65_536)
        .expect("serve runtime");
    let t = std::time::Instant::now();
    let uncached = runtime.detect_batch(&batch);
    let uncached_batch_ms = ms(t);
    let t = std::time::Instant::now();
    let cached = runtime.detect_batch(&batch);
    let cached_batch_ms = ms(t);
    assert_eq!(uncached, cached, "cache must be verdict-transparent");
    let hit_rate = runtime.metrics().hit_rate();
    let per_value = |total_ms: f64| total_ms * 1e3 / batch.len().max(1) as f64;
    println!(
        "serve: batch of {} values  uncached {:>8.3} ms ({:>7.1} us/value)  cached {:>7.3} ms ({:>6.1} us/value)  hit rate {:.3}",
        batch.len(),
        uncached_batch_ms,
        per_value(uncached_batch_ms),
        cached_batch_ms,
        per_value(cached_batch_ms),
        hit_rate
    );
    let executors_reused = autotype_serve::Metrics::read(&runtime.metrics().executors_reused);
    let executors_cloned = autotype_serve::Metrics::read(&runtime.metrics().executors_cloned);

    // --- Serve throughput: lazy vs eager probe counts, keep-alive vs
    // per-request connections. Fresh runtimes so caches start cold and
    // the probe counts are comparable.
    println!("== bench-json: serve throughput (lazy scheduling + keep-alive) ==");
    let lazy_rt = autotype_serve::DetectorRuntime::load_dir(&pack_dir, serve_workers, 65_536)
        .expect("lazy runtime");
    lazy_rt.detect_batch(&batch);
    let lazy_probes = autotype_serve::Metrics::read(&lazy_rt.metrics().cache_misses);
    let probes_saved = autotype_serve::Metrics::read(&lazy_rt.metrics().probes_saved);
    let eager_rt = autotype_serve::DetectorRuntime::load_dir(&pack_dir, serve_workers, 65_536)
        .expect("eager runtime");
    eager_rt.detect_batch_eager(&batch);
    let eager_probes = autotype_serve::Metrics::read(&eager_rt.metrics().cache_misses);
    println!(
        "serve: probes issued  lazy {lazy_probes}  eager {eager_probes}  saved {probes_saved}"
    );
    assert!(
        lazy_probes <= eager_probes,
        "lazy scheduling must not issue more probes than the eager matrix"
    );

    let http_rt = std::sync::Arc::new(
        autotype_serve::DetectorRuntime::load_dir(&pack_dir, serve_workers, 65_536)
            .expect("http runtime"),
    );
    let handle = autotype_serve::serve(
        http_rt,
        autotype_serve::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..autotype_serve::ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = handle.addr();
    let body = format!("{{\"value\":\"{}\"}}", batch[0]);
    const HTTP_REQUESTS: usize = 64;
    // Warm the verdict cache so both runs measure HTTP overhead, not
    // first-probe interpreter time.
    http_request_close(addr, &body);

    let t = std::time::Instant::now();
    http_requests_keepalive(addr, &body, HTTP_REQUESTS);
    let keepalive_ms = ms(t);
    let t = std::time::Instant::now();
    for _ in 0..HTTP_REQUESTS {
        http_request_close(addr, &body);
    }
    let close_ms = ms(t);
    handle.shutdown();
    let req_per_s = |total_ms: f64| HTTP_REQUESTS as f64 / (total_ms / 1e3);
    println!(
        "serve: {HTTP_REQUESTS} requests  keep-alive {:>8.3} ms ({:>8.0} req/s)  close {:>8.3} ms ({:>8.0} req/s)",
        keepalive_ms,
        req_per_s(keepalive_ms),
        close_ms,
        req_per_s(close_ms)
    );
    std::fs::remove_dir_all(&pack_dir).ok();

    let mut out = String::from(
        "{\n  \"bench\": \"pipeline_stage_timings\",\n  \"unit\": \"ms\",\n  \"stages\": [\"retrieval\", \"trace\", \"rank\", \"validate\"],\n  \"rows\": [\n",
    );
    for (i, t) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"slug\": \"{}\", \"workers\": {}, \"retrieval_ms\": {:.3}, \"trace_ms\": {:.3}, \"rank_ms\": {:.3}, \"validate_ms\": {:.3}, \"ranked\": {}, \"fuel_spent\": {}}}{}\n",
            t.slug,
            t.workers,
            t.retrieval_ms,
            t.trace_ms,
            t.rank_ms,
            t.validate_ms,
            t.ranked,
            t.fuel_spent,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str(
        "  ],\n  \"detection_stages\": [\"sessions\", \"dnf_detect\", \"kw_detect\", \"regex_detect\", \"index_build\"],\n  \"detection_rows\": [\n",
    );
    for (i, (t, index_build_ms, dnf_detections)) in detection_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"columns\": {}, \"sessions_ms\": {:.3}, \"dnf_detect_ms\": {:.3}, \"kw_detect_ms\": {:.3}, \"regex_detect_ms\": {:.3}, \"index_build_ms\": {:.3}, \"dnf_detections\": {}}}{}\n",
            t.workers,
            t.columns,
            t.sessions_ms,
            t.dnf_ms,
            t.kw_ms,
            t.regex_ms,
            index_build_ms,
            dnf_detections,
            if i + 1 == detection_rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"serve_rows\": [\n");
    for (i, r) in serve_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"slug\": \"{}\", \"pack_id\": \"{}\", \"pack_bytes\": {}, \"cold_load_ms\": {:.3}}}{}\n",
            r.slug,
            r.pack_id,
            r.pack_bytes,
            r.cold_load_ms,
            if i + 1 == serve_rows.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"serve_summary\": {{\"packs\": {}, \"workers\": {}, \"batch_values\": {}, \"uncached_batch_ms\": {:.3}, \"uncached_us_per_value\": {:.1}, \"cached_batch_ms\": {:.3}, \"cached_us_per_value\": {:.1}, \"cache_hit_rate\": {:.4}, \"executors_reused\": {executors_reused}, \"executors_cloned\": {executors_cloned}}},\n",
        serve_rows.len(),
        serve_workers,
        batch.len(),
        uncached_batch_ms,
        per_value(uncached_batch_ms),
        cached_batch_ms,
        per_value(cached_batch_ms),
        hit_rate
    ));
    out.push_str(&format!(
        "  \"serve_throughput\": {{\"requests\": {HTTP_REQUESTS}, \"keepalive_ms\": {:.3}, \"keepalive_req_per_s\": {:.0}, \"close_ms\": {:.3}, \"close_req_per_s\": {:.0}, \"lazy_probes\": {lazy_probes}, \"eager_probes\": {eager_probes}, \"probes_saved\": {probes_saved}, \"uncached_us_per_value\": {:.1}}}\n",
        keepalive_ms,
        req_per_s(keepalive_ms),
        close_ms,
        req_per_s(close_ms),
        per_value(uncached_batch_ms)
    ));
    out.push_str("}\n");
    std::fs::write("BENCH_pipeline.json", &out).expect("write BENCH_pipeline.json");
    println!(
        "wrote BENCH_pipeline.json ({} pipeline rows, {} detection rows, {} serve rows)",
        rows.len(),
        detection_rows.len(),
        serve_rows.len()
    );
}

/// One `POST /detect` with `Connection: close`, reading to EOF.
fn http_request_close(addr: std::net::SocketAddr, body: &str) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let request = format!(
        "POST /detect HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
}

/// `n` `POST /detect` requests pipelined serially over one persistent
/// connection, each response framed by Content-Length.
fn http_requests_keepalive(addr: std::net::SocketAddr, body: &str, n: usize) {
    use std::io::{BufRead, BufReader, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let request = format!(
        "POST /detect HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    for _ in 0..n {
        stream.write_all(request.as_bytes()).expect("write");
        let mut status = String::new();
        reader.read_line(&mut status).expect("status");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("length");
                }
            }
        }
        let mut resp = vec![0u8; content_length];
        reader.read_exact(&mut resp).expect("body");
    }
}

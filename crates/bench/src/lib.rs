//! # autotype-bench — shared fixtures for benches and the `figures` binary.

use autotype::{AutoType, AutoTypeConfig, NegativeMode, Session};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_typesys::{by_slug, SemanticType};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build the standard engine over the default corpus.
pub fn standard_engine() -> AutoType {
    AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig::default(),
    )
}

/// Build an engine with an explicit trace-execution worker count
/// (`workers = 1` is the exact serial path).
pub fn engine_with_workers(workers: usize) -> AutoType {
    let config = AutoTypeConfig {
        workers,
        ..AutoTypeConfig::default()
    };
    AutoType::new(build_corpus(&CorpusConfig::default()), config)
}

/// A ready-made synthesis session for a type (panics if retrieval fails —
/// only used for covered types).
pub fn session_for<'a>(
    engine: &'a AutoType,
    slug: &str,
    n_pos: usize,
    seed: u64,
) -> (Session<'a>, &'static SemanticType) {
    let ty = by_slug(slug).expect("known type");
    let mut rng = StdRng::seed_from_u64(seed);
    let positives = ty.examples(&mut rng, n_pos);
    let session = engine
        .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
        .expect("session");
    (session, ty)
}

//! Ablation benches for the DNF solver design choices DESIGN.md calls out:
//! k-conciseness, θ budget, and literal grouping.

use autotype_dnf::{best_cover_complete, best_k_concise_cover, BitSet, CoverInput, CoverParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic but realistic cover input: `n_lits` literals over 20
/// positives + 200 negatives, with one separating literal pair and lots of
/// redundant/noisy literals (typical featurized traces).
fn synthetic_input(n_lits: usize, seed: u64) -> CoverInput {
    let n_pos = 20;
    let n_neg = 200;
    let universe = n_pos + n_neg;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coverage = Vec::with_capacity(n_lits);
    for l in 0..n_lits {
        let mut set = BitSet::new(universe);
        match l {
            // The separating pair.
            0 => (0..n_pos).for_each(|e| set.insert(e)),
            1 => (0..n_pos)
                .chain(n_pos..n_pos + 10)
                .for_each(|e| set.insert(e)),
            // Redundant copies of literal 0 (grouping fodder).
            2..=6 => (0..n_pos).for_each(|e| set.insert(e)),
            // Noise.
            _ => {
                for e in 0..universe {
                    if rng.gen_bool(0.3) {
                        set.insert(e);
                    }
                }
            }
        }
        coverage.push(set);
    }
    CoverInput {
        n_pos,
        n_neg,
        coverage,
    }
}

fn bench_k(c: &mut Criterion) {
    let input = synthetic_input(120, 1);
    let mut group = c.benchmark_group("dnf_k");
    for k in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let params = CoverParams {
                k,
                ..CoverParams::default()
            };
            b.iter(|| std::hint::black_box(best_k_concise_cover(&input, &params)))
        });
    }
    group.bench_function("complete", |b| {
        b.iter(|| std::hint::black_box(best_cover_complete(&input, &CoverParams::default())))
    });
    group.finish();
}

fn bench_theta(c: &mut Criterion) {
    let input = synthetic_input(120, 2);
    let mut group = c.benchmark_group("dnf_theta");
    for theta in [0.0, 0.1, 0.3, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{theta}")),
            &theta,
            |b, &theta| {
                let params = CoverParams {
                    theta,
                    ..CoverParams::default()
                };
                b.iter(|| std::hint::black_box(best_k_concise_cover(&input, &params)))
            },
        );
    }
    group.finish();
}

fn bench_literal_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnf_literals");
    for n_lits in [40usize, 120, 400] {
        let input = synthetic_input(n_lits, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n_lits), &n_lits, |b, _| {
            b.iter(|| std::hint::black_box(best_k_concise_cover(&input, &CoverParams::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k, bench_theta, bench_literal_count);
criterion_main!(benches);

//! Substrate benches: interpreter throughput, featurization, and
//! negative-example generation — the per-run costs the end-to-end latency
//! (Figure 14) is built from.

use autotype_exec::featurize;
use autotype_lang::{Interp, Program, Value};
use autotype_negative::{generate_negatives, MutationConfig, Strategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const LUHN_SRC: &str = r#"
def luhn(s):
    total = 0
    flip = 0
    i = len(s) - 1
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total = total + d
        flip = flip + 1
        i = i - 1
    return total % 10 == 0
"#;

fn bench_interpreter(c: &mut Criterion) {
    let mut program = Program::new();
    program.add_file("card", LUHN_SRC).unwrap();
    c.bench_function("interp/luhn_16_digits", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&program);
            std::hint::black_box(
                interp
                    .call_function(0, "luhn", vec![Value::str("4532015112830366")])
                    .unwrap(),
            )
        })
    });
}

fn bench_featurize(c: &mut Criterion) {
    let mut program = Program::new();
    program.add_file("card", LUHN_SRC).unwrap();
    let mut interp = Interp::new(&program);
    interp
        .call_function(0, "luhn", vec![Value::str("4532015112830366")])
        .unwrap();
    let events = interp.reset_trace();
    c.bench_function("featurize/luhn_trace", |b| {
        b.iter(|| std::hint::black_box(featurize(&events)))
    });
}

fn bench_negatives(c: &mut Criterion) {
    let positives: Vec<String> = vec![
        "4532015112830366".into(),
        "4556737586899855".into(),
        "371449635398431".into(),
        "6011016011016011".into(),
    ];
    let mut group = c.benchmark_group("negatives");
    for strategy in Strategy::HIERARCHY {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy}")),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    std::hint::black_box(generate_negatives(
                        &positives,
                        s,
                        &MutationConfig::default(),
                        &mut rng,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_featurize, bench_negatives);
criterion_main!(benches);

//! End-to-end pipeline benches: one per evaluation stage, so the cost
//! structure behind Figure 14 (search → trace → rank) is measurable.

use autotype::NegativeMode;
use autotype_bench::{engine_with_workers, session_for, standard_engine};
use autotype_rank::Method;
use autotype_typesys::by_slug;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_retrieval(c: &mut Criterion) {
    let engine = standard_engine();
    c.bench_function("search/union_top_k_credit_card", |b| {
        b.iter(|| std::hint::black_box(engine.retrieve("credit card")))
    });
}

fn bench_session_build(c: &mut Criterion) {
    let ty = by_slug("creditcard").unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let positives = ty.examples(&mut rng, 20);
    let mut group = c.benchmark_group("session");
    group.sample_size(10);
    // Sweep the trace-execution worker count: `workers = 1` is the exact
    // serial loop, higher counts shard the candidate × example hot phase.
    // Output is bit-identical at every count, so this measures pure
    // scheduling/merge overhead vs. parallel speedup.
    for workers in [1usize, 2, 4, 8] {
        let engine = engine_with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("build_trace_rank_creditcard", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(4);
                    let mut session = engine
                        .session("credit card", &positives, NegativeMode::Hierarchy, &mut rng)
                        .unwrap();
                    std::hint::black_box(session.rank(Method::DnfS))
                })
            },
        );
    }
    group.finish();
}

fn bench_rank_methods(c: &mut Criterion) {
    let engine = standard_engine();
    let (mut session, _) = session_for(&engine, "creditcard", 20, 7);
    let mut group = c.benchmark_group("rank_method");
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, m| b.iter(|| std::hint::black_box(session.rank(*m))),
        );
    }
    group.finish();
}

fn bench_validator_replay(c: &mut Criterion) {
    let engine = standard_engine();
    let (mut session, ty) = session_for(&engine, "isbn", 20, 9);
    let top = session.rank(Method::DnfS).into_iter().next().unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let fresh = ty.examples(&mut rng, 1).pop().unwrap();
    c.bench_function("validator/replay_isbn", |b| {
        b.iter(|| std::hint::black_box(session.validate(&top, &fresh)))
    });
}

criterion_group!(
    benches,
    bench_retrieval,
    bench_session_build,
    bench_rank_methods,
    bench_validator_replay
);
criterion_main!(benches);

//! # autotype-tables — column-type detection over web tables (§9)
//!
//! The application experiment of the paper: run synthesized type-detection
//! logic over a large corpus of web-table columns and compare against the
//! KW (header keyword) and REGEX (Potter's Wheel pattern) baselines.
//!
//! [`corpus`] generates a synthetic column population matching Table 2's
//! per-type counts and failure modes; [`regex`] implements the pattern
//! inference baseline; [`detect`] implements the three detection methods
//! and the precision / pooled-recall / F-score bookkeeping.

pub mod corpus;
pub mod detect;
pub mod regex;

pub use corpus::{generate_columns, Column, TableConfig, PAPER_TYPE_COUNTS};
pub use detect::{
    column_passes, correct_columns, detect_by_header, detect_by_pattern, detect_by_values,
    detect_by_values_batched, detect_by_values_mut, score_type, Detection, SyncValueDetector,
    TypeOutcome, ValueDetector, ValueDetectorMut, VALUE_THRESHOLD,
};
pub use regex::{infer_pattern, InferredPattern, PTok};

//! Column-type detection (§9.1): the three compared methods.
//!
//! * **DNF-S** — a synthesized type-detection function per type; a column
//!   is predicted as type T when over 80 % of its values are accepted
//!   ("to account for dirty values such as meta-data mixed in columns").
//! * **KW** — header keyword matching.
//! * **REGEX** — the Potter's-Wheel structure pattern inferred from the
//!   same positive examples AutoType used.

use crate::corpus::Column;
use crate::regex::InferredPattern;
use autotype_exec::ExecPool;

/// Acceptance threshold over column values (both DNF-S and REGEX).
pub const VALUE_THRESHOLD: f64 = 0.8;

/// A detection produced by some method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    pub column: usize,
    pub slug: &'static str,
}

/// A named per-value predicate, as produced by validator synthesis.
pub type ValueDetector<'a> = (&'static str, Box<dyn Fn(&str) -> bool + 'a>);

/// A named per-value predicate with mutable state — the shape a synthesis
/// `Session` produces, where every probe run charges fuel to the session.
pub type ValueDetectorMut<'a> = (&'static str, Box<dyn FnMut(&str) -> bool + 'a>);

/// A named thread-safe per-value predicate for the batched detection path.
pub type SyncValueDetector<'a> = (&'static str, Box<dyn Fn(&str) -> bool + Sync + 'a>);

/// The §9.1 acceptance rule for one column: strictly more than
/// [`VALUE_THRESHOLD`] of its values pass the predicate ("to account for
/// dirty values such as meta-data mixed in columns"). Empty columns never
/// pass. Every detection path funnels through this one comparison so the
/// threshold semantics cannot drift between the serial, mutable, batched,
/// and serve-runtime variants (`autotype-serve` calls it for
/// `POST /detect/column`).
pub fn column_passes(values: &[String], mut predicate: impl FnMut(&str) -> bool) -> bool {
    if values.is_empty() {
        return false;
    }
    let accepted = values.iter().filter(|v| predicate(v)).count();
    accepted as f64 / values.len() as f64 > VALUE_THRESHOLD
}

/// Detect with stateful per-type value predicates. This is the reference
/// detection loop: columns in order, detectors in order, first matching
/// type wins for a column. [`detect_by_values`], [`detect_by_pattern`], and
/// (by an index-ordered merge) [`detect_by_values_batched`] all share these
/// semantics.
pub fn detect_by_values_mut(
    columns: &[Column],
    detectors: &mut [ValueDetectorMut<'_>],
) -> Vec<Detection> {
    let mut out = Vec::new();
    for (idx, column) in columns.iter().enumerate() {
        for (slug, predicate) in detectors.iter_mut() {
            if column_passes(&column.values, &mut **predicate) {
                out.push(Detection { column: idx, slug });
                break; // first matching type wins for a column
            }
        }
    }
    out
}

/// Detect with per-type value predicates (the synthesized functions).
pub fn detect_by_values(columns: &[Column], detectors: &[ValueDetector<'_>]) -> Vec<Detection> {
    let mut muts: Vec<ValueDetectorMut<'_>> = detectors
        .iter()
        .map(|(slug, f)| {
            (
                *slug,
                Box::new(move |v: &str| f(v)) as Box<dyn FnMut(&str) -> bool>,
            )
        })
        .collect();
    detect_by_values_mut(columns, &mut muts)
}

/// Batched column detection through an [`ExecPool`]: one job per
/// column × detector, merged in input order.
///
/// Each job scores one (column, detector) cell of the matrix against
/// [`VALUE_THRESHOLD`]; because jobs are enqueued column-major with
/// detectors in priority order and merged by input index, the
/// first-matching-type-wins rule produces exactly the [`detect_by_values`]
/// detections at every worker count (`workers = 1` runs the jobs serially
/// in input order). Unlike the serial loop, lower-priority detectors still
/// run for an already-detected column — they execute in parallel and their
/// verdicts are discarded by the merge, trading redundant work for
/// latency.
pub fn detect_by_values_batched(
    columns: &[Column],
    detectors: &[SyncValueDetector<'_>],
    pool: &ExecPool,
) -> Vec<Detection> {
    let jobs: Vec<(usize, usize)> = (0..columns.len())
        .filter(|ci| !columns[*ci].values.is_empty())
        .flat_map(|ci| (0..detectors.len()).map(move |di| (ci, di)))
        .collect();
    let passed = pool.run_ordered(jobs.clone(), |_, (ci, di)| {
        column_passes(&columns[ci].values, |v| (detectors[di].1)(v))
    });
    let mut out = Vec::new();
    let mut decided: Option<usize> = None;
    for (&(ci, di), pass) in jobs.iter().zip(passed) {
        if decided == Some(ci) {
            continue; // an earlier (higher-priority) detector already won
        }
        if pass {
            out.push(Detection {
                column: ci,
                slug: detectors[di].0,
            });
            decided = Some(ci);
        }
    }
    out
}

/// Detect with header keywords (the KW baseline): a column is predicted as
/// T when its header contains one of T's keywords as a token substring.
pub fn detect_by_header(
    columns: &[Column],
    keywords: &[(&'static str, Vec<&'static str>)],
) -> Vec<Detection> {
    // Normalize the keyword lists once up front instead of re-lowercasing
    // every keyword for every column.
    let keywords: Vec<(&'static str, Vec<String>)> = keywords
        .iter()
        .map(|(slug, words)| (*slug, words.iter().map(|w| w.to_lowercase()).collect()))
        .collect();
    let mut out = Vec::new();
    for (idx, column) in columns.iter().enumerate() {
        let Some(header) = &column.header else {
            continue;
        };
        let header = header.to_lowercase();
        for (slug, words) in &keywords {
            if words.iter().any(|w| header.contains(w.as_str())) {
                out.push(Detection { column: idx, slug });
                break;
            }
        }
    }
    out
}

/// Detect with inferred structure patterns (the REGEX baseline). Types
/// whose pattern inference failed contribute no detections.
pub fn detect_by_pattern(
    columns: &[Column],
    patterns: &[(&'static str, Option<InferredPattern>)],
) -> Vec<Detection> {
    let mut detectors: Vec<ValueDetectorMut<'_>> = patterns
        .iter()
        .filter_map(|(slug, pattern)| {
            let pattern = pattern.as_ref()?;
            Some((
                *slug,
                Box::new(move |v: &str| pattern.matches(v)) as Box<dyn FnMut(&str) -> bool>,
            ))
        })
        .collect();
    detect_by_values_mut(columns, &mut detectors)
}

/// Per-type precision / relative recall / F-score against ground truth,
/// using the union of correct detections across methods as the recall
/// denominator (§9.1's pooled "relative recall").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeOutcome {
    pub detected: usize,
    pub correct: usize,
    pub union_truth: usize,
}

impl TypeOutcome {
    pub fn precision(&self) -> f64 {
        if self.detected == 0 {
            return 0.0;
        }
        self.correct as f64 / self.detected as f64
    }

    pub fn recall(&self) -> f64 {
        if self.union_truth == 0 {
            return 0.0;
        }
        self.correct as f64 / self.union_truth as f64
    }

    pub fn f_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a method's detections for one type. `union_correct` is the set of
/// column indices any method detected correctly for this type.
pub fn score_type(
    detections: &[Detection],
    columns: &[Column],
    slug: &str,
    union_correct: &std::collections::BTreeSet<usize>,
) -> TypeOutcome {
    let mine: Vec<&Detection> = detections.iter().filter(|d| d.slug == slug).collect();
    let correct = mine
        .iter()
        .filter(|d| columns[d.column].truth == Some(d.slug))
        .count();
    TypeOutcome {
        detected: mine.len(),
        correct,
        union_truth: union_correct.len(),
    }
}

/// Column indices a method detected correctly for a type.
pub fn correct_columns(
    detections: &[Detection],
    columns: &[Column],
    slug: &str,
) -> std::collections::BTreeSet<usize> {
    detections
        .iter()
        .filter(|d| d.slug == slug && columns[d.column].truth == Some(d.slug))
        .map(|d| d.column)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<Column> {
        vec![
            Column {
                header: Some("ip".into()),
                values: vec![
                    "1.2.3.4".into(),
                    "10.0.0.1".into(),
                    "N/A".into(),
                    "8.8.8.8".into(),
                    "9.9.9.9".into(),
                    "7.7.7.7".into(),
                ],
                truth: Some("ipv4"),
            },
            Column {
                header: Some("version number".into()),
                values: vec![
                    "7.74.0.0".into(),
                    "1.2.0.0".into(),
                    "2.0.0.1".into(),
                    "3.1.0.0".into(),
                    "8.0.0.0".into(),
                ],
                truth: None,
            },
            Column {
                header: Some("ip address list".into()),
                values: vec![
                    "hello".into(),
                    "world".into(),
                    "x".into(),
                    "y".into(),
                    "z".into(),
                ],
                truth: None,
            },
        ]
    }

    fn ipv4_like(v: &str) -> bool {
        let parts: Vec<&str> = v.split('.').collect();
        parts.len() == 4
            && parts
                .iter()
                .all(|p| p.parse::<u32>().map(|x| x <= 255).unwrap_or(false))
    }

    #[test]
    fn value_detection_uses_80_percent_threshold() {
        let cols = columns();
        let detectors: Vec<(&'static str, Box<dyn Fn(&str) -> bool>)> =
            vec![("ipv4", Box::new(ipv4_like))];
        let detections = detect_by_values(&cols, &detectors);
        // Column 0 has 5/6 valid (83%) → detected; column 1 is the
        // version-number ambiguity → also detected (the §9.2 false
        // positive); column 2 rejected.
        assert!(detections.contains(&Detection {
            column: 0,
            slug: "ipv4"
        }));
        assert!(detections.contains(&Detection {
            column: 1,
            slug: "ipv4"
        }));
        assert!(!detections.iter().any(|d| d.column == 2));
    }

    #[test]
    fn batched_detection_matches_serial_at_every_worker_count() {
        let cols = columns();
        let serial: Vec<(&'static str, Box<dyn Fn(&str) -> bool>)> = vec![
            ("ipv4", Box::new(ipv4_like)),
            ("anything", Box::new(|v: &str| !v.is_empty())),
        ];
        let expected = detect_by_values(&cols, &serial);
        // "anything" accepts every non-empty value, so first-win priority is
        // actually exercised: ipv4 must still win columns 0 and 1.
        assert_eq!(expected.iter().filter(|d| d.slug == "ipv4").count(), 2);
        assert_eq!(expected.iter().filter(|d| d.slug == "anything").count(), 1);
        for workers in [1, 2, 4, 8] {
            let batched: Vec<SyncValueDetector> = vec![
                ("ipv4", Box::new(ipv4_like)),
                ("anything", Box::new(|v: &str| !v.is_empty())),
            ];
            let got = detect_by_values_batched(&cols, &batched, &ExecPool::new(workers));
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn mut_detectors_share_threshold_and_break_semantics() {
        let cols = columns();
        let mut calls = 0usize;
        let mut detectors: Vec<ValueDetectorMut> = vec![(
            "ipv4",
            Box::new(|v: &str| {
                calls += 1;
                ipv4_like(v)
            }),
        )];
        let detections = detect_by_values_mut(&cols, &mut detectors);
        drop(detectors);
        assert_eq!(
            detections,
            vec![
                Detection {
                    column: 0,
                    slug: "ipv4"
                },
                Detection {
                    column: 1,
                    slug: "ipv4"
                }
            ]
        );
        // Every value of every column probed exactly once.
        assert_eq!(calls, cols.iter().map(|c| c.values.len()).sum::<usize>());
    }

    #[test]
    fn header_detection_matches_keywords_including_false_positives() {
        let cols = columns();
        let keywords = vec![("ipv4", vec!["ip", "ip address"])];
        let detections = detect_by_header(&cols, &keywords);
        assert!(detections.contains(&Detection {
            column: 0,
            slug: "ipv4"
        }));
        // The keyword baseline's classic false positive: header mentions
        // "ip address" but the values are not addresses.
        assert!(detections.contains(&Detection {
            column: 2,
            slug: "ipv4"
        }));
    }

    #[test]
    fn scoring_computes_precision_and_pooled_recall() {
        let cols = columns();
        let detectors: Vec<(&'static str, Box<dyn Fn(&str) -> bool>)> =
            vec![("ipv4", Box::new(ipv4_like))];
        let detections = detect_by_values(&cols, &detectors);
        let union = correct_columns(&detections, &cols, "ipv4");
        let outcome = score_type(&detections, &cols, "ipv4", &union);
        assert_eq!(outcome.detected, 2);
        assert_eq!(outcome.correct, 1);
        assert!((outcome.precision() - 0.5).abs() < 1e-12);
        assert!((outcome.recall() - 1.0).abs() < 1e-12);
        assert!((outcome.f_score() - 2.0 / 3.0).abs() < 1e-12);
    }
}

//! Synthetic web-table column corpus (§9.1).
//!
//! The paper samples 60K columns from Bing's web-table index. This
//! generator reproduces the *population properties* that drive Table 2 and
//! Figure 11: per-type column counts matching the paper's Union-all row,
//! dirty values mixed into typed columns (motivating the 80 % threshold),
//! missing/generic headers, composite values, partial addresses, and the
//! ambiguous "version number" / "temperature range" columns behind the
//! paper's false-positive analysis.

use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::Rng;

/// One web-table column.
#[derive(Debug, Clone)]
pub struct Column {
    pub header: Option<String>,
    pub values: Vec<String>,
    /// Ground-truth type slug (None for untyped / ambiguous columns).
    pub truth: Option<&'static str>,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Scale factor applied to the paper's per-type column counts
    /// (1.0 reproduces Table 2's Union-all row; tests use less).
    pub scale: f64,
    /// Number of untyped filler columns.
    pub untyped: usize,
    /// Rows per column.
    pub rows: (usize, usize),
    /// Fraction of dirty values inside typed columns.
    pub dirt: f64,
    /// Probability that a typed column loses its header.
    pub header_dropout: f64,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig {
            scale: 1.0,
            untyped: 2000,
            rows: (8, 24),
            dirt: 0.08,
            header_dropout: 0.3,
        }
    }
}

/// Paper Table 2 "Union-all" counts: the 15 (of 20) popular types that
/// actually occur in web tables, with their column counts.
pub const PAPER_TYPE_COUNTS: &[(&str, usize)] = &[
    ("datetime", 3069),
    ("address", 358),
    ("country", 155),
    ("phone", 82),
    ("currency", 37),
    ("email", 37),
    ("zipcode", 23),
    ("url", 16),
    ("isbn", 12),
    ("ipv4", 11),
    ("ean", 4),
    ("upc", 3),
    ("isin", 1),
    ("issn", 1),
    ("creditcard", 1),
];

/// Headers used when a typed column keeps one: sometimes descriptive,
/// sometimes generic ("name", "value" — §7.2).
const GENERIC_HEADERS: &[&str] = &["name", "value", "id", "code", "info", "data", "field"];

/// Dirty cell values commonly mixed into web-table columns.
const DIRT: &[&str] = &["N/A", "-", "", "total", "unknown", "see note", "TBD"];

fn descriptive_header(slug: &str) -> &'static str {
    match slug {
        "datetime" => "date",
        "address" => "address",
        "country" => "country",
        "phone" => "phone",
        "currency" => "price",
        "email" => "email",
        "zipcode" => "zip",
        "url" => "website",
        "isbn" => "isbn",
        "ipv4" => "ip address",
        "ean" => "ean",
        "upc" => "upc",
        "isin" => "isin",
        "issn" => "issn",
        "creditcard" => "card number",
        _ => "column",
    }
}

/// Generate the corpus.
pub fn generate_columns(config: &TableConfig, rng: &mut StdRng) -> Vec<Column> {
    let mut columns = Vec::new();

    for (slug, paper_count) in PAPER_TYPE_COUNTS {
        let ty = by_slug(slug).expect("benchmark type");
        let count = ((*paper_count as f64) * config.scale).ceil() as usize;
        for i in 0..count {
            let rows = rng.gen_range(config.rows.0..=config.rows.1);
            let mut values: Vec<String> = (0..rows).map(|_| (ty.generate)(rng)).collect();
            // Dirt.
            for v in values.iter_mut() {
                if rng.gen_bool(config.dirt) {
                    *v = DIRT[rng.gen_range(0..DIRT.len())].to_string();
                }
            }
            // Failure-mode variants from §9.2.
            if *slug == "isbn" && i % 4 == 3 {
                // Composite values: "ISBN 9784063641677".
                for v in values.iter_mut() {
                    if !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()) {
                        *v = format!("ISBN {v}");
                    }
                }
            }
            if *slug == "address" && i % 5 == 4 {
                // Partial addresses ("100 Main Street") the top-1 parser
                // cannot handle.
                for v in values.iter_mut() {
                    if let Some(comma) = v.find(',') {
                        v.truncate(comma);
                    }
                }
            }
            if *slug == "phone" && i % 6 == 5 {
                // Composite address+phone values.
                for v in values.iter_mut() {
                    *v = format!("524 Lake, Salem, OR, {v}");
                }
            }
            let header = if rng.gen_bool(config.header_dropout) {
                None
            } else if rng.gen_bool(0.25) {
                Some(GENERIC_HEADERS[rng.gen_range(0..GENERIC_HEADERS.len())].to_string())
            } else {
                Some(descriptive_header(slug).to_string())
            };
            columns.push(Column {
                header,
                values,
                truth: Some(ty.slug),
            });
        }
    }

    // Ambiguous columns (§9.2 false positives): software versions that look
    // like IPv4, and numeric ranges.
    let ambiguous = (config.untyped / 1000).clamp(2, 6);
    for _ in 0..ambiguous {
        let rows = rng.gen_range(config.rows.0..=config.rows.1);
        let values = (0..rows)
            .map(|_| {
                format!(
                    "{}.{}.{}.{}",
                    rng.gen_range(1..20),
                    rng.gen_range(0..100),
                    rng.gen_range(0..10),
                    rng.gen_range(0..10)
                )
            })
            .collect();
        columns.push(Column {
            header: Some("version number".to_string()),
            values,
            truth: None,
        });
    }
    for _ in 0..ambiguous {
        let rows = rng.gen_range(config.rows.0..=config.rows.1);
        let values = (0..rows)
            .map(|_| format!("{}-{}", rng.gen_range(1..15), rng.gen_range(5..30)))
            .collect();
        columns.push(Column {
            header: Some("temperature range".to_string()),
            values,
            truth: None,
        });
    }

    // Untyped filler columns.
    const WORDS: &[&str] = &[
        "apple", "table", "river", "mountain", "blue", "green", "alpha", "beta", "north", "south",
        "engine", "wheel", "stone", "cloud", "paper", "glass",
    ];
    for i in 0..config.untyped {
        let rows = rng.gen_range(config.rows.0..=config.rows.1);
        let values: Vec<String> = match i % 4 {
            0 => (0..rows)
                .map(|_| WORDS[rng.gen_range(0..WORDS.len())].to_string())
                .collect(),
            1 => (0..rows)
                .map(|_| {
                    // Heterogeneous magnitudes, like real numeric columns.
                    let digits = rng.gen_range(1..8u32);
                    rng.gen_range(10i64.pow(digits - 1)..10i64.pow(digits))
                        .to_string()
                })
                .collect(),
            2 => (0..rows)
                .map(|_| {
                    format!(
                        "{} {}",
                        WORDS[rng.gen_range(0..WORDS.len())],
                        rng.gen_range(0..100)
                    )
                })
                .collect(),
            _ => (0..rows)
                .map(|_| format!("{:.2}", rng.gen_range(0..10000) as f64 / 100.0))
                .collect(),
        };
        // A few untyped columns carry misleading type-like headers — the
        // KW baseline's false-positive source (§9.2).
        const MISLEADING: &[&str] = &["date", "address", "country", "phone", "email"];
        let header = if rng.gen_bool(0.4) {
            None
        } else if rng.gen_bool(0.08) {
            Some(MISLEADING[rng.gen_range(0..MISLEADING.len())].to_string())
        } else {
            Some(WORDS[rng.gen_range(0..WORDS.len())].to_string())
        };
        columns.push(Column {
            header,
            values,
            truth: None,
        });
    }

    columns
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> Vec<Column> {
        let config = TableConfig {
            scale: 0.02,
            untyped: 100,
            ..Default::default()
        };
        generate_columns(&config, &mut StdRng::seed_from_u64(5))
    }

    #[test]
    fn generates_typed_and_untyped_columns() {
        let columns = small();
        assert!(columns.iter().any(|c| c.truth.is_some()));
        assert!(columns.iter().filter(|c| c.truth.is_none()).count() >= 100);
    }

    #[test]
    fn typed_columns_are_mostly_valid() {
        let columns = small();
        for c in columns.iter().filter(|c| c.truth.is_some()) {
            let ty = by_slug(c.truth.unwrap()).unwrap();
            let valid = c.values.iter().filter(|v| (ty.validate)(v)).count();
            // Dirt and failure-mode variants lower validity, but the bulk
            // of a typed column should be parseable... except the composite
            // variants which are deliberately broken.
            if valid * 2 < c.values.len() {
                // Allowed only for the composite/partial failure variants.
                continue;
            }
            assert!(valid as f64 / c.values.len() as f64 > 0.5);
        }
    }

    #[test]
    fn ambiguous_version_columns_exist() {
        let columns = small();
        assert!(columns
            .iter()
            .any(|c| c.header.as_deref() == Some("version number")));
        assert!(columns
            .iter()
            .any(|c| c.header.as_deref() == Some("temperature range")));
    }

    #[test]
    fn scale_controls_counts() {
        let mut rng = StdRng::seed_from_u64(6);
        let full = generate_columns(
            &TableConfig {
                scale: 0.1,
                untyped: 0,
                ..Default::default()
            },
            &mut rng,
        );
        let datetime = full.iter().filter(|c| c.truth == Some("datetime")).count();
        assert_eq!(datetime, 307); // ceil(3069 * 0.1)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_columns(
            &TableConfig {
                scale: 0.01,
                untyped: 20,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(9),
        );
        let b = generate_columns(
            &TableConfig {
                scale: 0.01,
                untyped: 20,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].values, b[0].values);
    }
}

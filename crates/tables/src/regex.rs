//! The REGEX baseline (§9.1): structure patterns inferred from positive
//! examples "using techniques described in Potter's Wheel".
//!
//! Each example is segmented into runs of digits, letters, and literal
//! punctuation; patterns generalize across examples only when every example
//! shares the same token structure (otherwise inference fails — the paper's
//! "fails to generate a regex from examples containing mixed format").
//! Matching checks token classes with min/max run lengths, so the pattern
//! "often fail\[s\] to generalize when the input data cover a subset of
//! possible examples" (e.g. undashed ISBNs never match dashed ones — §9.2).

/// A structure token: a character-class run with observed length bounds, or
/// a literal separator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PTok {
    Digits { min: usize, max: usize },
    Letters { min: usize, max: usize },
    Literal(String),
}

/// An inferred structure pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredPattern {
    pub tokens: Vec<PTok>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Digit,
    Letter,
    Punct,
}

fn class_of(c: char) -> Class {
    if c.is_numeric() {
        Class::Digit
    } else if c.is_alphabetic() {
        Class::Letter
    } else {
        Class::Punct
    }
}

/// Segment a string into (class, run-text) tokens.
fn segment(s: &str) -> Vec<(Class, String)> {
    let mut out: Vec<(Class, String)> = Vec::new();
    for c in s.chars() {
        let cls = class_of(c);
        match out.last_mut() {
            Some((last, text)) if *last == cls && cls != Class::Punct => text.push(c),
            _ => out.push((cls, c.to_string())),
        }
    }
    out
}

/// Infer a pattern from positive examples. Returns `None` when the
/// examples disagree structurally (mixed formats).
pub fn infer_pattern<S: AsRef<str>>(examples: &[S]) -> Option<InferredPattern> {
    let mut tokens: Option<Vec<PTok>> = None;
    for example in examples {
        let segs = segment(example.as_ref());
        if segs.is_empty() {
            return None;
        }
        match &mut tokens {
            None => {
                tokens = Some(
                    segs.into_iter()
                        .map(|(cls, text)| match cls {
                            Class::Digit => PTok::Digits {
                                min: text.chars().count(),
                                max: text.chars().count(),
                            },
                            Class::Letter => PTok::Letters {
                                min: text.chars().count(),
                                max: text.chars().count(),
                            },
                            Class::Punct => PTok::Literal(text),
                        })
                        .collect(),
                );
            }
            Some(existing) => {
                if existing.len() != segs.len() {
                    return None; // structural mismatch
                }
                for (tok, (cls, text)) in existing.iter_mut().zip(segs) {
                    match (tok, cls) {
                        (PTok::Digits { min, max }, Class::Digit) => {
                            *min = (*min).min(text.chars().count());
                            *max = (*max).max(text.chars().count());
                        }
                        (PTok::Letters { min, max }, Class::Letter) => {
                            *min = (*min).min(text.chars().count());
                            *max = (*max).max(text.chars().count());
                        }
                        (PTok::Literal(lit), Class::Punct) if *lit == text => {}
                        _ => return None,
                    }
                }
            }
        }
    }
    tokens.map(|tokens| InferredPattern { tokens })
}

impl InferredPattern {
    /// Match a string against the pattern (greedy run matching).
    pub fn matches(&self, s: &str) -> bool {
        let segs = segment(s);
        if segs.len() != self.tokens.len() {
            return false;
        }
        for (tok, (cls, text)) in self.tokens.iter().zip(segs) {
            let ok = match (tok, cls) {
                (PTok::Digits { min, max }, Class::Digit) => {
                    (*min..=*max).contains(&text.chars().count())
                }
                (PTok::Letters { min, max }, Class::Letter) => {
                    (*min..=*max).contains(&text.chars().count())
                }
                (PTok::Literal(lit), Class::Punct) => *lit == text,
                _ => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_phone_pattern() {
        let p = infer_pattern(&["206-555-0123", "425-111-2222"]).unwrap();
        assert!(p.matches("333-444-5555"));
        assert!(!p.matches("3334445555"));
        assert!(!p.matches("333.444.5555"));
    }

    #[test]
    fn mixed_formats_fail_inference() {
        assert!(infer_pattern(&["2017-01-01", "Jan 01, 2017"]).is_none());
        assert!(infer_pattern(&["206-555-0123", "(206) 555-0123"]).is_none());
    }

    #[test]
    fn undashed_isbn_pattern_rejects_dashed_isbn() {
        // The paper's §9.2 example: trained on plain digits, real data has
        // dashes.
        let p = infer_pattern(&["9784063641561", "9780306406157"]).unwrap();
        assert!(p.matches("9791234567896"));
        assert!(!p.matches("978-4-06-364156-1"));
    }

    #[test]
    fn digit_run_lengths_generalize_within_bounds() {
        let p = infer_pattern(&["1.2.3.4", "192.168.10.250"]).unwrap();
        assert!(p.matches("10.0.0.1"));
        // But a regex knows nothing about the 0-255 range: an out-of-range
        // octet within the observed run lengths still matches.
        assert!(p.matches("999.99.9.99"));
        assert!(!p.matches("1.2.3"));
    }

    #[test]
    fn letter_runs_match_by_length() {
        let p = infer_pattern(&["AAPL", "GE"]).unwrap();
        assert!(p.matches("MSFT"));
        assert!(!p.matches("TOOLONGG"));
        assert!(!p.matches("123"));
    }

    #[test]
    fn non_ascii_digit_runs_bound_by_char_count() {
        // Arabic-Indic digits are two bytes each in UTF-8; run-length
        // bounds must count characters, not bytes, or the mixed-script
        // pattern would accept 8-digit ASCII strings.
        let p = infer_pattern(&["٠١٢٣", "4567"]).unwrap();
        assert!(p.matches("8901"));
        assert!(p.matches("٤٥٦٧"));
        assert!(!p.matches("12345678"));
        assert!(!p.matches("123"));
    }

    #[test]
    fn empty_examples_fail() {
        assert!(infer_pattern(&[""]).is_none());
        let empty: [&str; 0] = [];
        assert!(infer_pattern(&empty).is_none());
    }
}

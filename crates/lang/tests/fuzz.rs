//! Robustness fuzzing for the PyLite front end and interpreter: arbitrary
//! input must never panic — it either parses or reports a structured error,
//! and execution always terminates under fuel (the mined-code harness runs
//! untrusted snippets, so this is a safety property of the whole system).

use autotype_lang::{parse_source, Interp, Program, Value};
use proptest::prelude::*;

proptest! {
    /// The lexer+parser never panic on arbitrary text.
    #[test]
    fn parser_never_panics(source in "\\PC{0,200}") {
        let _ = parse_source(&source);
    }

    /// Arbitrary *indentation-shaped* text never panics either.
    #[test]
    fn parser_never_panics_on_indented_soup(
        lines in proptest::collection::vec("( {0,8})(def |if |return |x = )?[a-z0-9 +\\-*/=():\\[\\]{}'\",.]{0,30}", 0..12)
    ) {
        let source = lines.join("\n");
        let _ = parse_source(&source);
    }

    /// Any program that parses either runs to completion or reports a
    /// structured error within the fuel budget — never a panic, never a
    /// hang.
    #[test]
    fn execution_terminates_under_fuel(
        body in "[a-z0-9 +\\-*/%=<>()\\[\\]'\".]{0,60}",
        input in "\\PC{0,30}",
    ) {
        let source = format!("def f(s):\n    return {body}\n");
        if let Ok(_) = parse_source(&source) {
            let mut program = Program::new();
            if program.add_file("m", &source).is_ok() {
                let mut interp = Interp::with_options(
                    &program,
                    Default::default(),
                    20_000,
                );
                let _ = interp.call_function(0, "f", vec![Value::str(input)]);
            }
        }
    }
}

/// Pathological nesting parses (or errors) without stack overflow.
#[test]
fn deep_nesting_is_bounded() {
    let mut source = String::from("def f(s):\n    return ");
    source.push_str(&"(".repeat(500));
    source.push('1');
    source.push_str(&")".repeat(500));
    source.push('\n');
    let _ = parse_source(&source);
}

/// A snippet that loops forever dies from fuel, not wall-clock.
#[test]
fn runaway_loops_are_killed_deterministically() {
    let mut program = Program::new();
    program
        .add_file(
            "m",
            "def f(s):\n    x = 0\n    while True:\n        x += 1\n    return x\n",
        )
        .unwrap();
    let mut a = Interp::with_options(&program, Default::default(), 50_000);
    let ea = a.call_function(0, "f", vec![Value::str("x")]).unwrap_err();
    let mut b = Interp::with_options(&program, Default::default(), 50_000);
    let eb = b.call_function(0, "f", vec![Value::str("x")]).unwrap_err();
    assert!(ea.is_timeout());
    assert_eq!(
        a.fuel_used(),
        b.fuel_used(),
        "fuel death must be deterministic"
    );
    let _ = eb;
}

//! Built-in functions and primitive-type methods.
//!
//! The builtin surface mirrors the subset of Python 2.7 that type-handling
//! code mined by AutoType actually uses: conversions (`int`, `float`,
//! `str`), string predicates and transforms, list/dict helpers, and the
//! console/file primitives the implicit-parameter invocation variants need
//! (`input`, `open`, `sys.argv` — the latter lives in the interpreter).

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::PyError;
use crate::interp::{dict_key, Interp};
use crate::value::{FileHandle, Value};

/// Resolve a builtin by name (used as the last step of name lookup).
pub fn lookup(name: &str) -> Option<Value> {
    const NAMES: &[&str] = &[
        "len", "int", "str", "float", "bool", "ord", "chr", "abs", "min", "max", "sum", "range",
        "print", "input", "open", "sorted", "reversed",
    ];
    NAMES
        .iter()
        .find(|n| **n == name)
        .map(|n| Value::Builtin(n))
}

/// Dispatch a builtin function call.
pub fn call(
    interp: &mut Interp,
    name: &str,
    args: Vec<Value>,
    line: u32,
) -> Result<Value, PyError> {
    match name {
        "len" => {
            let [v] = expect_args::<1>(name, args, line)?;
            let n = match &v {
                Value::Str(s) => s.chars().count(),
                Value::List(l) => l.borrow().len(),
                Value::Dict(d) => d.borrow().len(),
                other => {
                    return Err(PyError::type_error(
                        format!("object of type '{}' has no len()", other.type_name()),
                        line,
                    ))
                }
            };
            Ok(Value::Int(n as i64))
        }
        "int" => match args.len() {
            1 => parse_int(&args[0], 10, line),
            2 => {
                let base = match &args[1] {
                    Value::Int(b) if (2..=36).contains(b) => *b as u32,
                    _ => return Err(PyError::value_error("int() base must be 2..36", line)),
                };
                parse_int(&args[0], base, line)
            }
            n => Err(PyError::type_error(
                format!("int() takes 1 or 2 arguments ({n} given)"),
                line,
            )),
        },
        "str" => {
            let [v] = expect_args::<1>(name, args, line)?;
            Ok(Value::str(v.display()))
        }
        "float" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::Int(i) => Ok(Value::Float(*i as f64)),
                Value::Float(f) => Ok(Value::Float(*f)),
                Value::Bool(b) => Ok(Value::Float(*b as i64 as f64)),
                Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).map_err(|_| {
                    PyError::value_error(format!("could not convert string to float: {s}"), line)
                }),
                other => Err(PyError::type_error(
                    format!(
                        "float() argument must be a string or number, not '{}'",
                        other.type_name()
                    ),
                    line,
                )),
            }
        }
        "bool" => {
            let [v] = expect_args::<1>(name, args, line)?;
            Ok(Value::Bool(v.truthy()))
        }
        "ord" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::Str(s) if s.chars().count() == 1 => {
                    Ok(Value::Int(s.chars().next().unwrap() as i64))
                }
                _ => Err(PyError::type_error("ord() expected a character", line)),
            }
        }
        "chr" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::Int(i) if (0..=0x10FFFF).contains(i) => match char::from_u32(*i as u32) {
                    Some(c) => Ok(Value::str(c.to_string())),
                    None => Err(PyError::value_error(
                        "chr() arg not a valid codepoint",
                        line,
                    )),
                },
                _ => Err(PyError::type_error("chr() expected an integer", line)),
            }
        }
        "abs" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(PyError::type_error(
                    format!("bad operand type for abs(): '{}'", other.type_name()),
                    line,
                )),
            }
        }
        "min" | "max" => {
            let items: Vec<Value> = if args.len() == 1 {
                match &args[0] {
                    Value::List(l) => l.borrow().clone(),
                    other => {
                        return Err(PyError::type_error(
                            format!("'{}' object is not iterable", other.type_name()),
                            line,
                        ))
                    }
                }
            } else {
                args
            };
            if items.is_empty() {
                return Err(PyError::value_error(
                    format!("{name}() of empty sequence"),
                    line,
                ));
            }
            let mut best = items[0].clone();
            for item in &items[1..] {
                let replace = numeric_lt(item, &best, line)? == (name == "min");
                if replace {
                    best = item.clone();
                }
            }
            Ok(best)
        }
        "sum" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::List(l) => {
                    let mut total_i = 0i64;
                    let mut total_f = 0.0f64;
                    let mut is_float = false;
                    for item in l.borrow().iter() {
                        match item {
                            Value::Int(i) => total_i = total_i.wrapping_add(*i),
                            Value::Float(f) => {
                                is_float = true;
                                total_f += f;
                            }
                            other => {
                                return Err(PyError::type_error(
                                    format!("unsupported operand in sum: '{}'", other.type_name()),
                                    line,
                                ))
                            }
                        }
                    }
                    if is_float {
                        Ok(Value::Float(total_f + total_i as f64))
                    } else {
                        Ok(Value::Int(total_i))
                    }
                }
                other => Err(PyError::type_error(
                    format!("'{}' object is not iterable", other.type_name()),
                    line,
                )),
            }
        }
        "range" => {
            let (start, stop, step) = match args.len() {
                1 => (0, as_int(&args[0], line)?, 1),
                2 => (as_int(&args[0], line)?, as_int(&args[1], line)?, 1),
                3 => (
                    as_int(&args[0], line)?,
                    as_int(&args[1], line)?,
                    as_int(&args[2], line)?,
                ),
                n => {
                    return Err(PyError::type_error(
                        format!("range() takes 1-3 arguments ({n} given)"),
                        line,
                    ))
                }
            };
            if step == 0 {
                return Err(PyError::value_error("range() arg 3 must not be zero", line));
            }
            let mut out = Vec::new();
            let mut i = start;
            while (step > 0 && i < stop) || (step < 0 && i > stop) {
                interp.charge_external(1)?;
                out.push(Value::Int(i));
                i += step;
            }
            Ok(Value::list(out))
        }
        "print" => {
            let rendered: Vec<String> = args.iter().map(|v| v.display()).collect();
            interp.stdout.push_str(&rendered.join(" "));
            interp.stdout.push('\n');
            Ok(Value::None)
        }
        "input" => match interp.io.stdin.clone() {
            Some(s) => Ok(Value::str(s)),
            None => Err(PyError::new("EOFError", "EOF when reading a line", line)),
        },
        "open" => {
            let path = match args.first() {
                Some(Value::Str(s)) => s.to_string(),
                _ => return Err(PyError::type_error("open() expects a file name", line)),
            };
            // Mode argument (args[1]) accepted and ignored; the virtual
            // filesystem is read-only from the snippet's point of view.
            match interp.io.files.get(&path) {
                Some(contents) => Ok(Value::File(Rc::new(RefCell::new(FileHandle {
                    contents: contents.clone(),
                    cursor: 0,
                })))),
                None => Err(PyError::new(
                    "IOError",
                    format!("No such file or directory: '{path}'"),
                    line,
                )),
            }
        }
        "sorted" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::List(l) => {
                    let mut items = l.borrow().clone();
                    sort_values(&mut items, line)?;
                    Ok(Value::list(items))
                }
                Value::Str(s) => {
                    let mut chars: Vec<char> = s.chars().collect();
                    chars.sort_unstable();
                    Ok(Value::list(
                        chars
                            .into_iter()
                            .map(|c| Value::str(c.to_string()))
                            .collect(),
                    ))
                }
                other => Err(PyError::type_error(
                    format!("'{}' object is not iterable", other.type_name()),
                    line,
                )),
            }
        }
        "reversed" => {
            let [v] = expect_args::<1>(name, args, line)?;
            match &v {
                Value::List(l) => {
                    let mut items = l.borrow().clone();
                    items.reverse();
                    Ok(Value::list(items))
                }
                Value::Str(s) => Ok(Value::list(
                    s.chars().rev().map(|c| Value::str(c.to_string())).collect(),
                )),
                other => Err(PyError::type_error(
                    format!("'{}' object is not reversible", other.type_name()),
                    line,
                )),
            }
        }
        other => Err(PyError::name_error(other, line)),
    }
}

/// Dispatch a method call on a primitive receiver (`str`, `list`, `dict`,
/// file handle).
pub fn call_method(
    interp: &mut Interp,
    recv: Value,
    name: &str,
    args: Vec<Value>,
    line: u32,
) -> Result<Value, PyError> {
    match &recv {
        Value::Str(s) => str_method(s, name, &args, line),
        Value::List(l) => {
            let l = l.clone();
            list_method(&l, name, args, line)
        }
        Value::Dict(d) => {
            let d = d.clone();
            dict_method(&d, name, &args, line)
        }
        Value::File(f) => {
            let f = f.clone();
            file_method(&f, name, &args, line)
        }
        other => {
            let _ = interp;
            Err(PyError::attribute_error(other.type_name(), name, line))
        }
    }
}

fn str_method(s: &str, name: &str, args: &[Value], line: u32) -> Result<Value, PyError> {
    let arg_str = |i: usize| -> Result<&str, PyError> {
        match args.get(i) {
            Some(Value::Str(v)) => Ok(v.as_ref()),
            _ => Err(PyError::type_error(
                format!("str.{name}() expects a string argument"),
                line,
            )),
        }
    };
    match name {
        "upper" => Ok(Value::str(s.to_uppercase())),
        "lower" => Ok(Value::str(s.to_lowercase())),
        "strip" => {
            if args.is_empty() {
                Ok(Value::str(s.trim().to_string()))
            } else {
                let chars: Vec<char> = arg_str(0)?.chars().collect();
                Ok(Value::str(
                    s.trim_matches(|c| chars.contains(&c)).to_string(),
                ))
            }
        }
        "lstrip" => Ok(Value::str(s.trim_start().to_string())),
        "rstrip" => Ok(Value::str(s.trim_end().to_string())),
        "split" => {
            let parts: Vec<Value> = if args.is_empty() {
                s.split_whitespace().map(Value::str).collect()
            } else {
                let sep = arg_str(0)?;
                if sep.is_empty() {
                    return Err(PyError::value_error("empty separator", line));
                }
                s.split(sep).map(Value::str).collect()
            };
            Ok(Value::list(parts))
        }
        "replace" => {
            let from = arg_str(0)?;
            let to = arg_str(1)?;
            if from.is_empty() {
                return Ok(Value::str(s.to_string()));
            }
            Ok(Value::str(s.replace(from, to)))
        }
        "startswith" => Ok(Value::Bool(s.starts_with(arg_str(0)?))),
        "endswith" => Ok(Value::Bool(s.ends_with(arg_str(0)?))),
        "isdigit" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()),
        )),
        "isalpha" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_alphabetic()),
        )),
        "isalnum" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_alphanumeric()),
        )),
        "isupper" => Ok(Value::Bool(
            s.chars().any(|c| c.is_uppercase()) && !s.chars().any(|c| c.is_lowercase()),
        )),
        "islower" => Ok(Value::Bool(
            s.chars().any(|c| c.is_lowercase()) && !s.chars().any(|c| c.is_uppercase()),
        )),
        "isspace" => Ok(Value::Bool(
            !s.is_empty() && s.chars().all(|c| c.is_whitespace()),
        )),
        "find" => {
            let needle = arg_str(0)?;
            Ok(Value::Int(match s.find(needle) {
                Some(byte_pos) => s[..byte_pos].chars().count() as i64,
                None => -1,
            }))
        }
        "index" => {
            let needle = arg_str(0)?;
            match s.find(needle) {
                Some(byte_pos) => Ok(Value::Int(s[..byte_pos].chars().count() as i64)),
                None => Err(PyError::value_error("substring not found", line)),
            }
        }
        "count" => {
            let needle = arg_str(0)?;
            if needle.is_empty() {
                return Ok(Value::Int(s.chars().count() as i64 + 1));
            }
            Ok(Value::Int(s.matches(needle).count() as i64))
        }
        "join" => match args.first() {
            Some(Value::List(items)) => {
                let mut parts = Vec::new();
                for item in items.borrow().iter() {
                    match item {
                        Value::Str(p) => parts.push(p.to_string()),
                        other => {
                            return Err(PyError::type_error(
                                format!("join() expects strings, found '{}'", other.type_name()),
                                line,
                            ))
                        }
                    }
                }
                Ok(Value::str(parts.join(s)))
            }
            _ => Err(PyError::type_error("join() expects a list", line)),
        },
        "zfill" => {
            let width = match args.first() {
                Some(Value::Int(w)) => *w.max(&0) as usize,
                _ => return Err(PyError::type_error("zfill() expects an int", line)),
            };
            let len = s.chars().count();
            if len >= width {
                Ok(Value::str(s.to_string()))
            } else {
                let mut out = "0".repeat(width - len);
                out.push_str(s);
                Ok(Value::str(out))
            }
        }
        "title" => {
            let mut out = String::with_capacity(s.len());
            let mut at_word_start = true;
            for c in s.chars() {
                if c.is_alphabetic() {
                    if at_word_start {
                        out.extend(c.to_uppercase());
                    } else {
                        out.extend(c.to_lowercase());
                    }
                    at_word_start = false;
                } else {
                    out.push(c);
                    at_word_start = true;
                }
            }
            Ok(Value::str(out))
        }
        other => Err(PyError::attribute_error("str", other, line)),
    }
}

fn list_method(
    list: &Rc<RefCell<Vec<Value>>>,
    name: &str,
    mut args: Vec<Value>,
    line: u32,
) -> Result<Value, PyError> {
    match name {
        "append" => {
            if args.len() != 1 {
                return Err(PyError::type_error("append() takes one argument", line));
            }
            list.borrow_mut().push(args.pop().unwrap());
            Ok(Value::None)
        }
        "pop" => {
            let mut items = list.borrow_mut();
            match args.first() {
                None => items.pop().ok_or_else(|| PyError::index_error(line)),
                Some(Value::Int(i)) => {
                    let len = items.len() as i64;
                    let idx = if *i < 0 { i + len } else { *i };
                    if idx < 0 || idx >= len {
                        Err(PyError::index_error(line))
                    } else {
                        Ok(items.remove(idx as usize))
                    }
                }
                Some(_) => Err(PyError::type_error("pop() index must be int", line)),
            }
        }
        "insert" => {
            if args.len() != 2 {
                return Err(PyError::type_error("insert() takes two arguments", line));
            }
            let value = args.pop().unwrap();
            let idx = as_int(&args[0], line)?;
            let mut items = list.borrow_mut();
            let len = items.len() as i64;
            let pos = idx.clamp(0, len) as usize;
            items.insert(pos, value);
            Ok(Value::None)
        }
        "extend" => match args.first() {
            Some(Value::List(other)) => {
                let extra = other.borrow().clone();
                list.borrow_mut().extend(extra);
                Ok(Value::None)
            }
            _ => Err(PyError::type_error("extend() expects a list", line)),
        },
        "reverse" => {
            list.borrow_mut().reverse();
            Ok(Value::None)
        }
        "sort" => {
            let mut items = list.borrow_mut();
            sort_values(&mut items, line)?;
            Ok(Value::None)
        }
        "count" => {
            let needle = args
                .first()
                .ok_or_else(|| PyError::type_error("count() takes one argument", line))?;
            let n = list.borrow().iter().filter(|v| v.py_eq(needle)).count();
            Ok(Value::Int(n as i64))
        }
        "index" => {
            let needle = args
                .first()
                .ok_or_else(|| PyError::type_error("index() takes one argument", line))?;
            match list.borrow().iter().position(|v| v.py_eq(needle)) {
                Some(i) => Ok(Value::Int(i as i64)),
                None => Err(PyError::value_error("value not in list", line)),
            }
        }
        other => Err(PyError::attribute_error("list", other, line)),
    }
}

fn dict_method(
    dict: &Rc<RefCell<std::collections::BTreeMap<String, Value>>>,
    name: &str,
    args: &[Value],
    line: u32,
) -> Result<Value, PyError> {
    match name {
        "get" => {
            let key = dict_key(
                args.first()
                    .ok_or_else(|| PyError::type_error("get() takes 1-2 arguments", line))?,
                line,
            )?;
            let default = args.get(1).cloned().unwrap_or(Value::None);
            Ok(dict.borrow().get(&key).cloned().unwrap_or(default))
        }
        "keys" => Ok(Value::list(
            dict.borrow()
                .keys()
                .map(|k| Value::str(k.clone()))
                .collect(),
        )),
        "values" => Ok(Value::list(dict.borrow().values().cloned().collect())),
        "items" => Ok(Value::list(
            dict.borrow()
                .iter()
                .map(|(k, v)| Value::list(vec![Value::str(k.clone()), v.clone()]))
                .collect(),
        )),
        other => Err(PyError::attribute_error("dict", other, line)),
    }
}

fn file_method(
    file: &Rc<RefCell<FileHandle>>,
    name: &str,
    _args: &[Value],
    line: u32,
) -> Result<Value, PyError> {
    match name {
        "read" => {
            let mut f = file.borrow_mut();
            let out = f.contents[f.cursor.min(f.contents.len())..].to_string();
            f.cursor = f.contents.len();
            Ok(Value::str(out))
        }
        "readline" => {
            let mut f = file.borrow_mut();
            let rest = &f.contents[f.cursor.min(f.contents.len())..];
            match rest.find('\n') {
                Some(pos) => {
                    let out = rest[..=pos].to_string();
                    f.cursor += pos + 1;
                    Ok(Value::str(out))
                }
                None => {
                    let out = rest.to_string();
                    f.cursor = f.contents.len();
                    Ok(Value::str(out))
                }
            }
        }
        "close" => Ok(Value::None),
        other => Err(PyError::attribute_error("file", other, line)),
    }
}

fn expect_args<const N: usize>(
    name: &str,
    args: Vec<Value>,
    line: u32,
) -> Result<[Value; N], PyError> {
    let count = args.len();
    args.try_into().map_err(|_| {
        PyError::type_error(
            format!("{name}() takes {N} arguments ({count} given)"),
            line,
        )
    })
}

fn as_int(v: &Value, line: u32) -> Result<i64, PyError> {
    match v {
        Value::Int(i) => Ok(*i),
        Value::Bool(b) => Ok(*b as i64),
        other => Err(PyError::type_error(
            format!("an integer is required, got '{}'", other.type_name()),
            line,
        )),
    }
}

fn numeric_lt(a: &Value, b: &Value, line: u32) -> Result<bool, PyError> {
    let to_f = |v: &Value| -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    };
    match (to_f(a), to_f(b)) {
        (Some(x), Some(y)) => Ok(x < y),
        _ => match (a, b) {
            (Value::Str(x), Value::Str(y)) => Ok(x < y),
            _ => Err(PyError::type_error("unorderable types in min/max", line)),
        },
    }
}

fn sort_values(items: &mut [Value], line: u32) -> Result<(), PyError> {
    let mut error = None;
    items.sort_by(|a, b| {
        if error.is_some() {
            return std::cmp::Ordering::Equal;
        }
        match numeric_lt(a, b, line) {
            Ok(true) => std::cmp::Ordering::Less,
            Ok(false) => match numeric_lt(b, a, line) {
                Ok(true) => std::cmp::Ordering::Greater,
                Ok(false) => std::cmp::Ordering::Equal,
                Err(e) => {
                    error = Some(e);
                    std::cmp::Ordering::Equal
                }
            },
            Err(e) => {
                error = Some(e);
                std::cmp::Ordering::Equal
            }
        }
    });
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Parse a string (or coerce a number) to an integer the way Python 2 does:
/// whitespace is stripped, an optional sign allowed, then digits in `base`.
fn parse_int(v: &Value, base: u32, line: u32) -> Result<Value, PyError> {
    match v {
        Value::Int(i) => Ok(Value::Int(*i)),
        Value::Float(f) => Ok(Value::Int(*f as i64)),
        Value::Bool(b) => Ok(Value::Int(*b as i64)),
        Value::Str(s) => {
            let t = s.trim();
            let invalid = || {
                PyError::value_error(
                    format!("invalid literal for int() with base {base}: '{s}'"),
                    line,
                )
            };
            if t.is_empty() {
                return Err(invalid());
            }
            let (sign, digits) = match t.strip_prefix('-') {
                Some(rest) => (-1i64, rest),
                None => (1i64, t.strip_prefix('+').unwrap_or(t)),
            };
            if digits.is_empty() {
                return Err(invalid());
            }
            // Accept an 0x/0o/0b prefix matching the base, like Python.
            let digits = match base {
                16 => digits
                    .strip_prefix("0x")
                    .or_else(|| digits.strip_prefix("0X"))
                    .unwrap_or(digits),
                8 => digits
                    .strip_prefix("0o")
                    .or_else(|| digits.strip_prefix("0O"))
                    .unwrap_or(digits),
                2 => digits
                    .strip_prefix("0b")
                    .or_else(|| digits.strip_prefix("0B"))
                    .unwrap_or(digits),
                _ => digits,
            };
            match i64::from_str_radix(digits, base) {
                Ok(n) => Ok(Value::Int(sign * n)),
                Err(_) => Err(invalid()),
            }
        }
        other => Err(PyError::type_error(
            format!(
                "int() argument must be a string or a number, not '{}'",
                other.type_name()
            ),
            line,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interp, Program};

    fn eval(expr: &str) -> Value {
        let mut program = Program::new();
        let src = format!("def f(s):\n    return {expr}\n");
        program.add_file("m", &src).unwrap();
        let mut interp = Interp::new(&program);
        interp
            .call_function(0, "f", vec![Value::str("input")])
            .unwrap()
    }

    fn eval_err(expr: &str) -> PyError {
        let mut program = Program::new();
        let src = format!("def f(s):\n    return {expr}\n");
        program.add_file("m", &src).unwrap();
        let mut interp = Interp::new(&program);
        interp
            .call_function(0, "f", vec![Value::str("input")])
            .unwrap_err()
    }

    #[test]
    fn int_parses_with_sign_and_whitespace() {
        assert!(eval("int(' 42 ')").py_eq(&Value::Int(42)));
        assert!(eval("int('-7')").py_eq(&Value::Int(-7)));
        assert!(eval("int('+7')").py_eq(&Value::Int(7)));
    }

    #[test]
    fn int_rejects_garbage() {
        assert_eq!(eval_err("int('12a')").kind, "ValueError");
        assert_eq!(eval_err("int('')").kind, "ValueError");
        assert_eq!(eval_err("int('1.5')").kind, "ValueError");
    }

    #[test]
    fn int_with_base() {
        assert!(eval("int('ff', 16)").py_eq(&Value::Int(255)));
        assert!(eval("int('0xff', 16)").py_eq(&Value::Int(255)));
        assert!(eval("int('1010', 2)").py_eq(&Value::Int(10)));
        assert_eq!(eval_err("int('g', 16)").kind, "ValueError");
    }

    #[test]
    fn string_predicates() {
        assert!(eval("'123'.isdigit()").py_eq(&Value::Bool(true)));
        assert!(eval("'12a'.isdigit()").py_eq(&Value::Bool(false)));
        assert!(eval("''.isdigit()").py_eq(&Value::Bool(false)));
        assert!(eval("'abc'.isalpha()").py_eq(&Value::Bool(true)));
        assert!(eval("'a1'.isalnum()").py_eq(&Value::Bool(true)));
        assert!(eval("'AB'.isupper()").py_eq(&Value::Bool(true)));
    }

    #[test]
    fn string_transforms() {
        assert!(eval("'a-b-c'.split('-')").py_eq(&Value::list(vec![
            Value::str("a"),
            Value::str("b"),
            Value::str("c")
        ])));
        assert!(eval("'a b  c'.split()").py_eq(&Value::list(vec![
            Value::str("a"),
            Value::str("b"),
            Value::str("c")
        ])));
        assert!(eval("'978-4-06'.replace('-', '')").py_eq(&Value::str("978406")));
        assert!(eval("'ab'.upper()").py_eq(&Value::str("AB")));
        assert!(eval("'  x '.strip()").py_eq(&Value::str("x")));
        assert!(eval("'7'.zfill(3)").py_eq(&Value::str("007")));
        assert!(eval("'-'.join(['a', 'b'])").py_eq(&Value::str("a-b")));
    }

    #[test]
    fn find_and_count() {
        assert!(eval("'hello'.find('ll')").py_eq(&Value::Int(2)));
        assert!(eval("'hello'.find('zz')").py_eq(&Value::Int(-1)));
        assert!(eval("'1.2.3.4'.count('.')").py_eq(&Value::Int(3)));
    }

    #[test]
    fn list_methods() {
        assert!(eval("[3, 1, 2].count(1)").py_eq(&Value::Int(1)));
        let mut program = Program::new();
        program
            .add_file(
                "m",
                "def f(s):\n    l = []\n    l.append(1)\n    l.append(2)\n    return l.pop()\n",
            )
            .unwrap();
        let mut interp = Interp::new(&program);
        let v = interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        assert!(v.py_eq(&Value::Int(2)));
    }

    #[test]
    fn dict_get_with_default() {
        assert!(eval("{'a': 1}.get('a')").py_eq(&Value::Int(1)));
        assert!(eval("{'a': 1}.get('b')").py_eq(&Value::None));
        assert!(eval("{'a': 1}.get('b', 9)").py_eq(&Value::Int(9)));
    }

    #[test]
    fn range_variants() {
        assert!(eval("range(3)").py_eq(&Value::list(vec![
            Value::Int(0),
            Value::Int(1),
            Value::Int(2)
        ])));
        assert!(eval("range(1, 3)").py_eq(&Value::list(vec![Value::Int(1), Value::Int(2)])));
        assert!(eval("range(3, 0, -1)").py_eq(&Value::list(vec![
            Value::Int(3),
            Value::Int(2),
            Value::Int(1)
        ])));
    }

    #[test]
    fn sorted_and_reversed() {
        assert!(eval("sorted([3, 1, 2])").py_eq(&Value::list(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3)
        ])));
        assert!(eval("reversed([1, 2])").py_eq(&Value::list(vec![Value::Int(2), Value::Int(1)])));
    }

    #[test]
    fn ord_and_chr_roundtrip() {
        assert!(eval("ord('A')").py_eq(&Value::Int(65)));
        assert!(eval("chr(65)").py_eq(&Value::str("A")));
    }

    #[test]
    fn input_reads_harness_stdin() {
        let mut program = Program::new();
        program
            .add_file("m", "def f(s):\n    return input()\n")
            .unwrap();
        let io = crate::interp::Io {
            stdin: Some("fed-value".to_string()),
            ..Default::default()
        };
        let mut interp = Interp::with_options(&program, io, crate::interp::DEFAULT_FUEL);
        let v = interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        assert!(v.py_eq(&Value::str("fed-value")));
    }

    #[test]
    fn open_reads_virtual_file() {
        let mut program = Program::new();
        program
            .add_file(
                "m",
                "def f(s):\n    fp = open('f.txt')\n    return fp.read()\n",
            )
            .unwrap();
        let mut io = crate::interp::Io::default();
        io.files.insert("f.txt".to_string(), "contents".to_string());
        let mut interp = Interp::with_options(&program, io, crate::interp::DEFAULT_FUEL);
        let v = interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        assert!(v.py_eq(&Value::str("contents")));
        assert_eq!(eval_err("open('missing.txt')").kind, "IOError");
    }

    #[test]
    fn print_captures_stdout() {
        let mut program = Program::new();
        program
            .add_file("m", "def f(s):\n    print('hello', 42)\n    return None\n")
            .unwrap();
        let mut interp = Interp::new(&program);
        interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        assert_eq!(interp.stdout(), "hello 42\n");
    }
}

//! Token definitions for the PyLite lexer.

use std::fmt;

/// A lexical token kind produced by [`crate::lexer::lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),

    // Keywords.
    Def,
    Class,
    If,
    Elif,
    Else,
    While,
    For,
    In,
    Return,
    Raise,
    Try,
    Except,
    As,
    Pass,
    Break,
    Continue,
    Import,
    And,
    Or,
    Not,
    True,
    False,
    None,

    // Operators and punctuation.
    Plus,
    Minus,
    Star,
    StarStar,
    Slash,
    SlashSlash,
    Percent,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashSlashEq,
    PercentEq,
    EqEq,
    NotEq,
    Lt,
    Gt,
    LtEq,
    GtEq,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Dot,

    // Layout.
    Newline,
    Indent,
    Dedent,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Newline => write!(f, "<newline>"),
            Tok::Indent => write!(f, "<indent>"),
            Tok::Dedent => write!(f, "<dedent>"),
            Tok::Eof => write!(f, "<eof>"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token paired with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn new(tok: Tok, line: u32) -> Self {
        Token { tok, line }
    }
}

/// Look up the keyword for an identifier, if it is one.
pub fn keyword(ident: &str) -> Option<Tok> {
    Some(match ident {
        "def" => Tok::Def,
        "class" => Tok::Class,
        "if" => Tok::If,
        "elif" => Tok::Elif,
        "else" => Tok::Else,
        "while" => Tok::While,
        "for" => Tok::For,
        "in" => Tok::In,
        "return" => Tok::Return,
        "raise" => Tok::Raise,
        "try" => Tok::Try,
        "except" => Tok::Except,
        "as" => Tok::As,
        "pass" => Tok::Pass,
        "break" => Tok::Break,
        "continue" => Tok::Continue,
        "import" => Tok::Import,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "True" => Tok::True,
        "False" => Tok::False,
        "None" => Tok::None,
        _ => return None,
    })
}

//! Abstract syntax tree for PyLite.
//!
//! Every branch-bearing and return-bearing node carries the 1-based source
//! line so the interpreter can attribute trace events to a stable
//! `(file, line)` site, mirroring AutoType's bytecode instrumentation which
//! dumps "the filename and line number of the corresponding branch/return"
//! (paper, Appendix D.2).

/// A parsed source file: a sequence of top-level statements.
///
/// Top-level `def`/`class` statements define module globals; other
/// statements form the module's script body (AutoType also executes code
/// snippets living outside functions, Appendix D.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub body: Vec<Stmt>,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    FloorDiv,
    Mod,
    Pow,
}

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    In,
    NotIn,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Name(String),
    List(Vec<Expr>),
    Dict(Vec<(Expr, Expr)>),
    Bin {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
        line: u32,
    },
    Cmp {
        op: CmpOp,
        left: Box<Expr>,
        right: Box<Expr>,
        line: u32,
    },
    /// Short-circuiting `and` / `or`.
    BoolOp {
        is_and: bool,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Neg(Box<Expr>, u32),
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
        line: u32,
    },
    Attr {
        object: Box<Expr>,
        name: String,
        line: u32,
    },
    Index {
        object: Box<Expr>,
        index: Box<Expr>,
        line: u32,
    },
    Slice {
        object: Box<Expr>,
        low: Option<Box<Expr>>,
        high: Option<Box<Expr>>,
        line: u32,
    },
}

/// Assignment target forms.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    Name(String),
    Attr { object: Expr, name: String },
    Index { object: Expr, index: Expr },
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Expr(Expr),
    Assign {
        target: Target,
        value: Expr,
        line: u32,
    },
    AugAssign {
        target: Target,
        op: BinOp,
        value: Expr,
        line: u32,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        /// The line of the `if`/`elif` keyword — the branch site.
        line: u32,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    For {
        var: String,
        iter: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    Return {
        value: Option<Expr>,
        line: u32,
    },
    Raise {
        /// Exception kind name, e.g. `ValueError`.
        kind: String,
        message: Option<Expr>,
        line: u32,
    },
    Try {
        body: Vec<Stmt>,
        handlers: Vec<ExceptHandler>,
        line: u32,
    },
    FuncDef(FuncDef),
    ClassDef(ClassDef),
    Import {
        module: String,
        line: u32,
    },
    Pass,
    Break(u32),
    Continue(u32),
}

/// One `except` clause of a `try` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptHandler {
    /// Exception kind to catch; `None` is a bare `except:` catching all.
    pub kind: Option<String>,
    /// Optional `as name` binding (bound to the exception message string).
    pub bind: Option<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// A class definition: only methods are supported (no class-level fields).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    pub name: String,
    pub methods: Vec<FuncDef>,
    pub line: u32,
}

impl Module {
    /// All top-level function definitions in the module.
    pub fn functions(&self) -> impl Iterator<Item = &FuncDef> {
        self.body.iter().filter_map(|s| match s {
            Stmt::FuncDef(f) => Some(f),
            _ => None,
        })
    }

    /// All top-level class definitions in the module.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.body.iter().filter_map(|s| match s {
            Stmt::ClassDef(c) => Some(c),
            _ => None,
        })
    }

    /// Modules imported anywhere at the top level.
    pub fn imports(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|s| match s {
                Stmt::Import { module, .. } => Some(module.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Modules imported *anywhere* in the module, including inside function
    /// bodies, class methods, and nested control flow. Used to decide
    /// whether executing the module could ever trigger a dynamic package
    /// install (the execute-parse-install-rerun loop of §4.2).
    pub fn all_imports(&self) -> Vec<&str> {
        fn walk<'a>(body: &'a [Stmt], out: &mut Vec<&'a str>) {
            for s in body {
                match s {
                    Stmt::Import { module, .. } => out.push(module.as_str()),
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                    Stmt::While { body, .. } | Stmt::For { body, .. } => walk(body, out),
                    Stmt::Try { body, handlers, .. } => {
                        walk(body, out);
                        for h in handlers {
                            walk(&h.body, out);
                        }
                    }
                    Stmt::FuncDef(f) => walk(&f.body, out),
                    Stmt::ClassDef(c) => {
                        for m in &c.methods {
                            walk(&m.body, out);
                        }
                    }
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// True if the module has executable statements outside `def`/`class`
    /// (a "script" in AutoType's terminology, runnable standalone).
    pub fn has_script_body(&self) -> bool {
        self.body.iter().any(|s| {
            !matches!(
                s,
                Stmt::FuncDef(_) | Stmt::ClassDef(_) | Stmt::Import { .. } | Stmt::Pass
            )
        })
    }
}

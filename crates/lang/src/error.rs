//! Runtime errors (PyLite exceptions).

use std::fmt;

/// A runtime exception. `kind` is the Python-style exception class name
/// (`ValueError`, `TypeError`, ... or any user-raised name); special internal
/// kinds that are *not catchable* by `except` are [`PyError::FUEL`] (the
/// deterministic stand-in for AutoType's 30-second execution timeout) and
/// [`PyError::RECURSION`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyError {
    pub kind: String,
    pub message: String,
    /// Best-effort source line where the error was raised.
    pub line: u32,
}

impl PyError {
    /// Internal kind for fuel exhaustion (the simulated execution timeout).
    pub const FUEL: &'static str = "__FuelExhausted__";
    /// Internal kind for call-stack overflow.
    pub const RECURSION: &'static str = "__RecursionLimit__";

    pub fn new(kind: impl Into<String>, message: impl Into<String>, line: u32) -> Self {
        PyError {
            kind: kind.into(),
            message: message.into(),
            line,
        }
    }

    pub fn value_error(message: impl Into<String>, line: u32) -> Self {
        Self::new("ValueError", message, line)
    }

    pub fn type_error(message: impl Into<String>, line: u32) -> Self {
        Self::new("TypeError", message, line)
    }

    pub fn name_error(name: &str, line: u32) -> Self {
        Self::new("NameError", format!("name '{name}' is not defined"), line)
    }

    pub fn attribute_error(type_name: &str, attr: &str, line: u32) -> Self {
        Self::new(
            "AttributeError",
            format!("'{type_name}' object has no attribute '{attr}'"),
            line,
        )
    }

    pub fn index_error(line: u32) -> Self {
        Self::new("IndexError", "index out of range", line)
    }

    pub fn key_error(key: &str, line: u32) -> Self {
        Self::new("KeyError", key, line)
    }

    pub fn import_error(module: &str, line: u32) -> Self {
        Self::new("ImportError", format!("No module named {module}"), line)
    }

    pub fn fuel_exhausted() -> Self {
        Self::new(Self::FUEL, "execution budget exhausted (timeout)", 0)
    }

    pub fn recursion() -> Self {
        Self::new(Self::RECURSION, "maximum recursion depth exceeded", 0)
    }

    /// Whether an `except` clause can catch this error. The fuel timeout and
    /// recursion overflow abort execution unconditionally, exactly as
    /// AutoType's watchdog thread kills over-long runs (Appendix D.3).
    pub fn catchable(&self) -> bool {
        self.kind != Self::FUEL && self.kind != Self::RECURSION
    }

    /// True when this error models the execution timeout.
    pub fn is_timeout(&self) -> bool {
        self.kind == Self::FUEL
    }
}

impl fmt::Display for PyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} (line {})", self.kind, self.message, self.line)
    }
}

impl std::error::Error for PyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuel_and_recursion_are_uncatchable() {
        assert!(!PyError::fuel_exhausted().catchable());
        assert!(!PyError::recursion().catchable());
        assert!(PyError::value_error("x", 1).catchable());
        assert!(PyError::new("MyCustomError", "boom", 3).catchable());
    }

    #[test]
    fn display_includes_kind_and_line() {
        let e = PyError::value_error("bad literal", 12);
        let s = e.to_string();
        assert!(s.contains("ValueError"));
        assert!(s.contains("12"));
    }
}

//! Execution-trace model.
//!
//! AutoType instruments compiled byte-code to dump every branch comparison
//! and return value, keyed by `(filename, line)` (Appendix D.2). The
//! interpreter emits the same event stream here. The downstream featurizer
//! (in `autotype-exec`) turns events into binary literals per §5.2 of the
//! paper.

use crate::value::Value;

/// Identifies an instrumentation site: the file id within a program plus the
/// 1-based source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId {
    pub file: u32,
    pub line: u32,
}

impl SiteId {
    pub fn new(file: u32, line: u32) -> Self {
        SiteId { file, line }
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}:{}", self.file, self.line)
    }
}

/// A featurizable summary of a return value, following §5.2:
/// booleans keep their value; numbers and collection lengths are reduced to
/// zero / non-zero; composite objects are reduced to None / not-None.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueSummary {
    Bool(bool),
    /// Numeric return: is it exactly zero?
    NumZero(bool),
    /// Collection (or string) return: is its length zero?
    LenZero(bool),
    /// Composite return: is it None? (`IsNone(true)` also covers a literal
    /// `return None`.)
    IsNone(bool),
}

impl ValueSummary {
    /// Summarize a runtime value per the paper's featurization rules.
    pub fn of(value: &Value) -> ValueSummary {
        match value {
            Value::Bool(b) => ValueSummary::Bool(*b),
            Value::Int(i) => ValueSummary::NumZero(*i == 0),
            Value::Float(f) => ValueSummary::NumZero(*f == 0.0),
            Value::Str(s) => ValueSummary::LenZero(s.is_empty()),
            Value::List(l) => ValueSummary::LenZero(l.borrow().is_empty()),
            Value::Dict(d) => ValueSummary::LenZero(d.borrow().is_empty()),
            Value::None => ValueSummary::IsNone(true),
            _ => ValueSummary::IsNone(false),
        }
    }
}

/// One instrumentation event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceEvent {
    /// A branch condition evaluated at `site` to `taken`.
    Branch { site: SiteId, taken: bool },
    /// A `return` executed at `site` with the summarized value.
    Return { site: SiteId, value: ValueSummary },
    /// An exception of `kind` propagated out of the top-level invocation.
    Exception { kind: String },
}

/// Collects trace events during one execution. The interpreter holds a
/// mutable reference; a fresh tracer is used per (function, example) run.
#[derive(Debug, Default)]
pub struct Tracer {
    pub events: Vec<TraceEvent>,
    /// When false, no events are recorded (used when executing synthesized
    /// validators in "production" without profiling overhead is not needed —
    /// AutoType always traces, but tests exercise both modes).
    pub enabled: bool,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A tracer that drops all events.
    pub fn disabled() -> Self {
        Tracer {
            events: Vec::new(),
            enabled: false,
        }
    }

    pub fn branch(&mut self, site: SiteId, taken: bool) {
        if self.enabled {
            self.events.push(TraceEvent::Branch { site, taken });
        }
    }

    pub fn ret(&mut self, site: SiteId, value: &Value) {
        if self.enabled {
            self.events.push(TraceEvent::Return {
                site,
                value: ValueSummary::of(value),
            });
        }
    }

    pub fn exception(&mut self, kind: &str) {
        if self.enabled {
            self.events.push(TraceEvent::Exception { kind: kind.to_string() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_follow_the_paper() {
        assert_eq!(
            ValueSummary::of(&Value::Bool(true)),
            ValueSummary::Bool(true)
        );
        assert_eq!(ValueSummary::of(&Value::Int(0)), ValueSummary::NumZero(true));
        assert_eq!(
            ValueSummary::of(&Value::Int(7)),
            ValueSummary::NumZero(false)
        );
        assert_eq!(
            ValueSummary::of(&Value::str("")),
            ValueSummary::LenZero(true)
        );
        assert_eq!(
            ValueSummary::of(&Value::list(vec![Value::Int(1)])),
            ValueSummary::LenZero(false)
        );
        assert_eq!(ValueSummary::of(&Value::None), ValueSummary::IsNone(true));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.branch(SiteId::new(0, 1), true);
        t.ret(SiteId::new(0, 2), &Value::Int(1));
        t.exception("ValueError");
        assert!(t.events.is_empty());
    }

    #[test]
    fn events_are_ordered() {
        let mut t = Tracer::new();
        t.branch(SiteId::new(0, 6), true);
        t.ret(SiteId::new(0, 20), &Value::None);
        assert_eq!(t.events.len(), 2);
        assert!(matches!(t.events[0], TraceEvent::Branch { .. }));
    }
}

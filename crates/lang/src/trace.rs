//! Execution-trace model.
//!
//! AutoType instruments compiled byte-code to dump every branch comparison
//! and return value, keyed by `(filename, line)` (Appendix D.2). The
//! interpreter emits the same event stream here. The downstream featurizer
//! (in `autotype-exec`) turns events into binary literals per §5.2 of the
//! paper.
//!
//! Exception kinds are interned ([`ExcId`]) so every [`TraceEvent`] is
//! `Copy` — the hot candidate × example loop pushes events without touching
//! the allocator. Ids are resolved back to kind names through the
//! [`ExcTable`] carried by the owning [`Trace`].

use crate::value::Value;

/// Identifies an instrumentation site: the file id within a program plus the
/// 1-based source line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId {
    pub file: u32,
    pub line: u32,
}

impl SiteId {
    pub fn new(file: u32, line: u32) -> Self {
        SiteId { file, line }
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}:{}", self.file, self.line)
    }
}

/// An interned exception-kind symbol, valid only together with the
/// [`ExcTable`] it was interned into (one per [`Trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExcId(u32);

/// Kinds preseeded into every table: interning one of these never allocates
/// and always yields the same id. Covers every kind the interpreter or the
/// corpus raises; user-defined kinds fall through to the dynamic tail.
const WELL_KNOWN: &[&str] = &[
    "ValueError",
    "TypeError",
    "ImportError",
    "KeyError",
    "IndexError",
    "AttributeError",
    "NameError",
    "ZeroDivisionError",
    "IOError",
    "EOFError",
    "OverflowError",
    "RuntimeError",
    "Exception",
    crate::error::PyError::FUEL,
    crate::error::PyError::RECURSION,
];

/// Bidirectional kind ↔ id table. Ids `0..WELL_KNOWN.len()` are static;
/// user-raised kinds are appended in first-seen order, which is
/// deterministic because events within one run are recorded serially.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExcTable {
    extra: Vec<String>,
}

impl ExcTable {
    pub fn intern(&mut self, kind: &str) -> ExcId {
        if let Some(i) = WELL_KNOWN.iter().position(|k| *k == kind) {
            return ExcId(i as u32);
        }
        let base = WELL_KNOWN.len();
        if let Some(i) = self.extra.iter().position(|k| k == kind) {
            return ExcId((base + i) as u32);
        }
        self.extra.push(kind.to_string());
        ExcId((base + self.extra.len() - 1) as u32)
    }

    pub fn name(&self, id: ExcId) -> &str {
        let i = id.0 as usize;
        match WELL_KNOWN.get(i) {
            Some(k) => k,
            None => &self.extra[i - WELL_KNOWN.len()],
        }
    }
}

/// A featurizable summary of a return value, following §5.2:
/// booleans keep their value; numbers and collection lengths are reduced to
/// zero / non-zero; composite objects are reduced to None / not-None.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueSummary {
    Bool(bool),
    /// Numeric return: is it exactly zero?
    NumZero(bool),
    /// Collection (or string) return: is its length zero?
    LenZero(bool),
    /// Composite return: is it None? (`IsNone(true)` also covers a literal
    /// `return None`.)
    IsNone(bool),
}

impl ValueSummary {
    /// Summarize a runtime value per the paper's featurization rules.
    pub fn of(value: &Value) -> ValueSummary {
        match value {
            Value::Bool(b) => ValueSummary::Bool(*b),
            Value::Int(i) => ValueSummary::NumZero(*i == 0),
            Value::Float(f) => ValueSummary::NumZero(*f == 0.0),
            Value::Str(s) => ValueSummary::LenZero(s.is_empty()),
            Value::List(l) => ValueSummary::LenZero(l.borrow().is_empty()),
            Value::Dict(d) => ValueSummary::LenZero(d.borrow().is_empty()),
            Value::None => ValueSummary::IsNone(true),
            _ => ValueSummary::IsNone(false),
        }
    }
}

/// One instrumentation event. `Copy`, so recording an event in the hot loop
/// is a plain memcpy into the event vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TraceEvent {
    /// A branch condition evaluated at `site` to `taken`.
    Branch { site: SiteId, taken: bool },
    /// A `return` executed at `site` with the summarized value.
    Return { site: SiteId, value: ValueSummary },
    /// An exception of the interned `kind` propagated out of the top-level
    /// invocation.
    Exception { kind: ExcId },
}

/// The completed event stream of one run, plus the table that resolves its
/// interned exception kinds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    pub events: Vec<TraceEvent>,
    pub exc: ExcTable,
}

impl Trace {
    /// Whether an exception of the named kind was recorded.
    pub fn has_exception(&self, kind: &str) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, TraceEvent::Exception { kind: id } if self.exc.name(*id) == kind))
    }
}

/// Collects trace events during one execution. The interpreter holds a
/// mutable reference; a fresh tracer is used per (function, example) run.
#[derive(Debug, Default)]
pub struct Tracer {
    pub trace: Trace,
    /// When false, no events are recorded (used when executing synthesized
    /// validators in "production" without profiling overhead is not needed —
    /// AutoType always traces, but tests exercise both modes).
    pub enabled: bool,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            trace: Trace::default(),
            enabled: true,
        }
    }

    /// A tracer that drops all events.
    pub fn disabled() -> Self {
        Tracer {
            trace: Trace::default(),
            enabled: false,
        }
    }

    /// Finish tracing, yielding the recorded events and their kind table.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    pub fn branch(&mut self, site: SiteId, taken: bool) {
        if self.enabled {
            self.trace.events.push(TraceEvent::Branch { site, taken });
        }
    }

    pub fn ret(&mut self, site: SiteId, value: &Value) {
        if self.enabled {
            self.trace.events.push(TraceEvent::Return {
                site,
                value: ValueSummary::of(value),
            });
        }
    }

    pub fn exception(&mut self, kind: &str) {
        if self.enabled {
            let kind = self.trace.exc.intern(kind);
            self.trace.events.push(TraceEvent::Exception { kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_follow_the_paper() {
        assert_eq!(
            ValueSummary::of(&Value::Bool(true)),
            ValueSummary::Bool(true)
        );
        assert_eq!(
            ValueSummary::of(&Value::Int(0)),
            ValueSummary::NumZero(true)
        );
        assert_eq!(
            ValueSummary::of(&Value::Int(7)),
            ValueSummary::NumZero(false)
        );
        assert_eq!(
            ValueSummary::of(&Value::str("")),
            ValueSummary::LenZero(true)
        );
        assert_eq!(
            ValueSummary::of(&Value::list(vec![Value::Int(1)])),
            ValueSummary::LenZero(false)
        );
        assert_eq!(ValueSummary::of(&Value::None), ValueSummary::IsNone(true));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.branch(SiteId::new(0, 1), true);
        t.ret(SiteId::new(0, 2), &Value::Int(1));
        t.exception("ValueError");
        assert!(t.trace.events.is_empty());
    }

    #[test]
    fn events_are_ordered() {
        let mut t = Tracer::new();
        t.branch(SiteId::new(0, 6), true);
        t.ret(SiteId::new(0, 20), &Value::None);
        assert_eq!(t.trace.events.len(), 2);
        assert!(matches!(t.trace.events[0], TraceEvent::Branch { .. }));
    }

    #[test]
    fn well_known_kinds_intern_without_extra_entries() {
        let mut table = ExcTable::default();
        let a = table.intern("ValueError");
        let b = table.intern("ValueError");
        assert_eq!(a, b);
        assert_eq!(table.name(a), "ValueError");
        assert!(table.extra.is_empty());
    }

    #[test]
    fn custom_kinds_round_trip_deterministically() {
        let mut table = ExcTable::default();
        let a = table.intern("MyCustomError");
        let b = table.intern("OtherError");
        assert_eq!(table.intern("MyCustomError"), a);
        assert_ne!(a, b);
        assert_eq!(table.name(a), "MyCustomError");
        assert_eq!(table.name(b), "OtherError");

        // Same intern order in a second table yields the same ids.
        let mut again = ExcTable::default();
        assert_eq!(again.intern("MyCustomError"), a);
        assert_eq!(again.intern("OtherError"), b);
    }

    #[test]
    fn trace_events_are_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceEvent>();
    }

    #[test]
    fn has_exception_resolves_through_the_table() {
        let mut t = Tracer::new();
        t.exception("MyCustomError");
        let trace = t.into_trace();
        assert!(trace.has_exception("MyCustomError"));
        assert!(!trace.has_exception("ValueError"));
    }
}

//! Runtime values for the PyLite interpreter.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use crate::ast::FuncDef;

/// A runtime value. Reference types (`List`, `Dict`, `Object`) have shared
/// mutable interiors, matching Python semantics for mined code that mutates
/// `self` or accumulates into lists.
#[derive(Clone)]
pub enum Value {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    List(Rc<RefCell<Vec<Value>>>),
    Dict(Rc<RefCell<BTreeMap<String, Value>>>),
    /// A user-defined function (possibly a method before binding) together
    /// with the id of the file that defines it.
    Func(Rc<FuncDef>, u32),
    /// A bound method: receiver + function.
    Bound(Rc<RefCell<Object>>, Rc<FuncDef>, u32),
    /// A class, instantiable by calling it.
    Class(Rc<ClassObj>),
    /// An instance of a user-defined class.
    Object(Rc<RefCell<Object>>),
    /// A module namespace (from `import m`).
    Module(Rc<RefCell<Object>>),
    /// A native builtin function, dispatched by name.
    Builtin(&'static str),
    /// An open virtual file handle (supports `.read()` / `.readline()`).
    File(Rc<RefCell<FileHandle>>),
}

/// Class runtime representation.
pub struct ClassObj {
    pub name: String,
    pub methods: BTreeMap<String, Rc<FuncDef>>,
    pub file: u32,
}

/// Instance state: class name + attribute map.
pub struct Object {
    pub class: Option<Rc<ClassObj>>,
    pub attrs: BTreeMap<String, Value>,
}

impl Object {
    pub fn plain() -> Self {
        Object {
            class: None,
            attrs: BTreeMap::new(),
        }
    }
}

/// A virtual file opened via `open(...)` against the harness-provided
/// in-memory filesystem (AutoType's variant 6 feeds input through files).
pub struct FileHandle {
    pub contents: String,
    pub cursor: usize,
}

impl Value {
    /// Python truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::None => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.borrow().is_empty(),
            Value::Dict(d) => !d.borrow().is_empty(),
            _ => true,
        }
    }

    /// Human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::None => "NoneType",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Dict(_) => "dict",
            Value::Func(..) | Value::Bound(..) | Value::Builtin(_) => "function",
            Value::Class(_) => "class",
            Value::Object(_) => "object",
            Value::Module(_) => "module",
            Value::File(_) => "file",
        }
    }

    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(Rc::from(s.into()))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Structural equality following Python `==` (numbers compare across
    /// int/float; reference types compare by content).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::None, Value::None) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Bool(a), Value::Int(b)) | (Value::Int(b), Value::Bool(a)) => (*a as i64) == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            (Value::Dict(a), Value::Dict(b)) => {
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().all(|(k, v)| b.get(k).is_some_and(|w| v.py_eq(w)))
            }
            _ => false,
        }
    }

    /// Render like Python's `str()`.
    pub fn display(&self) -> String {
        match self {
            Value::None => "None".to_string(),
            Value::Bool(true) => "True".to_string(),
            Value::Bool(false) => "False".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Str(s) => s.to_string(),
            Value::List(l) => {
                let inner: Vec<String> = l.borrow().iter().map(|v| v.repr()).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Dict(d) => {
                let inner: Vec<String> = d
                    .borrow()
                    .iter()
                    .map(|(k, v)| format!("{k:?}: {}", v.repr()))
                    .collect();
                format!("{{{}}}", inner.join(", "))
            }
            Value::Func(f, _) => format!("<function {}>", f.name),
            Value::Bound(_, f, _) => format!("<bound method {}>", f.name),
            Value::Builtin(name) => format!("<builtin {name}>"),
            Value::Class(c) => format!("<class {}>", c.name),
            Value::Object(o) => {
                let o = o.borrow();
                match &o.class {
                    Some(c) => format!("<{} instance>", c.name),
                    None => "<object>".to_string(),
                }
            }
            Value::Module(_) => "<module>".to_string(),
            Value::File(_) => "<file>".to_string(),
        }
    }

    /// Render like Python's `repr()` (strings get quotes).
    pub fn repr(&self) -> String {
        match self {
            Value::Str(s) => format!("{:?}", s.as_ref()),
            other => other.display(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.repr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_python() {
        assert!(!Value::None.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::str("x").truthy());
        assert!(!Value::list(vec![]).truthy());
        assert!(Value::list(vec![Value::Int(1)]).truthy());
    }

    #[test]
    fn equality_crosses_numeric_types() {
        assert!(Value::Int(3).py_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).py_eq(&Value::Float(3.5)));
        assert!(Value::Bool(true).py_eq(&Value::Int(1)));
    }

    #[test]
    fn list_equality_is_structural() {
        let a = Value::list(vec![Value::Int(1), Value::str("x")]);
        let b = Value::list(vec![Value::Int(1), Value::str("x")]);
        assert!(a.py_eq(&b));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Bool(true).display(), "True");
        assert_eq!(Value::None.display(), "None");
        assert_eq!(Value::Float(2.0).display(), "2.0");
        assert_eq!(
            Value::list(vec![Value::str("a"), Value::Int(1)]).display(),
            "[\"a\", 1]"
        );
    }
}

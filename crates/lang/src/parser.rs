//! Recursive-descent parser for PyLite.
//!
//! Grammar summary (statements are newline-terminated; blocks are
//! `Indent ... Dedent`):
//!
//! ```text
//! stmt      := simple NEWLINE | compound
//! simple    := expr | target (= | += | -= | *= | //= | %=) expr
//!            | return [expr] | raise NAME ['(' expr ')'] | pass | break
//!            | continue | import NAME
//! compound  := if | while | for | def | class | try
//! expr      := or_expr
//! or_expr   := and_expr ('or' and_expr)*
//! and_expr  := not_expr ('and' not_expr)*
//! not_expr  := 'not' not_expr | comparison
//! comparison:= arith ((== != < <= > >= in 'not in') arith)?
//! arith     := term (('+'|'-') term)*
//! term      := power (('*'|'/'|'//'|'%') power)*
//! power     := unary ('**' unary)?
//! unary     := '-' unary | postfix
//! postfix   := atom ( '(' args ')' | '.' NAME | '[' subscript ']' )*
//! atom      := literal | NAME | '(' expr ')' | list | dict
//! ```

use crate::ast::*;
use crate::token::{Tok, Token};

/// A parse error with the offending 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a token stream (from [`crate::lexer::lex`]) into a [`Module`].
pub fn parse(tokens: Vec<Token>) -> Result<Module, ParseError> {
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let body = parser.parse_block_until_eof()?;
    Ok(Module { body })
}

/// Convenience: lex and parse in one step.
pub fn parse_source(source: &str) -> Result<Module, ParseError> {
    let tokens = crate::lexer::lex(source).map_err(|e| ParseError {
        line: e.line,
        message: e.message,
    })?;
    parse(tokens)
}

/// Maximum expression-nesting depth: recursive descent must not let
/// pathological mined code overflow the host stack.
const MAX_EXPR_DEPTH: usize = 120;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek_line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, ParseError> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(self.error(&format!("expected {tok}, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), ParseError> {
        let line = self.peek_line();
        match self.bump().tok {
            Tok::Ident(name) => Ok((name, line)),
            other => Err(ParseError {
                line,
                message: format!("expected identifier, found {other}"),
            }),
        }
    }

    fn error(&self, message: &str) -> ParseError {
        ParseError {
            line: self.peek_line(),
            message: message.to_string(),
        }
    }

    fn parse_block_until_eof(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        while self.peek() != &Tok::Eof {
            body.push(self.parse_stmt()?);
        }
        Ok(body)
    }

    /// Parse an indented block after a `:` header.
    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::Colon)?;
        self.expect(Tok::Newline)?;
        self.expect(Tok::Indent)?;
        let mut body = Vec::new();
        while self.peek() != &Tok::Dedent && self.peek() != &Tok::Eof {
            body.push(self.parse_stmt()?);
        }
        self.expect(Tok::Dedent)?;
        if body.is_empty() {
            return Err(self.error("empty block"));
        }
        Ok(body)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        match self.peek() {
            Tok::Def => {
                let func = self.parse_funcdef()?;
                Ok(Stmt::FuncDef(func))
            }
            Tok::Class => self.parse_classdef(),
            Tok::If => self.parse_if(),
            Tok::While => {
                self.bump();
                let cond = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::For => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(Tok::In)?;
                let iter = self.parse_expr()?;
                let body = self.parse_block()?;
                Ok(Stmt::For {
                    var,
                    iter,
                    body,
                    line,
                })
            }
            Tok::Try => self.parse_try(),
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Newline {
                    None
                } else {
                    Some(self.parse_expr()?)
                };
                self.expect(Tok::Newline)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Raise => {
                self.bump();
                let (kind, _) = self.expect_ident()?;
                let message = if self.eat(&Tok::LParen) {
                    if self.eat(&Tok::RParen) {
                        None
                    } else {
                        let m = self.parse_expr()?;
                        self.expect(Tok::RParen)?;
                        Some(m)
                    }
                } else {
                    None
                };
                self.expect(Tok::Newline)?;
                Ok(Stmt::Raise {
                    kind,
                    message,
                    line,
                })
            }
            Tok::Pass => {
                self.bump();
                self.expect(Tok::Newline)?;
                Ok(Stmt::Pass)
            }
            Tok::Break => {
                self.bump();
                self.expect(Tok::Newline)?;
                Ok(Stmt::Break(line))
            }
            Tok::Continue => {
                self.bump();
                self.expect(Tok::Newline)?;
                Ok(Stmt::Continue(line))
            }
            Tok::Import => {
                self.bump();
                let (module, _) = self.expect_ident()?;
                self.expect(Tok::Newline)?;
                Ok(Stmt::Import { module, line })
            }
            _ => self.parse_expr_or_assign(line),
        }
    }

    fn parse_funcdef(&mut self) -> Result<FuncDef, ParseError> {
        let line = self.peek_line();
        self.expect(Tok::Def)?;
        let (name, _) = self.expect_ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let body = self.parse_block()?;
        Ok(FuncDef {
            name,
            params,
            body,
            line,
        })
    }

    fn parse_classdef(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        self.expect(Tok::Class)?;
        let (name, _) = self.expect_ident()?;
        // Optional empty parent list `class C:` / `class C():`.
        if self.eat(&Tok::LParen) {
            // Accept and ignore a single base-class name (common in mined
            // code, e.g. `class Foo(object):`).
            if let Tok::Ident(_) = self.peek() {
                self.bump();
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::Colon)?;
        self.expect(Tok::Newline)?;
        self.expect(Tok::Indent)?;
        let mut methods = Vec::new();
        while self.peek() != &Tok::Dedent && self.peek() != &Tok::Eof {
            match self.peek() {
                Tok::Def => methods.push(self.parse_funcdef()?),
                Tok::Pass => {
                    self.bump();
                    self.expect(Tok::Newline)?;
                }
                _ => return Err(self.error("only method definitions allowed in class body")),
            }
        }
        self.expect(Tok::Dedent)?;
        Ok(Stmt::ClassDef(ClassDef {
            name,
            methods,
            line,
        }))
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        // `if` or `elif` keyword already at peek.
        self.bump();
        let cond = self.parse_expr()?;
        let then_body = self.parse_block()?;
        let else_body = match self.peek() {
            Tok::Elif => vec![self.parse_if()?],
            Tok::Else => {
                self.bump();
                self.parse_block()?
            }
            _ => Vec::new(),
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            line,
        })
    }

    fn parse_try(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        self.expect(Tok::Try)?;
        let body = self.parse_block()?;
        let mut handlers = Vec::new();
        while self.peek() == &Tok::Except {
            let hline = self.peek_line();
            self.bump();
            let kind = if let Tok::Ident(_) = self.peek() {
                let (k, _) = self.expect_ident()?;
                Some(k)
            } else {
                None
            };
            let bind = if self.eat(&Tok::As) {
                let (b, _) = self.expect_ident()?;
                Some(b)
            } else {
                None
            };
            let hbody = self.parse_block()?;
            handlers.push(ExceptHandler {
                kind,
                bind,
                body: hbody,
                line: hline,
            });
        }
        if handlers.is_empty() {
            return Err(self.error("try statement requires at least one except clause"));
        }
        Ok(Stmt::Try {
            body,
            handlers,
            line,
        })
    }

    fn parse_expr_or_assign(&mut self, line: u32) -> Result<Stmt, ParseError> {
        let expr = self.parse_expr()?;
        let aug = match self.peek() {
            Tok::PlusEq => Some(BinOp::Add),
            Tok::MinusEq => Some(BinOp::Sub),
            Tok::StarEq => Some(BinOp::Mul),
            Tok::SlashSlashEq => Some(BinOp::FloorDiv),
            Tok::PercentEq => Some(BinOp::Mod),
            _ => None,
        };
        if let Some(op) = aug {
            self.bump();
            let target = Self::expr_to_target(expr).map_err(|m| ParseError { line, message: m })?;
            let value = self.parse_expr()?;
            self.expect(Tok::Newline)?;
            return Ok(Stmt::AugAssign {
                target,
                op,
                value,
                line,
            });
        }
        if self.eat(&Tok::Eq) {
            let target = Self::expr_to_target(expr).map_err(|m| ParseError { line, message: m })?;
            let value = self.parse_expr()?;
            self.expect(Tok::Newline)?;
            return Ok(Stmt::Assign {
                target,
                value,
                line,
            });
        }
        self.expect(Tok::Newline)?;
        Ok(Stmt::Expr(expr))
    }

    fn expr_to_target(expr: Expr) -> Result<Target, String> {
        match expr {
            Expr::Name(name) => Ok(Target::Name(name)),
            Expr::Attr { object, name, .. } => Ok(Target::Attr {
                object: *object,
                name,
            }),
            Expr::Index { object, index, .. } => Ok(Target::Index {
                object: *object,
                index: *index,
            }),
            _ => Err("invalid assignment target".to_string()),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.error("expression nesting too deep"));
        }
        let result = self.parse_or();
        self.depth -= 1;
        result
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.peek() == &Tok::Or {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::BoolOp {
                is_and: false,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_not()?;
        while self.peek() == &Tok::And {
            self.bump();
            let right = self.parse_not()?;
            left = Expr::BoolOp {
                is_and: true,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Not) {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_arith()?;
        let line = self.peek_line();
        let op = match self.peek() {
            Tok::EqEq => Some(CmpOp::Eq),
            Tok::NotEq => Some(CmpOp::NotEq),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::LtEq => Some(CmpOp::LtEq),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::GtEq => Some(CmpOp::GtEq),
            Tok::In => Some(CmpOp::In),
            Tok::Not => {
                // `not in`
                if self.tokens.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::In) {
                    self.bump();
                    Some(CmpOp::NotIn)
                } else {
                    None
                }
            }
            _ => None,
        };
        match op {
            None => Ok(left),
            Some(op) => {
                self.bump();
                let right = self.parse_arith()?;
                Ok(Expr::Cmp {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                    line,
                })
            }
        }
    }

    fn parse_arith(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_term()?;
        loop {
            let line = self.peek_line();
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_term()?;
            left = Expr::Bin {
                op,
                left: Box::new(left),
                right: Box::new(right),
                line,
            };
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_power()?;
        loop {
            let line = self.peek_line();
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::SlashSlash => BinOp::FloorDiv,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_power()?;
            left = Expr::Bin {
                op,
                left: Box::new(left),
                right: Box::new(right),
                line,
            };
        }
        Ok(left)
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_unary()?;
        if self.peek() == &Tok::StarStar {
            let line = self.peek_line();
            self.bump();
            let exp = self.parse_unary()?;
            return Ok(Expr::Bin {
                op: BinOp::Pow,
                left: Box::new(base),
                right: Box::new(exp),
                line,
            });
        }
        Ok(base)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &Tok::Minus {
            let line = self.peek_line();
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner), line));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            let line = self.peek_line();
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        line,
                    };
                }
                Tok::Dot => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    expr = Expr::Attr {
                        object: Box::new(expr),
                        name,
                        line,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    // Either `[expr]`, `[expr:expr]`, `[:expr]`, `[expr:]`, `[:]`.
                    let low = if self.peek() == &Tok::Colon {
                        None
                    } else {
                        Some(Box::new(self.parse_expr()?))
                    };
                    if self.eat(&Tok::Colon) {
                        let high = if self.peek() == &Tok::RBracket {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect(Tok::RBracket)?;
                        expr = Expr::Slice {
                            object: Box::new(expr),
                            low,
                            high,
                            line,
                        };
                    } else {
                        self.expect(Tok::RBracket)?;
                        expr = Expr::Index {
                            object: Box::new(expr),
                            index: low.ok_or_else(|| self.error("empty subscript"))?,
                            line,
                        };
                    }
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let line = self.peek_line();
        match self.bump().tok {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::None => Ok(Expr::None),
            Tok::Ident(name) => Ok(Expr::Name(name)),
            Tok::LParen => {
                let inner = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(inner)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == &Tok::RBracket {
                            break; // trailing comma
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(Expr::List(items))
            }
            Tok::LBrace => {
                let mut items = Vec::new();
                if self.peek() != &Tok::RBrace {
                    loop {
                        let key = self.parse_expr()?;
                        self.expect(Tok::Colon)?;
                        let value = self.parse_expr()?;
                        items.push((key, value));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == &Tok::RBrace {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBrace)?;
                Ok(Expr::Dict(items))
            }
            other => Err(ParseError {
                line,
                message: format!("unexpected token {other} in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Module {
        parse_source(src).unwrap()
    }

    #[test]
    fn parses_function_def() {
        let m = parse_ok("def add(a, b):\n    return a + b\n");
        let f = m.functions().next().unwrap();
        assert_eq!(f.name, "add");
        assert_eq!(f.params, vec!["a", "b"]);
        assert_eq!(f.body.len(), 1);
    }

    #[test]
    fn parses_if_elif_else_chain() {
        let m = parse_ok("if a:\n    x = 1\nelif b:\n    x = 2\nelse:\n    x = 3\n");
        match &m.body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn elif_has_its_own_line() {
        let m = parse_ok("if a:\n    x = 1\nelif b:\n    x = 2\n");
        let Stmt::If {
            line, else_body, ..
        } = &m.body[0]
        else {
            panic!()
        };
        assert_eq!(*line, 1);
        let Stmt::If {
            line: elif_line, ..
        } = &else_body[0]
        else {
            panic!()
        };
        assert_eq!(*elif_line, 3);
    }

    #[test]
    fn parses_class_with_methods() {
        let m = parse_ok(
            "class CreditCard:\n    def __init__(self, s):\n        self.num = s\n    def brand(self):\n        return self.num\n",
        );
        let c = m.classes().next().unwrap();
        assert_eq!(c.name, "CreditCard");
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[0].name, "__init__");
    }

    #[test]
    fn parses_try_except() {
        let m = parse_ok(
            "try:\n    x = int(s)\nexcept ValueError as e:\n    x = 0\nexcept:\n    x = 1\n",
        );
        let Stmt::Try { handlers, .. } = &m.body[0] else {
            panic!()
        };
        assert_eq!(handlers.len(), 2);
        assert_eq!(handlers[0].kind.as_deref(), Some("ValueError"));
        assert_eq!(handlers[0].bind.as_deref(), Some("e"));
        assert_eq!(handlers[1].kind, None);
    }

    #[test]
    fn parses_slices_and_indexing() {
        let m = parse_ok("a = s[0]\nb = s[1:4]\nc = s[:3]\nd = s[2:]\ne = s[:]\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                value: Expr::Index { .. },
                ..
            }
        ));
        for stmt in &m.body[1..] {
            assert!(matches!(
                stmt,
                Stmt::Assign {
                    value: Expr::Slice { .. },
                    ..
                }
            ));
        }
    }

    #[test]
    fn parses_attribute_assignment() {
        let m = parse_ok("self.card = s\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                target: Target::Attr { .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_aug_assign() {
        let m = parse_ok("total += d * 2\n");
        assert!(matches!(&m.body[0], Stmt::AugAssign { op: BinOp::Add, .. }));
    }

    #[test]
    fn parses_not_in() {
        let m = parse_ok("if c not in digits:\n    pass\n");
        let Stmt::If { cond, .. } = &m.body[0] else {
            panic!()
        };
        assert!(matches!(
            cond,
            Expr::Cmp {
                op: CmpOp::NotIn,
                ..
            }
        ));
    }

    #[test]
    fn operator_precedence_mul_over_add() {
        let m = parse_ok("x = 1 + 2 * 3\n");
        let Stmt::Assign { value, .. } = &m.body[0] else {
            panic!()
        };
        let Expr::Bin { op, right, .. } = value else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**right, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn boolop_precedence_and_over_or() {
        let m = parse_ok("x = a or b and c\n");
        let Stmt::Assign { value, .. } = &m.body[0] else {
            panic!()
        };
        let Expr::BoolOp { is_and, right, .. } = value else {
            panic!()
        };
        assert!(!is_and);
        assert!(matches!(**right, Expr::BoolOp { is_and: true, .. }));
    }

    #[test]
    fn script_body_detection() {
        let m = parse_ok("def f():\n    return 1\n");
        assert!(!m.has_script_body());
        let m = parse_ok("x = '4111111111111111'\nfor c in x:\n    pass\n");
        assert!(m.has_script_body());
    }

    #[test]
    fn parses_imports() {
        let m = parse_ok("import sys\nimport checksum\n");
        assert_eq!(m.imports(), vec!["sys", "checksum"]);
    }

    #[test]
    fn parses_dict_and_list_literals() {
        let m = parse_ok("d = {'a': 1, 'b': 2}\nl = [1, 2, 3]\n");
        assert!(matches!(
            &m.body[0],
            Stmt::Assign {
                value: Expr::Dict(items),
                ..
            } if items.len() == 2
        ));
        assert!(matches!(
            &m.body[1],
            Stmt::Assign {
                value: Expr::List(items),
                ..
            } if items.len() == 3
        ));
    }

    #[test]
    fn rejects_bad_assignment_target() {
        assert!(parse_source("1 + 2 = x\n").is_err());
    }

    #[test]
    fn rejects_empty_block() {
        assert!(parse_source("if a:\nx = 2\n").is_err());
    }

    #[test]
    fn parses_class_with_object_base() {
        let m = parse_ok("class Foo(object):\n    def bar(self):\n        return 1\n");
        assert_eq!(m.classes().next().unwrap().name, "Foo");
    }
}

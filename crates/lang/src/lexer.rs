//! Indentation-aware lexer for PyLite.
//!
//! The lexer (see [`lex`]) turns source text into a token stream with explicit
//! `Newline`/`Indent`/`Dedent` tokens, mirroring Python's tokenizer. Blank
//! lines and comment-only lines produce no tokens; indentation inside
//! parentheses/brackets is ignored (implicit line joining).

use crate::token::{keyword, Tok, Token};

/// An error produced while lexing, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize PyLite source text.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    indents: Vec<usize>,
    tokens: Vec<Token>,
    paren_depth: usize,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            indents: vec![0],
            tokens: Vec::new(),
            paren_depth: 0,
            source,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        // The source is processed line-group by line-group; at the start of
        // each logical line we measure indentation.
        let _ = self.source;
        let mut at_line_start = true;
        while self.pos < self.chars.len() {
            if at_line_start && self.paren_depth == 0 {
                if self.handle_indentation()? {
                    // Blank or comment-only line: skip it entirely.
                    continue;
                }
                at_line_start = false;
            }
            let c = match self.peek() {
                Some(c) => c,
                None => break,
            };
            match c {
                ' ' | '\t' => {
                    self.bump();
                }
                '#' => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '\n' => {
                    self.bump();
                    self.line += 1;
                    if self.paren_depth == 0 {
                        self.emit(Tok::Newline);
                        at_line_start = true;
                    }
                }
                '\\' if self.peek_at(1) == Some('\n') => {
                    // Explicit line continuation.
                    self.bump();
                    self.bump();
                    self.line += 1;
                }
                '\'' | '"' => self.lex_string(c)?,
                c if c.is_ascii_digit() => self.lex_number()?,
                c if c.is_alphabetic() || c == '_' => self.lex_ident(),
                _ => self.lex_operator()?,
            }
        }
        // Close any dangling logical line, then unwind indentation.
        if !at_line_start || self.paren_depth > 0 {
            self.emit(Tok::Newline);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.emit(Tok::Dedent);
        }
        self.emit(Tok::Eof);
        Ok(self.tokens)
    }

    /// Measure indentation at a line start, emitting Indent/Dedent tokens.
    /// Returns true if the line was blank / comment-only and was consumed.
    fn handle_indentation(&mut self) -> Result<bool, LexError> {
        let mut width = 0usize;
        let start = self.pos;
        while let Some(c) = self.peek() {
            match c {
                ' ' => {
                    width += 1;
                    self.bump();
                }
                '\t' => {
                    width += 8 - (width % 8);
                    self.bump();
                }
                _ => break,
            }
        }
        match self.peek() {
            None => return Ok(true),
            Some('\n') => {
                self.bump();
                self.line += 1;
                return Ok(true);
            }
            Some('#') => {
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == '\n' {
                        self.line += 1;
                        break;
                    }
                }
                return Ok(true);
            }
            Some(_) => {}
        }
        let current = *self.indents.last().expect("indent stack never empty");
        if width > current {
            self.indents.push(width);
            self.emit(Tok::Indent);
        } else if width < current {
            while *self.indents.last().unwrap() > width {
                self.indents.pop();
                self.emit(Tok::Dedent);
            }
            if *self.indents.last().unwrap() != width {
                return Err(self.error("inconsistent dedent"));
            }
        }
        let _ = start;
        Ok(false)
    }

    fn lex_string(&mut self, quote: char) -> Result<(), LexError> {
        self.bump();
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string literal")),
                Some('\n') => return Err(self.error("newline in string literal")),
                Some('\\') => {
                    self.bump();
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.bump();
                    value.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '0' => '\0',
                        '\\' => '\\',
                        '\'' => '\'',
                        '"' => '"',
                        other => other,
                    });
                }
                Some(c) if c == quote => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    value.push(c);
                    self.bump();
                }
            }
        }
        self.emit(Tok::Str(value));
        Ok(())
    }

    fn lex_number(&mut self) -> Result<(), LexError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && !is_float && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| self.error("invalid float literal"))?;
            self.emit(Tok::Float(value));
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.error("integer literal out of range"))?;
            self.emit(Tok::Int(value));
        }
        Ok(())
    }

    fn lex_ident(&mut self) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match keyword(&text) {
            Some(tok) => self.emit(tok),
            None => self.emit(Tok::Ident(text)),
        }
    }

    fn lex_operator(&mut self) -> Result<(), LexError> {
        let c = self.peek().unwrap();
        let next = self.peek_at(1);
        let (tok, width) = match (c, next) {
            ('*', Some('*')) => (Tok::StarStar, 2),
            ('/', Some('/')) => {
                if self.peek_at(2) == Some('=') {
                    (Tok::SlashSlashEq, 3)
                } else {
                    (Tok::SlashSlash, 2)
                }
            }
            ('=', Some('=')) => (Tok::EqEq, 2),
            ('!', Some('=')) => (Tok::NotEq, 2),
            ('<', Some('=')) => (Tok::LtEq, 2),
            ('>', Some('=')) => (Tok::GtEq, 2),
            ('+', Some('=')) => (Tok::PlusEq, 2),
            ('-', Some('=')) => (Tok::MinusEq, 2),
            ('*', Some('=')) => (Tok::StarEq, 2),
            ('%', Some('=')) => (Tok::PercentEq, 2),
            ('+', _) => (Tok::Plus, 1),
            ('-', _) => (Tok::Minus, 1),
            ('*', _) => (Tok::Star, 1),
            ('/', _) => (Tok::Slash, 1),
            ('%', _) => (Tok::Percent, 1),
            ('=', _) => (Tok::Eq, 1),
            ('<', _) => (Tok::Lt, 1),
            ('>', _) => (Tok::Gt, 1),
            ('(', _) => {
                self.paren_depth += 1;
                (Tok::LParen, 1)
            }
            (')', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                (Tok::RParen, 1)
            }
            ('[', _) => {
                self.paren_depth += 1;
                (Tok::LBracket, 1)
            }
            (']', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                (Tok::RBracket, 1)
            }
            ('{', _) => {
                self.paren_depth += 1;
                (Tok::LBrace, 1)
            }
            ('}', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                (Tok::RBrace, 1)
            }
            (',', _) => (Tok::Comma, 1),
            (':', _) => (Tok::Colon, 1),
            ('.', _) => (Tok::Dot, 1),
            (other, _) => {
                return Err(self.error(&format!("unexpected character {other:?}")));
            }
        };
        for _ in 0..width {
            self.bump();
        }
        self.emit(tok);
        Ok(())
    }

    fn emit(&mut self, tok: Tok) {
        self.tokens.push(Token::new(tok, self.line));
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn error(&self, message: &str) -> LexError {
        LexError {
            line: self.line,
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 1\n"),
            vec![
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_indentation_blocks() {
        let toks = kinds("if x:\n    y = 2\nz = 3\n");
        assert!(toks.contains(&Tok::Indent));
        assert!(toks.contains(&Tok::Dedent));
        let indent_pos = toks.iter().position(|t| *t == Tok::Indent).unwrap();
        let dedent_pos = toks.iter().position(|t| *t == Tok::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let toks = kinds("x = 1\n\n# a comment\n   \ny = 2\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 2);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(kinds("s = 'a\\nb'\n")[2], Tok::Str("a\nb".into()),);
        assert_eq!(kinds("s = \"hi\"\n")[2], Tok::Str("hi".into()));
    }

    #[test]
    fn float_and_int_literals() {
        assert_eq!(kinds("x = 3.5\n")[2], Tok::Float(3.5));
        assert_eq!(kinds("x = 42\n")[2], Tok::Int(42));
    }

    #[test]
    fn implicit_line_joining_in_brackets() {
        let toks = kinds("x = [1,\n     2]\n");
        let newlines = toks.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(newlines, 1, "newline inside brackets must be swallowed");
    }

    #[test]
    fn double_char_operators() {
        let toks = kinds("a == b != c <= d >= e // f ** g\n");
        assert!(toks.contains(&Tok::EqEq));
        assert!(toks.contains(&Tok::NotEq));
        assert!(toks.contains(&Tok::LtEq));
        assert!(toks.contains(&Tok::GtEq));
        assert!(toks.contains(&Tok::SlashSlash));
        assert!(toks.contains(&Tok::StarStar));
    }

    #[test]
    fn keywords_are_recognized() {
        let toks = kinds("def f():\n    return None\n");
        assert_eq!(toks[0], Tok::Def);
        assert!(toks.contains(&Tok::Return));
        assert!(toks.contains(&Tok::None));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("s = 'oops\n").is_err());
    }

    #[test]
    fn inconsistent_dedent_is_error() {
        assert!(lex("if x:\n        y = 1\n   z = 2\n").is_err());
    }

    #[test]
    fn nested_dedents_unwind_fully() {
        let toks = kinds("if a:\n    if b:\n        c = 1\n");
        let dedents = toks.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a = 1\nb = 2\n").unwrap();
        let b = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 2);
    }
}

//! Tree-walking interpreter for PyLite with trace instrumentation.
//!
//! Semantics follow Python 2.7 where it matters to mined type-detection
//! code — notably `/` on two integers is *floor* division, which the paper's
//! Listing 1 relies on (`num / 1000 == 4` to detect Visa prefixes).
//!
//! Every `if`/`elif`/`while` condition evaluation emits a
//! [`TraceEvent::Branch`]; every executed `return` emits a
//! [`TraceEvent::Return`]; an exception escaping a public entry point emits a
//! [`TraceEvent::Exception`]. Tracing is inter-procedural: events from all
//! transitively called functions land in the same tracer, exactly like the
//! paper's whole-repository bytecode instrumentation (Appendix D.2).
//!
//! Execution is bounded by deterministic *fuel* (one unit per statement /
//! expression node) standing in for AutoType's 30-second watchdog.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::ast::*;
use crate::error::PyError;
use crate::parser::{parse_source, ParseError};
use crate::trace::{SiteId, Trace, TraceEvent, Tracer};
use crate::value::{ClassObj, Object, Value};

/// A named, parsed source file inside a [`Program`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Module name (the file name without `.py`).
    pub name: String,
    pub module: Module,
}

/// A set of source files that can import each other — one crawled
/// repository, plus any "pip-installed" packages the harness has added.
///
/// Files are stored behind `Arc`, so cloning a `Program` shares every parsed
/// AST (parse once, execute many): clones are cheap enough to hand one
/// executor per worker in the parallel trace engine.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub files: Vec<Arc<SourceFile>>,
}

impl Program {
    pub fn new() -> Self {
        Program::default()
    }

    /// Parse `source` and add it under `name`; returns the new file id.
    pub fn add_file(&mut self, name: &str, source: &str) -> Result<u32, ParseError> {
        let module = parse_source(source)?;
        self.files.push(Arc::new(SourceFile {
            name: name.to_string(),
            module,
        }));
        Ok((self.files.len() - 1) as u32)
    }

    /// Add an already-parsed module.
    pub fn add_module(&mut self, name: &str, module: Module) -> u32 {
        self.files.push(Arc::new(SourceFile {
            name: name.to_string(),
            module,
        }));
        (self.files.len() - 1) as u32
    }

    pub fn file_id(&self, name: &str) -> Option<u32> {
        self.files
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }

    pub fn file(&self, id: u32) -> &SourceFile {
        &self.files[id as usize]
    }
}

/// Simulated process I/O for the implicit-parameter invocation variants of
/// Appendix D.1: `sys.argv`, `input()`, and `open()` on a virtual filesystem.
#[derive(Debug, Clone, Default)]
pub struct Io {
    pub stdin: Option<String>,
    pub argv: Vec<String>,
    pub files: BTreeMap<String, String>,
}

/// Default fuel per execution: generous enough for real validators, small
/// enough to cut off accidental `while True` loops quickly.
pub const DEFAULT_FUEL: u64 = 200_000;

const MAX_DEPTH: usize = 48;

/// Control flow result of executing a statement or block.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

type Globals = Rc<RefCell<Object>>;

/// Execution environment: module globals plus optional function locals.
struct Env {
    file: u32,
    globals: Globals,
    locals: Option<BTreeMap<String, Value>>,
}

impl Env {
    fn get(&self, name: &str) -> Option<Value> {
        if let Some(locals) = &self.locals {
            if let Some(v) = locals.get(name) {
                return Some(v.clone());
            }
        }
        self.globals.borrow().attrs.get(name).cloned()
    }

    fn set(&mut self, name: &str, value: Value) {
        match &mut self.locals {
            Some(locals) => {
                locals.insert(name.to_string(), value);
            }
            None => {
                self.globals
                    .borrow_mut()
                    .attrs
                    .insert(name.to_string(), value);
            }
        }
    }
}

/// The PyLite interpreter.
///
/// One interpreter executes against one [`Program`]; a fresh [`Tracer`] can
/// be installed per run via [`Interp::reset_trace`].
pub struct Interp<'p> {
    program: &'p Program,
    pub(crate) io: Io,
    pub(crate) stdout: String,
    tracer: Tracer,
    fuel: u64,
    initial_fuel: u64,
    depth: usize,
    module_globals: Vec<Option<Globals>>,
    loading: Vec<bool>,
}

impl<'p> Interp<'p> {
    pub fn new(program: &'p Program) -> Self {
        Self::with_options(program, Io::default(), DEFAULT_FUEL)
    }

    pub fn with_options(program: &'p Program, io: Io, fuel: u64) -> Self {
        let n = program.files.len();
        Interp {
            program,
            io,
            stdout: String::new(),
            tracer: Tracer::new(),
            fuel,
            initial_fuel: fuel,
            depth: 0,
            module_globals: vec![None; n],
            loading: vec![false; n],
        }
    }

    /// Replace the tracer, returning the trace gathered so far.
    pub fn reset_trace(&mut self) -> Trace {
        std::mem::replace(&mut self.tracer, Tracer::new()).into_trace()
    }

    /// Events recorded so far (without resetting).
    pub fn trace_events(&self) -> &[TraceEvent] {
        &self.tracer.trace.events
    }

    /// Disable instrumentation entirely.
    pub fn disable_tracing(&mut self) {
        self.tracer = Tracer::disabled();
    }

    /// Refill fuel to the configured budget (call between runs).
    pub fn refill_fuel(&mut self) {
        self.fuel = self.initial_fuel;
    }

    /// Fuel consumed since the last refill — the deterministic analogue of
    /// wall-clock execution time (used for the Figure 14 experiment).
    pub fn fuel_used(&self) -> u64 {
        self.initial_fuel - self.fuel
    }

    /// Captured `print` output.
    pub fn stdout(&self) -> &str {
        &self.stdout
    }

    /// Replace the simulated I/O (between runs).
    pub fn set_io(&mut self, io: Io) {
        self.io = io;
    }

    // ------------------------------------------------------------------
    // Public entry points (these record escaping exceptions in the trace).
    // ------------------------------------------------------------------

    /// Ensure a module's top level has executed; returns its namespace.
    pub fn load_module(&mut self, file: u32) -> Result<Globals, PyError> {
        if let Some(g) = &self.module_globals[file as usize] {
            return Ok(g.clone());
        }
        if self.loading[file as usize] {
            // Import cycle: expose the (empty) namespace, like CPython.
            let g: Globals = Rc::new(RefCell::new(Object::plain()));
            self.module_globals[file as usize] = Some(g.clone());
            return Ok(g);
        }
        self.loading[file as usize] = true;
        let g: Globals = Rc::new(RefCell::new(Object::plain()));
        self.module_globals[file as usize] = Some(g.clone());
        // Copy the program reference out of `self` so the body borrow is
        // tied to `'p`, not to `self` (avoids cloning the AST per load).
        let program: &'p Program = self.program;
        let body = &program.file(file).module.body;
        let mut env = Env {
            file,
            globals: g.clone(),
            locals: None,
        };
        let result = self.exec_block(body, &mut env);
        self.loading[file as usize] = false;
        match result {
            Ok(_) => Ok(g),
            Err(e) => {
                // A failed load leaves the module unusable.
                self.module_globals[file as usize] = None;
                Err(e)
            }
        }
    }

    /// Call a top-level function of `file` by name with `args`, recording an
    /// `Exception` trace event if the call errors out.
    pub fn call_function(
        &mut self,
        file: u32,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, PyError> {
        let result = self.call_function_inner(file, name, args);
        if let Err(e) = &result {
            self.tracer.exception(&e.kind);
        }
        result
    }

    fn call_function_inner(
        &mut self,
        file: u32,
        name: &str,
        args: Vec<Value>,
    ) -> Result<Value, PyError> {
        let globals = self.load_module(file)?;
        let func = globals
            .borrow()
            .attrs
            .get(name)
            .cloned()
            .ok_or_else(|| PyError::name_error(name, 0))?;
        self.call_value(func, args, 0)
    }

    /// Fetch a module-level binding (class, function, constant).
    pub fn get_global(&mut self, file: u32, name: &str) -> Result<Value, PyError> {
        let globals = self.load_module(file)?;
        let v = globals.borrow().attrs.get(name).cloned();
        v.ok_or_else(|| PyError::name_error(name, 0))
    }

    /// Run a file as a standalone script (executes its top level), recording
    /// an `Exception` trace event on failure. Returns the module namespace.
    pub fn run_script(&mut self, file: u32) -> Result<Globals, PyError> {
        let result = self.load_module(file);
        if let Err(e) = &result {
            self.tracer.exception(&e.kind);
        }
        result
    }

    /// Call an arbitrary callable value (function, bound method, class,
    /// builtin) with `args`, recording an `Exception` trace event on failure.
    pub fn call(&mut self, callee: Value, args: Vec<Value>) -> Result<Value, PyError> {
        let result = self.call_value(callee, args, 0);
        if let Err(e) = &result {
            self.tracer.exception(&e.kind);
        }
        result
    }

    /// Invoke `receiver.method(args)` on an object instance, recording an
    /// `Exception` trace event on failure (used by the invocation variants
    /// of Appendix D.1).
    pub fn invoke_method(
        &mut self,
        receiver: Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, PyError> {
        let result = (|| {
            let bound = self.get_attr(receiver, method, 0)?;
            self.call_value(bound, args, 0)
        })();
        if let Err(e) = &result {
            self.tracer.exception(&e.kind);
        }
        result
    }

    // ------------------------------------------------------------------
    // Core execution.
    // ------------------------------------------------------------------

    /// Fuel charging hook for builtins that do data-proportional work.
    pub(crate) fn charge_external(&mut self, amount: u64) -> Result<(), PyError> {
        self.charge(amount)
    }

    #[inline]
    fn charge(&mut self, amount: u64) -> Result<(), PyError> {
        if self.fuel < amount {
            self.fuel = 0;
            return Err(PyError::fuel_exhausted());
        }
        self.fuel -= amount;
        Ok(())
    }

    /// Statement fuel is charged per *block* rather than per statement: one
    /// decrement for the whole straight-line body instead of one per step.
    /// Loops re-enter their body block every iteration (and `while`/`for`
    /// charge the iteration itself), so runaway loops still exhaust fuel at
    /// the same rate and fuel stays deterministic — an early `return` merely
    /// pays for the statements it skips.
    fn exec_block(&mut self, body: &[Stmt], env: &mut Env) -> Result<Flow, PyError> {
        self.charge(body.len() as u64)?;
        for stmt in body {
            match self.exec_stmt(stmt, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) -> Result<Flow, PyError> {
        match stmt {
            Stmt::Expr(e) => {
                self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let v = self.eval(value, env)?;
                self.assign(target, v, env, *line)?;
                Ok(Flow::Normal)
            }
            Stmt::AugAssign {
                target,
                op,
                value,
                line,
            } => {
                let current = self.read_target(target, env, *line)?;
                let rhs = self.eval(value, env)?;
                let v = self.binop(*op, current, rhs, *line)?;
                self.assign(target, v, env, *line)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let c = self.eval(cond, env)?;
                let taken = c.truthy();
                self.tracer.branch(SiteId::new(env.file, *line), taken);
                if taken {
                    self.exec_block(then_body, env)
                } else {
                    self.exec_block(else_body, env)
                }
            }
            Stmt::While { cond, body, line } => {
                loop {
                    self.charge(1)?;
                    let c = self.eval(cond, env)?;
                    let taken = c.truthy();
                    self.tracer.branch(SiteId::new(env.file, *line), taken);
                    if !taken {
                        break;
                    }
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                var,
                iter,
                body,
                line,
            } => {
                let iterable = self.eval(iter, env)?;
                let items = self.iterate(iterable, *line)?;
                for item in items {
                    self.charge(1)?;
                    env.set(var, item);
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, line } => {
                let v = match value {
                    Some(e) => self.eval(e, env)?,
                    None => Value::None,
                };
                self.tracer.ret(SiteId::new(env.file, *line), &v);
                Ok(Flow::Return(v))
            }
            Stmt::Raise {
                kind,
                message,
                line,
            } => {
                let msg = match message {
                    Some(e) => self.eval(e, env)?.display(),
                    None => String::new(),
                };
                Err(PyError::new(kind.clone(), msg, *line))
            }
            Stmt::Try { body, handlers, .. } => match self.exec_block(body, env) {
                Ok(flow) => Ok(flow),
                Err(e) if e.catchable() => {
                    for handler in handlers {
                        let matches = match &handler.kind {
                            None => true,
                            Some(k) => k == &e.kind || k == "Exception",
                        };
                        if matches {
                            if let Some(bind) = &handler.bind {
                                env.set(bind, Value::str(e.message.clone()));
                            }
                            return self.exec_block(&handler.body, env);
                        }
                    }
                    Err(e)
                }
                Err(e) => Err(e),
            },
            Stmt::FuncDef(f) => {
                env.set(&f.name, Value::Func(Rc::new(f.clone()), env.file));
                Ok(Flow::Normal)
            }
            Stmt::ClassDef(c) => {
                let mut methods = BTreeMap::new();
                for m in &c.methods {
                    methods.insert(m.name.clone(), Rc::new(m.clone()));
                }
                env.set(
                    &c.name,
                    Value::Class(Rc::new(ClassObj {
                        name: c.name.clone(),
                        methods,
                        file: env.file,
                    })),
                );
                Ok(Flow::Normal)
            }
            Stmt::Import { module, line } => {
                let value = self.import_module(module, *line)?;
                env.set(module, value);
                Ok(Flow::Normal)
            }
            Stmt::Pass => Ok(Flow::Normal),
            Stmt::Break(_) => Ok(Flow::Break),
            Stmt::Continue(_) => Ok(Flow::Continue),
        }
    }

    fn import_module(&mut self, name: &str, line: u32) -> Result<Value, PyError> {
        if name == "sys" {
            let mut obj = Object::plain();
            let argv: Vec<Value> = self.io.argv.iter().map(|s| Value::str(s.clone())).collect();
            obj.attrs.insert("argv".to_string(), Value::list(argv));
            return Ok(Value::Module(Rc::new(RefCell::new(obj))));
        }
        match self.program.file_id(name) {
            Some(id) => {
                let globals = self.load_module(id)?;
                Ok(Value::Module(globals))
            }
            None => Err(PyError::import_error(name, line)),
        }
    }

    fn assign(
        &mut self,
        target: &Target,
        value: Value,
        env: &mut Env,
        line: u32,
    ) -> Result<(), PyError> {
        match target {
            Target::Name(name) => {
                env.set(name, value);
                Ok(())
            }
            Target::Attr { object, name } => {
                let obj = self.eval(object, env)?;
                match obj {
                    Value::Object(o) | Value::Module(o) => {
                        o.borrow_mut().attrs.insert(name.clone(), value);
                        Ok(())
                    }
                    other => Err(PyError::attribute_error(other.type_name(), name, line)),
                }
            }
            Target::Index { object, index } => {
                let obj = self.eval(object, env)?;
                let idx = self.eval(index, env)?;
                match obj {
                    Value::List(l) => {
                        let i = self.list_index(&l.borrow(), &idx, line)?;
                        l.borrow_mut()[i] = value;
                        Ok(())
                    }
                    Value::Dict(d) => {
                        let key = dict_key(&idx, line)?;
                        d.borrow_mut().insert(key, value);
                        Ok(())
                    }
                    other => Err(PyError::type_error(
                        format!("'{}' does not support item assignment", other.type_name()),
                        line,
                    )),
                }
            }
        }
    }

    fn read_target(&mut self, target: &Target, env: &mut Env, line: u32) -> Result<Value, PyError> {
        let expr = match target {
            Target::Name(name) => Expr::Name(name.clone()),
            Target::Attr { object, name } => Expr::Attr {
                object: Box::new(object.clone()),
                name: name.clone(),
                line,
            },
            Target::Index { object, index } => Expr::Index {
                object: Box::new(object.clone()),
                index: Box::new(index.clone()),
                line,
            },
        };
        self.eval(&expr, env)
    }

    fn iterate(&mut self, value: Value, line: u32) -> Result<Vec<Value>, PyError> {
        match value {
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(c.to_string())).collect()),
            Value::List(l) => Ok(l.borrow().clone()),
            Value::Dict(d) => Ok(d.borrow().keys().map(|k| Value::str(k.clone())).collect()),
            other => Err(PyError::type_error(
                format!("'{}' object is not iterable", other.type_name()),
                line,
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expression evaluation.
    // ------------------------------------------------------------------

    fn eval(&mut self, expr: &Expr, env: &mut Env) -> Result<Value, PyError> {
        self.charge(1)?;
        match expr {
            Expr::None => Ok(Value::None),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Int(i) => Ok(Value::Int(*i)),
            Expr::Float(f) => Ok(Value::Float(*f)),
            Expr::Str(s) => Ok(Value::str(s.clone())),
            Expr::Name(name) => match env.get(name) {
                Some(v) => Ok(v),
                None => match crate::builtins::lookup(name) {
                    Some(v) => Ok(v),
                    None => Err(PyError::name_error(name, 0)),
                },
            },
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, env)?);
                }
                Ok(Value::list(out))
            }
            Expr::Dict(items) => {
                let mut map = BTreeMap::new();
                for (k, v) in items {
                    let key = self.eval(k, env)?;
                    let value = self.eval(v, env)?;
                    map.insert(dict_key(&key, 0)?, value);
                }
                Ok(Value::Dict(Rc::new(RefCell::new(map))))
            }
            Expr::Bin {
                op,
                left,
                right,
                line,
            } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                self.binop(*op, l, r, *line)
            }
            Expr::Cmp {
                op,
                left,
                right,
                line,
            } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                self.cmpop(*op, l, r, *line)
            }
            Expr::BoolOp {
                is_and,
                left,
                right,
            } => {
                let l = self.eval(left, env)?;
                if *is_and {
                    if l.truthy() {
                        self.eval(right, env)
                    } else {
                        Ok(l)
                    }
                } else if l.truthy() {
                    Ok(l)
                } else {
                    self.eval(right, env)
                }
            }
            Expr::Not(inner) => {
                let v = self.eval(inner, env)?;
                Ok(Value::Bool(!v.truthy()))
            }
            Expr::Neg(inner, line) => {
                let v = self.eval(inner, env)?;
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(PyError::type_error(
                        format!("bad operand type for unary -: '{}'", other.type_name()),
                        *line,
                    )),
                }
            }
            Expr::Call { callee, args, line } => self.eval_call(callee, args, env, *line),
            Expr::Attr { object, name, line } => {
                let obj = self.eval(object, env)?;
                self.get_attr(obj, name, *line)
            }
            Expr::Index {
                object,
                index,
                line,
            } => {
                let obj = self.eval(object, env)?;
                let idx = self.eval(index, env)?;
                self.index(obj, idx, *line)
            }
            Expr::Slice {
                object,
                low,
                high,
                line,
            } => {
                let obj = self.eval(object, env)?;
                let low = match low {
                    Some(e) => Some(self.eval(e, env)?),
                    None => None,
                };
                let high = match high {
                    Some(e) => Some(self.eval(e, env)?),
                    None => None,
                };
                self.slice(obj, low, high, *line)
            }
        }
    }

    fn eval_call(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        env: &mut Env,
        line: u32,
    ) -> Result<Value, PyError> {
        let mut arg_values = Vec::with_capacity(args.len());
        // Method-call fast path: dispatch primitive methods by receiver.
        if let Expr::Attr { object, name, .. } = callee {
            let recv = self.eval(object, env)?;
            for a in args {
                arg_values.push(self.eval(a, env)?);
            }
            return match &recv {
                Value::Object(_) | Value::Module(_) | Value::Class(_) => {
                    let f = self.get_attr(recv, name, line)?;
                    self.call_value(f, arg_values, line)
                }
                _ => crate::builtins::call_method(self, recv, name, arg_values, line),
            };
        }
        let callee_value = self.eval(callee, env)?;
        for a in args {
            arg_values.push(self.eval(a, env)?);
        }
        self.call_value(callee_value, arg_values, line)
    }

    pub(crate) fn call_value(
        &mut self,
        callee: Value,
        args: Vec<Value>,
        line: u32,
    ) -> Result<Value, PyError> {
        match callee {
            Value::Func(f, file) => self.call_funcdef(&f, file, None, args, line),
            Value::Bound(recv, f, file) => {
                self.call_funcdef(&f, file, Some(Value::Object(recv)), args, line)
            }
            Value::Class(class) => {
                let instance = Rc::new(RefCell::new(Object {
                    class: Some(class.clone()),
                    attrs: BTreeMap::new(),
                }));
                if let Some(init) = class.methods.get("__init__").cloned() {
                    self.call_funcdef(
                        &init,
                        class.file,
                        Some(Value::Object(instance.clone())),
                        args,
                        line,
                    )?;
                } else if !args.is_empty() {
                    return Err(PyError::type_error(
                        format!("{}() takes no arguments", class.name),
                        line,
                    ));
                }
                Ok(Value::Object(instance))
            }
            Value::Builtin(name) => crate::builtins::call(self, name, args, line),
            other => Err(PyError::type_error(
                format!("'{}' object is not callable", other.type_name()),
                line,
            )),
        }
    }

    fn call_funcdef(
        &mut self,
        func: &Rc<FuncDef>,
        file: u32,
        receiver: Option<Value>,
        args: Vec<Value>,
        line: u32,
    ) -> Result<Value, PyError> {
        if self.depth >= MAX_DEPTH {
            return Err(PyError::recursion());
        }
        let mut locals = BTreeMap::new();
        let mut all_args = Vec::new();
        if let Some(r) = receiver {
            all_args.push(r);
        }
        all_args.extend(args);
        if all_args.len() != func.params.len() {
            return Err(PyError::type_error(
                format!(
                    "{}() takes {} arguments ({} given)",
                    func.name,
                    func.params.len(),
                    all_args.len()
                ),
                line,
            ));
        }
        for (param, arg) in func.params.iter().zip(all_args) {
            locals.insert(param.clone(), arg);
        }
        let globals = self.load_module(file)?;
        let mut env = Env {
            file,
            globals,
            locals: Some(locals),
        };
        self.depth += 1;
        let result = self.exec_block(&func.body, &mut env);
        self.depth -= 1;
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::None),
        }
    }

    fn get_attr(&mut self, obj: Value, name: &str, line: u32) -> Result<Value, PyError> {
        match &obj {
            Value::Object(o) => {
                if let Some(v) = o.borrow().attrs.get(name) {
                    return Ok(v.clone());
                }
                let class = o.borrow().class.clone();
                if let Some(class) = class {
                    if let Some(m) = class.methods.get(name) {
                        return Ok(Value::Bound(o.clone(), m.clone(), class.file));
                    }
                }
                let type_name = o
                    .borrow()
                    .class
                    .as_ref()
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| "object".to_string());
                Err(PyError::attribute_error(&type_name, name, line))
            }
            Value::Module(m) => m
                .borrow()
                .attrs
                .get(name)
                .cloned()
                .ok_or_else(|| PyError::attribute_error("module", name, line)),
            Value::Class(c) => c
                .methods
                .get(name)
                .map(|m| Value::Func(m.clone(), c.file))
                .ok_or_else(|| PyError::attribute_error(&c.name, name, line)),
            other => Err(PyError::attribute_error(other.type_name(), name, line)),
        }
    }

    fn index(&mut self, obj: Value, idx: Value, line: u32) -> Result<Value, PyError> {
        match obj {
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let i = normalize_index(&idx, chars.len(), line)?;
                match chars.get(i) {
                    Some(c) => Ok(Value::str(c.to_string())),
                    None => Err(PyError::index_error(line)),
                }
            }
            Value::List(l) => {
                let borrowed = l.borrow();
                let i = self.list_index(&borrowed, &idx, line)?;
                Ok(borrowed[i].clone())
            }
            Value::Dict(d) => {
                let key = dict_key(&idx, line)?;
                d.borrow()
                    .get(&key)
                    .cloned()
                    .ok_or_else(|| PyError::key_error(&key, line))
            }
            other => Err(PyError::type_error(
                format!("'{}' object is not subscriptable", other.type_name()),
                line,
            )),
        }
    }

    fn list_index(&self, list: &[Value], idx: &Value, line: u32) -> Result<usize, PyError> {
        let i = normalize_index(idx, list.len(), line)?;
        if i < list.len() {
            Ok(i)
        } else {
            Err(PyError::index_error(line))
        }
    }

    fn slice(
        &mut self,
        obj: Value,
        low: Option<Value>,
        high: Option<Value>,
        line: u32,
    ) -> Result<Value, PyError> {
        fn bound(v: Option<Value>, default: i64, len: i64, line: u32) -> Result<i64, PyError> {
            let raw = match v {
                None => default,
                Some(Value::Int(i)) => i,
                Some(other) => {
                    return Err(PyError::type_error(
                        format!("slice indices must be integers, not {}", other.type_name()),
                        line,
                    ))
                }
            };
            let adjusted = if raw < 0 { raw + len } else { raw };
            Ok(adjusted.clamp(0, len))
        }
        match obj {
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let len = chars.len() as i64;
                let lo = bound(low, 0, len, line)?;
                let hi = bound(high, len, len, line)?;
                let out: String = if lo < hi {
                    chars[lo as usize..hi as usize].iter().collect()
                } else {
                    String::new()
                };
                Ok(Value::str(out))
            }
            Value::List(l) => {
                let items = l.borrow();
                let len = items.len() as i64;
                let lo = bound(low, 0, len, line)?;
                let hi = bound(high, len, len, line)?;
                let out: Vec<Value> = if lo < hi {
                    items[lo as usize..hi as usize].to_vec()
                } else {
                    Vec::new()
                };
                Ok(Value::list(out))
            }
            other => Err(PyError::type_error(
                format!("'{}' object is not sliceable", other.type_name()),
                line,
            )),
        }
    }

    fn binop(&mut self, op: BinOp, l: Value, r: Value, line: u32) -> Result<Value, PyError> {
        use BinOp::*;
        match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                let (a, b) = (*a, *b);
                match op {
                    Add => Ok(Value::Int(a.wrapping_add(b))),
                    Sub => Ok(Value::Int(a.wrapping_sub(b))),
                    Mul => Ok(Value::Int(a.wrapping_mul(b))),
                    // Python 2 semantics: int / int is floor division.
                    Div | FloorDiv => {
                        if b == 0 {
                            Err(PyError::new(
                                "ZeroDivisionError",
                                "integer division or modulo by zero",
                                line,
                            ))
                        } else {
                            Ok(Value::Int(floor_div(a, b)))
                        }
                    }
                    Mod => {
                        if b == 0 {
                            Err(PyError::new(
                                "ZeroDivisionError",
                                "integer division or modulo by zero",
                                line,
                            ))
                        } else {
                            Ok(Value::Int(py_mod(a, b)))
                        }
                    }
                    Pow => {
                        if b >= 0 {
                            let exp = u32::try_from(b.min(63)).unwrap_or(63);
                            Ok(Value::Int(a.wrapping_pow(exp)))
                        } else {
                            Ok(Value::Float((a as f64).powi(b as i32)))
                        }
                    }
                }
            }
            (a, b) if is_numeric(a) && is_numeric(b) => {
                let a = to_f64(a);
                let b = to_f64(b);
                match op {
                    Add => Ok(Value::Float(a + b)),
                    Sub => Ok(Value::Float(a - b)),
                    Mul => Ok(Value::Float(a * b)),
                    Div => {
                        if b == 0.0 {
                            Err(PyError::new("ZeroDivisionError", "float division", line))
                        } else {
                            Ok(Value::Float(a / b))
                        }
                    }
                    FloorDiv => {
                        if b == 0.0 {
                            Err(PyError::new("ZeroDivisionError", "float division", line))
                        } else {
                            Ok(Value::Float((a / b).floor()))
                        }
                    }
                    Mod => {
                        if b == 0.0 {
                            Err(PyError::new("ZeroDivisionError", "float modulo", line))
                        } else {
                            Ok(Value::Float(a - b * (a / b).floor()))
                        }
                    }
                    Pow => Ok(Value::Float(a.powf(b))),
                }
            }
            (Value::Str(a), Value::Str(b)) if op == Add => {
                let mut out = String::with_capacity(a.len() + b.len());
                out.push_str(a);
                out.push_str(b);
                Ok(Value::str(out))
            }
            (Value::Str(s), Value::Int(n)) | (Value::Int(n), Value::Str(s)) if op == Mul => {
                let n = (*n).max(0) as usize;
                self.charge((s.len() as u64).saturating_mul(n as u64).max(1))?;
                Ok(Value::str(s.repeat(n)))
            }
            (Value::List(a), Value::List(b)) if op == Add => {
                let mut out = a.borrow().clone();
                out.extend(b.borrow().iter().cloned());
                Ok(Value::list(out))
            }
            _ => Err(PyError::type_error(
                format!(
                    "unsupported operand type(s) for {:?}: '{}' and '{}'",
                    op,
                    l.type_name(),
                    r.type_name()
                ),
                line,
            )),
        }
    }

    fn cmpop(&mut self, op: CmpOp, l: Value, r: Value, line: u32) -> Result<Value, PyError> {
        use CmpOp::*;
        match op {
            Eq => Ok(Value::Bool(l.py_eq(&r))),
            NotEq => Ok(Value::Bool(!l.py_eq(&r))),
            In | NotIn => {
                let contains = match (&l, &r) {
                    (Value::Str(needle), Value::Str(hay)) => hay.contains(needle.as_ref()),
                    (item, Value::List(list)) => list.borrow().iter().any(|v| v.py_eq(item)),
                    (key, Value::Dict(d)) => {
                        let k = dict_key(key, line)?;
                        d.borrow().contains_key(&k)
                    }
                    (_, other) => {
                        return Err(PyError::type_error(
                            format!("argument of type '{}' is not iterable", other.type_name()),
                            line,
                        ))
                    }
                };
                Ok(Value::Bool(if op == In { contains } else { !contains }))
            }
            Lt | LtEq | Gt | GtEq => {
                let ord =
                    match (&l, &r) {
                        (a, b) if is_numeric(a) && is_numeric(b) => to_f64(a)
                            .partial_cmp(&to_f64(b))
                            .ok_or_else(|| PyError::type_error("unorderable floats", line))?,
                        (Value::Str(a), Value::Str(b)) => a.cmp(b),
                        (a, b) => {
                            return Err(PyError::type_error(
                                format!(
                                    "unorderable types: '{}' and '{}'",
                                    a.type_name(),
                                    b.type_name()
                                ),
                                line,
                            ))
                        }
                    };
                let result = match op {
                    Lt => ord == std::cmp::Ordering::Less,
                    LtEq => ord != std::cmp::Ordering::Greater,
                    Gt => ord == std::cmp::Ordering::Greater,
                    GtEq => ord != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(result))
            }
        }
    }
}

/// Convert a value into a dict key (strings as-is, ints canonicalized).
pub(crate) fn dict_key(value: &Value, line: u32) -> Result<String, PyError> {
    match value {
        Value::Str(s) => Ok(s.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        Value::Bool(b) => Ok(if *b { "1" } else { "0" }.to_string()),
        other => Err(PyError::type_error(
            format!("unhashable key type: '{}'", other.type_name()),
            line,
        )),
    }
}

fn normalize_index(idx: &Value, len: usize, line: u32) -> Result<usize, PyError> {
    let i = match idx {
        Value::Int(i) => *i,
        other => {
            return Err(PyError::type_error(
                format!("indices must be integers, not {}", other.type_name()),
                line,
            ))
        }
    };
    let adjusted = if i < 0 { i + len as i64 } else { i };
    if adjusted < 0 {
        return Err(PyError::index_error(line));
    }
    Ok(adjusted as usize)
}

fn is_numeric(v: &Value) -> bool {
    matches!(v, Value::Int(_) | Value::Float(_) | Value::Bool(_))
}

fn to_f64(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        Value::Bool(b) => *b as i64 as f64,
        _ => f64::NAN,
    }
}

/// Python floor division for integers.
fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    let r = a.wrapping_rem(b);
    if r != 0 && (r < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Python modulo: result has the sign of the divisor.
fn py_mod(a: i64, b: i64) -> i64 {
    let r = a.wrapping_rem(b);
    if r != 0 && (r < 0) != (b < 0) {
        r + b
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_expr(body: &str) -> Value {
        let mut program = Program::new();
        let src = format!("def f(s):\n{}\n", indent(body));
        program.add_file("m", &src).unwrap();
        let mut interp = Interp::new(&program);
        interp.call_function(0, "f", vec![Value::str("x")]).unwrap()
    }

    fn indent(body: &str) -> String {
        body.lines()
            .map(|l| format!("    {l}"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn python2_integer_division() {
        assert!(run_expr("return 4147 / 1000").py_eq(&Value::Int(4)));
        assert!(run_expr("return -7 / 2").py_eq(&Value::Int(-4)));
        assert!(run_expr("return 7 // 2").py_eq(&Value::Int(3)));
    }

    #[test]
    fn python_modulo_sign() {
        assert!(run_expr("return -7 % 3").py_eq(&Value::Int(2)));
        assert!(run_expr("return 7 % -3").py_eq(&Value::Int(-2)));
    }

    #[test]
    fn luhn_checksum_runs() {
        let src = r#"
def luhn(s):
    total = 0
    flip = 0
    i = len(s) - 1
    while i >= 0:
        d = int(s[i])
        if flip % 2 == 1:
            d = d * 2
            if d > 9:
                d = d - 9
        total += d
        flip += 1
        i -= 1
    return total % 10 == 0
"#;
        let mut program = Program::new();
        program.add_file("card", src).unwrap();
        let mut interp = Interp::new(&program);
        let ok = interp
            .call_function(0, "luhn", vec![Value::str("4532015112830366")])
            .unwrap();
        assert!(ok.py_eq(&Value::Bool(true)));
        let bad = interp
            .call_function(0, "luhn", vec![Value::str("4532015112830367")])
            .unwrap();
        assert!(bad.py_eq(&Value::Bool(false)));
    }

    #[test]
    fn branches_are_traced_with_lines() {
        let src = "def f(s):\n    if len(s) > 2:\n        return True\n    return False\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        interp
            .call_function(0, "f", vec![Value::str("abc")])
            .unwrap();
        let trace = interp.reset_trace();
        assert!(trace.events.contains(&TraceEvent::Branch {
            site: SiteId::new(0, 2),
            taken: true
        }));
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Return { site, .. } if site.line == 3)));
    }

    #[test]
    fn uncaught_exception_is_traced() {
        let src = "def f(s):\n    return int(s)\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let err = interp
            .call_function(0, "f", vec![Value::str("notanint")])
            .unwrap_err();
        assert_eq!(err.kind, "ValueError");
        assert!(interp.reset_trace().has_exception("ValueError"));
    }

    #[test]
    fn try_except_catches_by_kind() {
        let src = r#"
def f(s):
    try:
        return int(s)
    except ValueError:
        return -1
"#;
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let v = interp
            .call_function(0, "f", vec![Value::str("zz")])
            .unwrap();
        assert!(v.py_eq(&Value::Int(-1)));
    }

    #[test]
    fn bare_except_catches_custom_raise() {
        let src = r#"
def f(s):
    try:
        raise BadInput('nope')
    except:
        return 0
"#;
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let v = interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        assert!(v.py_eq(&Value::Int(0)));
    }

    #[test]
    fn classes_and_methods_work() {
        let src = r#"
class CreditCard:
    def __init__(self, s):
        self.num = s
        self.brand = None
    def parse(self):
        prefix = int(self.num[:1])
        if prefix == 4:
            self.brand = 'Visa'
        return self.brand
"#;
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let class = interp.get_global(0, "CreditCard").unwrap();
        let obj = interp
            .call(class, vec![Value::str("4111111111111111")])
            .unwrap();
        let Value::Object(o) = &obj else { panic!() };
        let method = {
            let borrowed = o.borrow();
            let class = borrowed.class.clone().unwrap();
            Value::Bound(o.clone(), class.methods["parse"].clone(), class.file)
        };
        let brand = interp.call(method, vec![]).unwrap();
        assert!(brand.py_eq(&Value::str("Visa")));
    }

    #[test]
    fn imports_between_files_work() {
        let lib = "def double(x):\n    return x * 2\n";
        let main = "import lib\n\ndef f(s):\n    return lib.double(len(s))\n";
        let mut program = Program::new();
        program.add_file("lib", lib).unwrap();
        program.add_file("main", main).unwrap();
        let mut interp = Interp::new(&program);
        let v = interp
            .call_function(1, "f", vec![Value::str("abc")])
            .unwrap();
        assert!(v.py_eq(&Value::Int(6)));
    }

    #[test]
    fn missing_import_raises_import_error() {
        let src = "import nonexistent\n\ndef f(s):\n    return 1\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let err = interp
            .call_function(0, "f", vec![Value::str("x")])
            .unwrap_err();
        assert_eq!(err.kind, "ImportError");
        assert!(err.message.contains("nonexistent"));
    }

    #[test]
    fn infinite_loop_hits_fuel_limit() {
        let src = "def f(s):\n    while True:\n        pass\n    return 1\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::with_options(&program, Io::default(), 10_000);
        let err = interp
            .call_function(0, "f", vec![Value::str("x")])
            .unwrap_err();
        assert!(err.is_timeout());
    }

    #[test]
    fn fuel_timeout_is_not_catchable() {
        let src = "def f(s):\n    try:\n        while True:\n            pass\n    except:\n        return 'caught'\n    return 'done'\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::with_options(&program, Io::default(), 10_000);
        assert!(interp
            .call_function(0, "f", vec![Value::str("x")])
            .unwrap_err()
            .is_timeout());
    }

    #[test]
    fn deep_recursion_is_bounded() {
        let src = "def f(s):\n    return f(s)\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        let err = interp
            .call_function(0, "f", vec![Value::str("x")])
            .unwrap_err();
        assert_eq!(err.kind, PyError::RECURSION);
    }

    #[test]
    fn string_slicing_and_negative_indices() {
        assert!(run_expr("return 'hello'[1:3]").py_eq(&Value::str("el")));
        assert!(run_expr("return 'hello'[-1]").py_eq(&Value::str("o")));
        assert!(run_expr("return 'hello'[:2]").py_eq(&Value::str("he")));
        assert!(run_expr("return 'hello'[10:20]").py_eq(&Value::str("")));
    }

    #[test]
    fn for_loop_over_string() {
        let v = run_expr("total = 0\nfor c in '123':\n    total += int(c)\nreturn total");
        assert!(v.py_eq(&Value::Int(6)));
    }

    #[test]
    fn dict_operations() {
        let v = run_expr("d = {'a': 1}\nd['b'] = 2\nreturn d['a'] + d['b']");
        assert!(v.py_eq(&Value::Int(3)));
        let v = run_expr("d = {'a': 1}\nif 'a' in d:\n    return True\nreturn False");
        assert!(v.py_eq(&Value::Bool(true)));
    }

    #[test]
    fn in_operator_on_strings_and_lists() {
        assert!(run_expr("return 'ell' in 'hello'").py_eq(&Value::Bool(true)));
        assert!(run_expr("return 5 in [1, 2, 5]").py_eq(&Value::Bool(true)));
        assert!(run_expr("return 'x' not in 'abc'").py_eq(&Value::Bool(true)));
    }

    #[test]
    fn script_with_sys_argv() {
        let src = "import sys\nresult = sys.argv[0]\n";
        let mut program = Program::new();
        program.add_file("script", src).unwrap();
        let io = Io {
            argv: vec!["127.0.0.1".to_string()],
            ..Io::default()
        };
        let mut interp = Interp::with_options(&program, io, DEFAULT_FUEL);
        let globals = interp.run_script(0).unwrap();
        let result = globals.borrow().attrs.get("result").cloned().unwrap();
        assert!(result.py_eq(&Value::str("127.0.0.1")));
    }

    #[test]
    fn boolop_returns_operand_like_python() {
        assert!(run_expr("return 0 or 'fallback'").py_eq(&Value::str("fallback")));
        assert!(run_expr("return 'a' and 'b'").py_eq(&Value::str("b")));
    }

    #[test]
    fn while_condition_branch_traced_each_iteration() {
        let src = "def f(s):\n    i = 0\n    while i < 2:\n        i += 1\n    return i\n";
        let mut program = Program::new();
        program.add_file("m", src).unwrap();
        let mut interp = Interp::new(&program);
        interp.call_function(0, "f", vec![Value::str("x")]).unwrap();
        let branches: Vec<bool> = interp
            .trace_events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Branch { site, taken } if site.line == 3 => Some(*taken),
                _ => None,
            })
            .collect();
        assert_eq!(branches, vec![true, true, false]);
    }
}

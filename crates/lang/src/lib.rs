//! # autotype-lang — the PyLite execution substrate
//!
//! AutoType (SIGMOD 2018) instruments and executes Python code mined from
//! GitHub. Rust has no dynamic code loading, so this crate provides the
//! substitution: **PyLite**, a small dynamically-typed, indentation-based,
//! Python-2.7-flavoured language with a tree-walking interpreter whose
//! execution emits the exact trace events the paper's bytecode injection
//! produces — branch outcomes and summarized return values keyed by
//! `(file, line)`, plus escaping exceptions (Appendix D.2 of the paper).
//!
//! The "mined code" of the reproduction — parsers, validators and
//! converters for rich semantic types — is written in PyLite by
//! `autotype-corpus` and executed here under deterministic fuel limits
//! (the stand-in for AutoType's 30-second watchdog).
//!
//! ## Quick example
//!
//! ```
//! use autotype_lang::{Interp, Program, Value};
//!
//! let mut program = Program::new();
//! program
//!     .add_file("card", "def check(s):\n    if len(s) == 16:\n        return True\n    return False\n")
//!     .unwrap();
//! let mut interp = Interp::new(&program);
//! let ok = interp
//!     .call_function(0, "check", vec![Value::str("4111111111111111")])
//!     .unwrap();
//! assert!(ok.truthy());
//! // The branch on line 2 and the return on line 3 are now in the trace:
//! assert_eq!(interp.trace_events().len(), 2);
//! ```

pub mod ast;
pub mod builtins;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod trace;
pub mod value;

pub use error::PyError;
pub use interp::{Interp, Io, Program, SourceFile, DEFAULT_FUEL};
pub use parser::{parse_source, ParseError};
pub use trace::{SiteId, TraceEvent, Tracer, ValueSummary};
pub use value::Value;

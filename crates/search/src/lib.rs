//! # autotype-search — simulated code-search engines
//!
//! AutoType retrieves candidate repositories with keyword search: "we
//! leverage both the GitHub search API as well as the Bing search API ...
//! We take the union of top-40 repositories returned by these two APIs
//! since their results are often complementary" (§4.1).
//!
//! This crate supplies the substitution: a field-weighted inverted index
//! with TF-IDF and BM25 scoring, instantiated twice with different field
//! weightings to model the two complementary engines, plus the plain
//! TF-IDF *function* ranking used by the paper's KW baseline (§8.1).

pub mod engine;
pub mod index;
pub mod tokenize;

pub use engine::{union_top_k, SearchEngine, SearchHit};
pub use index::{Document, Field, Index, Scoring};
pub use tokenize::tokenize;

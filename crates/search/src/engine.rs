//! The two simulated search APIs and their top-k union (§4.1).

use crate::index::{Document, FieldWeights, Index, Scoring};
use autotype_exec::ExecPool;

/// One search hit: the caller-supplied document id plus score.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    pub doc_id: usize,
    pub score: f64,
}

/// A configured search engine over a document collection.
pub struct SearchEngine {
    index: Index,
    scoring: Scoring,
    ids: Vec<usize>,
    pub name: &'static str,
}

impl SearchEngine {
    /// The simulated GitHub search API: name/description-heavy TF-IDF —
    /// repository metadata dominates, like topic/name matching on GitHub.
    pub fn github(documents: &[Document]) -> SearchEngine {
        SearchEngine::github_with_pool(documents, &ExecPool::new(1))
    }

    /// [`github`](SearchEngine::github), with corpus tokenization sharded
    /// across `pool` (identical index at every worker count).
    pub fn github_with_pool(documents: &[Document], pool: &ExecPool) -> SearchEngine {
        SearchEngine {
            index: Index::build_with_pool(
                documents,
                FieldWeights {
                    name: 6.0,
                    description: 3.0,
                    readme: 1.0,
                    code: 0.25,
                },
                pool,
            ),
            scoring: Scoring::TfIdf,
            ids: documents.iter().map(|d| d.id).collect(),
            name: "github",
        }
    }

    /// The simulated Bing web search (`"<keyword> site:github.com"`):
    /// full-text BM25 over READMEs and code, which surfaces repositories
    /// whose names don't mention the type — the complementary results the
    /// paper relies on.
    pub fn bing(documents: &[Document]) -> SearchEngine {
        SearchEngine::bing_with_pool(documents, &ExecPool::new(1))
    }

    /// [`bing`](SearchEngine::bing), with corpus tokenization sharded
    /// across `pool` (identical index at every worker count).
    pub fn bing_with_pool(documents: &[Document], pool: &ExecPool) -> SearchEngine {
        SearchEngine {
            index: Index::build_with_pool(
                documents,
                FieldWeights {
                    name: 1.5,
                    description: 1.5,
                    readme: 3.0,
                    code: 1.0,
                },
                pool,
            ),
            scoring: Scoring::Bm25,
            ids: documents.iter().map(|d| d.id).collect(),
            name: "bing",
        }
    }

    /// A custom engine (used by tests and the KW baseline).
    pub fn custom(documents: &[Document], weights: FieldWeights, scoring: Scoring) -> SearchEngine {
        SearchEngine {
            index: Index::build(documents, weights),
            scoring,
            ids: documents.iter().map(|d| d.id).collect(),
            name: "custom",
        }
    }

    /// Top-k results for a query.
    pub fn search(&self, query: &str, k: usize) -> Vec<SearchHit> {
        self.index
            .score(query, self.scoring)
            .into_iter()
            .take(k)
            .map(|(pos, score)| SearchHit {
                doc_id: self.ids[pos],
                score,
            })
            .collect()
    }
}

/// Union of the top-k results from several engines, preserving first-seen
/// order (GitHub results first, then new Bing results — §4.1 takes "the
/// union of top-40 repositories returned by these two APIs").
pub fn union_top_k(engines: &[&SearchEngine], query: &str, k: usize) -> Vec<usize> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for engine in engines {
        for hit in engine.search(query, k) {
            if seen.insert(hit.doc_id) {
                out.push(hit.doc_id);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Field;

    fn docs() -> Vec<Document> {
        vec![
            Document {
                id: 100,
                fields: vec![
                    (Field::Name, "isbn-tools".into()),
                    (Field::Description, "ISBN utilities".into()),
                    (Field::Readme, "validate isbn numbers".into()),
                ],
            },
            Document {
                id: 200,
                fields: vec![
                    (Field::Name, "book-manager".into()),
                    (Field::Description, "library manager".into()),
                    (
                        Field::Readme,
                        "manage books by isbn international standard book number".into(),
                    ),
                ],
            },
            Document {
                id: 300,
                fields: vec![
                    (Field::Name, "unrelated".into()),
                    (Field::Readme, "nothing to see".into()),
                ],
            },
        ]
    }

    #[test]
    fn both_engines_find_the_obvious_repo() {
        let d = docs();
        let github = SearchEngine::github(&d);
        let bing = SearchEngine::bing(&d);
        assert_eq!(github.search("isbn", 1)[0].doc_id, 100);
        assert!(bing.search("isbn", 2).iter().any(|h| h.doc_id == 100));
    }

    #[test]
    fn engines_are_complementary() {
        let d = docs();
        let github = SearchEngine::github(&d);
        let bing = SearchEngine::bing(&d);
        // The long-form query only matches README text, which the
        // Bing-style engine weighs higher.
        let gh_top: Vec<usize> = github
            .search("international standard book number", 1)
            .iter()
            .map(|h| h.doc_id)
            .collect();
        let bing_top: Vec<usize> = bing
            .search("international standard book number", 1)
            .iter()
            .map(|h| h.doc_id)
            .collect();
        assert_eq!(bing_top, vec![200]);
        // Union covers everything relevant either way.
        let union = union_top_k(&[&github, &bing], "isbn", 2);
        assert!(union.contains(&100));
        assert!(union.contains(&200));
        let _ = gh_top;
    }

    #[test]
    fn union_deduplicates_and_preserves_order() {
        let d = docs();
        let github = SearchEngine::github(&d);
        let bing = SearchEngine::bing(&d);
        let union = union_top_k(&[&github, &bing], "isbn", 3);
        let unique: std::collections::HashSet<_> = union.iter().collect();
        assert_eq!(unique.len(), union.len());
    }

    #[test]
    fn k_limits_results() {
        let d = docs();
        let github = SearchEngine::github(&d);
        assert!(github.search("isbn", 1).len() <= 1);
    }
}

//! Field-weighted inverted index with TF-IDF and BM25 scoring.
//!
//! Index construction is embarrassingly parallel over documents:
//! [`Index::build_with_pool`] fans per-document tokenization out across an
//! [`ExecPool`] and merges the per-document statistics in document order,
//! so the built index is identical at every worker count.

use crate::tokenize::tokenize;
use autotype_exec::ExecPool;
use std::collections::{BTreeMap, HashMap};

/// Document fields, with different weights per engine (repository name
/// matches matter more on GitHub search; body text matters more on a web
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// Repository or function name.
    Name,
    /// Short description / docstring.
    Description,
    /// README or comments.
    Readme,
    /// Source code text (identifiers).
    Code,
}

/// A document to index: id + per-field text.
#[derive(Debug, Clone)]
pub struct Document {
    pub id: usize,
    pub fields: Vec<(Field, String)>,
}

/// Scoring function selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    TfIdf,
    Bm25,
}

/// Per-field weights applied to term frequencies at index time.
#[derive(Debug, Clone, Copy)]
pub struct FieldWeights {
    pub name: f64,
    pub description: f64,
    pub readme: f64,
    pub code: f64,
}

impl FieldWeights {
    pub fn uniform() -> Self {
        FieldWeights {
            name: 1.0,
            description: 1.0,
            readme: 1.0,
            code: 1.0,
        }
    }

    fn get(&self, field: Field) -> f64 {
        match field {
            Field::Name => self.name,
            Field::Description => self.description,
            Field::Readme => self.readme,
            Field::Code => self.code,
        }
    }
}

/// An inverted index over a fixed document collection.
pub struct Index {
    /// term -> (doc, weighted term frequency)
    postings: HashMap<String, Vec<(usize, f64)>>,
    /// weighted length per document.
    doc_len: Vec<f64>,
    avg_len: f64,
    n_docs: usize,
}

impl Index {
    /// Build an index with the given field weights on the current thread.
    pub fn build(documents: &[Document], weights: FieldWeights) -> Index {
        Index::build_with_pool(documents, weights, &ExecPool::new(1))
    }

    /// Build an index, sharding per-document tokenization across `pool`.
    ///
    /// Tokenizing and weighting one document is a pure function of that
    /// document, so the corpus fans out as one job per document. The merge
    /// walks documents in index order: posting lists stay sorted by
    /// document position and `avg_len` sums lengths in document order, so
    /// the result is bit-identical for every worker count (a 1-worker pool
    /// is the exact serial loop). Per-document term counts use a `BTreeMap`
    /// so the posting-map insertion sequence is canonical too.
    pub fn build_with_pool(
        documents: &[Document],
        weights: FieldWeights,
        pool: &ExecPool,
    ) -> Index {
        let n_docs = documents.len();
        let per_doc: Vec<(BTreeMap<String, f64>, f64)> =
            pool.run_ordered(documents.iter().collect(), |_, doc: &Document| {
                let mut tf: BTreeMap<String, f64> = BTreeMap::new();
                let mut len = 0.0;
                for (field, text) in &doc.fields {
                    let w = weights.get(*field);
                    for token in tokenize(text) {
                        *tf.entry(token).or_default() += w;
                        len += w;
                    }
                }
                (tf, len)
            });
        let mut postings: HashMap<String, Vec<(usize, f64)>> = HashMap::new();
        let mut doc_len = vec![0.0; n_docs];
        for (pos, (tf, len)) in per_doc.into_iter().enumerate() {
            doc_len[pos] = len;
            for (term, freq) in tf {
                postings.entry(term).or_default().push((pos, freq));
            }
        }
        let avg_len = if n_docs == 0 {
            0.0
        } else {
            doc_len.iter().sum::<f64>() / n_docs as f64
        };
        Index {
            postings,
            doc_len,
            avg_len,
            n_docs,
        }
    }

    pub fn len(&self) -> usize {
        self.n_docs
    }

    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// Score all documents against a query; returns (doc position, score)
    /// for documents with a non-zero score, sorted descending (ties by
    /// position for determinism).
    pub fn score(&self, query: &str, scoring: Scoring) -> Vec<(usize, f64)> {
        let terms = tokenize(query);
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in &terms {
            let Some(posting) = self.postings.get(term) else {
                continue;
            };
            let df = posting.len() as f64;
            let n = self.n_docs as f64;
            match scoring {
                Scoring::TfIdf => {
                    let idf = (n / df).ln() + 1.0;
                    for (doc, tf) in posting {
                        let norm = self.doc_len[*doc].max(1.0);
                        *scores.entry(*doc).or_default() += (tf / norm.sqrt()) * idf;
                    }
                }
                Scoring::Bm25 => {
                    const K1: f64 = 1.2;
                    const B: f64 = 0.75;
                    let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
                    for (doc, tf) in posting {
                        let norm = K1 * (1.0 - B + B * self.doc_len[*doc] / self.avg_len.max(1.0));
                        *scores.entry(*doc).or_default() += idf * (tf * (K1 + 1.0)) / (tf + norm);
                    }
                }
            }
        }
        let mut out: Vec<(usize, f64)> = scores.into_iter().collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: usize, name: &str, body: &str) -> Document {
        Document {
            id,
            fields: vec![
                (Field::Name, name.to_string()),
                (Field::Readme, body.to_string()),
            ],
        }
    }

    #[test]
    fn relevant_documents_rank_first() {
        let docs = vec![
            doc(
                0,
                "credit-card-validator",
                "validate credit card numbers with luhn",
            ),
            doc(1, "ip-tools", "parse ip address ipv4 ipv6"),
            doc(2, "string-utils", "generic string helpers"),
        ];
        let index = Index::build(&docs, FieldWeights::uniform());
        let hits = index.score("credit card", Scoring::TfIdf);
        assert_eq!(hits[0].0, 0);
        let hits = index.score("ip address", Scoring::Bm25);
        assert_eq!(hits[0].0, 1);
    }

    #[test]
    fn no_match_returns_empty() {
        let docs = vec![doc(0, "a", "b")];
        let index = Index::build(&docs, FieldWeights::uniform());
        assert!(index.score("zzz qqq", Scoring::TfIdf).is_empty());
    }

    #[test]
    fn field_weights_shift_ranking() {
        let docs = vec![
            doc(0, "swift", "a general purpose programming language"),
            Document {
                id: 1,
                fields: vec![
                    (Field::Name, "bank-messages".to_string()),
                    (
                        Field::Readme,
                        "parse swift mt103 interbank financial messages".to_string(),
                    ),
                ],
            },
        ];
        // Name-heavy engine favours the Swift language repo.
        let name_heavy = Index::build(
            &docs,
            FieldWeights {
                name: 8.0,
                description: 1.0,
                readme: 0.5,
                code: 0.5,
            },
        );
        assert_eq!(name_heavy.score("swift", Scoring::TfIdf)[0].0, 0);
        // Body-heavy engine favours the financial-message repo for the
        // disambiguated query.
        let body_heavy = Index::build(
            &docs,
            FieldWeights {
                name: 1.0,
                description: 1.0,
                readme: 3.0,
                code: 1.0,
            },
        );
        assert_eq!(body_heavy.score("swift message", Scoring::Bm25)[0].0, 1);
    }

    #[test]
    fn idf_downweights_common_terms() {
        let docs = vec![
            doc(0, "x", "parser parser parser credit"),
            doc(1, "y", "parser"),
            doc(2, "z", "parser"),
        ];
        let index = Index::build(&docs, FieldWeights::uniform());
        let hits = index.score("credit parser", Scoring::TfIdf);
        assert_eq!(hits[0].0, 0, "rare term should dominate");
    }

    #[test]
    fn parallel_build_is_worker_count_invariant() {
        let docs: Vec<Document> = (0..40)
            .map(|i| {
                doc(
                    i,
                    &format!("repo-{i}"),
                    &format!("tokens shared by many docs plus unique-{i} and isbn"),
                )
            })
            .collect();
        let baseline = Index::build(&docs, FieldWeights::uniform());
        let queries = ["isbn", "unique-7", "shared docs", "repo-3 tokens"];
        for workers in [2, 4, 8] {
            let pool = ExecPool::new(workers);
            let built = Index::build_with_pool(&docs, FieldWeights::uniform(), &pool);
            for q in queries {
                for scoring in [Scoring::TfIdf, Scoring::Bm25] {
                    assert_eq!(
                        built.score(q, scoring),
                        baseline.score(q, scoring),
                        "workers={workers} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_tie_break() {
        let docs = vec![doc(0, "same", "x"), doc(1, "same", "x")];
        let index = Index::build(&docs, FieldWeights::uniform());
        let hits = index.score("same", Scoring::Bm25);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }
}

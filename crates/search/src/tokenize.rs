//! Tokenization for code-search documents: lowercasing, splitting on
//! non-alphanumerics, and camelCase / snake_case splitting so identifiers
//! like `isValidCreditCard` match the query "credit card".

/// Tokenize text into lowercase terms.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for raw in text.split(|c: char| !c.is_ascii_alphanumeric()) {
        if raw.is_empty() {
            continue;
        }
        // Split camelCase boundaries and letter/digit boundaries.
        let mut current = String::new();
        let chars: Vec<char> = raw.chars().collect();
        for (i, &c) in chars.iter().enumerate() {
            let boundary = i > 0
                && ((c.is_ascii_uppercase() && chars[i - 1].is_ascii_lowercase())
                    || (c.is_ascii_digit() != chars[i - 1].is_ascii_digit()));
            if boundary && !current.is_empty() {
                tokens.push(std::mem::take(&mut current).to_ascii_lowercase());
            }
            current.push(c);
        }
        if !current.is_empty() {
            tokens.push(current.to_ascii_lowercase());
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokenize("credit card"), vec!["credit", "card"]);
        assert_eq!(tokenize("ip-address.v4"), vec!["ip", "address", "v", "4"]);
    }

    #[test]
    fn splits_camel_case_identifiers() {
        assert_eq!(
            tokenize("isValidCreditCard"),
            vec!["is", "valid", "credit", "card"]
        );
    }

    #[test]
    fn splits_snake_case_and_digits() {
        assert_eq!(tokenize("parse_ipv4"), vec!["parse", "ipv", "4"]);
        assert_eq!(tokenize("isbn13"), vec!["isbn", "13"]);
    }

    #[test]
    fn lowercases_everything() {
        assert_eq!(tokenize("SWIFT Message"), vec!["swift", "message"]);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("---").is_empty());
    }
}

//! The parallel trace engine's core guarantee: any worker count produces a
//! session bit-identical to the serial (`workers = 1`) path — same accepted
//! mutation strategy, same ranked functions and scores, same DNF
//! explanations, same validator verdicts, same fuel/install accounting.

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_typesys::by_slug;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine(workers: usize) -> AutoType {
    let config = AutoTypeConfig {
        workers,
        ..AutoTypeConfig::default()
    };
    AutoType::new(build_corpus(&CorpusConfig::default()), config)
}

/// Everything observable about a session, rendered to comparable form.
#[derive(Debug, PartialEq)]
struct Snapshot {
    strategy: String,
    negatives: Vec<String>,
    fuel_spent: u64,
    installs: usize,
    /// (label, score, neg_fraction, explanation) per ranked function.
    ranking: Vec<(String, f64, f64, String)>,
    /// Validator verdicts of the top function on probe inputs.
    verdicts: Vec<bool>,
}

fn snapshot(engine: &AutoType, keyword: &str, slug: &str, seed: u64) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let positives = {
        let mut prng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        by_slug(slug).unwrap().examples(&mut prng, 12)
    };
    let mut session = engine
        .session(keyword, &positives, NegativeMode::Hierarchy, &mut rng)
        .unwrap_or_else(|| panic!("{slug}: no session"));
    let strategy = format!("{:?}", session.strategy);
    let negatives = session.negatives.clone();
    let ranking: Vec<(String, f64, f64, String)> = session
        .rank(Method::DnfS)
        .iter()
        .map(|f| {
            (
                f.label.clone(),
                f.score,
                f.neg_fraction,
                f.explanation.clone(),
            )
        })
        .collect();
    let top = session
        .rank(Method::DnfS)
        .into_iter()
        .next()
        .expect("ranked");
    let probes = {
        let mut prng = StdRng::seed_from_u64(seed ^ 0xD00D);
        let mut p = by_slug(slug).unwrap().examples(&mut prng, 4);
        p.push("definitely not a valid value !!".to_string());
        p
    };
    let verdicts = probes.iter().map(|p| session.validate(&top, p)).collect();
    Snapshot {
        strategy,
        negatives,
        fuel_spent: session.fuel_spent,
        installs: session.installs,
        ranking,
        verdicts,
    }
}

#[test]
fn every_worker_count_matches_the_serial_session() {
    let serial = engine(1);
    let cases = [
        ("credit card", "creditcard", 101u64),
        ("IPv6", "ipv6", 202),
        ("US zipcode", "zipcode", 303),
    ];
    let baselines: Vec<Snapshot> = cases
        .iter()
        .map(|(kw, slug, seed)| snapshot(&serial, kw, slug, *seed))
        .collect();
    // The serial session must actually rank something, or the comparison
    // below is vacuous.
    for (b, (_, slug, _)) in baselines.iter().zip(&cases) {
        assert!(!b.ranking.is_empty(), "{slug}: empty serial ranking");
        assert!(b.fuel_spent > 0, "{slug}: no fuel spent");
    }

    for workers in [2, 4, 8] {
        let parallel = engine(workers);
        for (baseline, (kw, slug, seed)) in baselines.iter().zip(&cases) {
            let got = snapshot(&parallel, kw, slug, *seed);
            assert_eq!(
                &got, baseline,
                "{slug} (seed {seed}): workers={workers} diverged from serial"
            );
        }
    }
}

/// Re-running the same session twice on a multi-worker engine is also
/// self-consistent (executors are restored to their slots after each batch,
/// so later sessions see identical starting state).
#[test]
fn parallel_sessions_are_repeatable() {
    let engine = engine(4);
    let a = snapshot(&engine, "ISBN", "isbn", 404);
    let b = snapshot(&engine, "ISBN", "isbn", 404);
    assert_eq!(a, b);
}

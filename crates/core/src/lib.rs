//! # autotype — program synthesis for type detection (SIGMOD 2018)
//!
//! The public facade of the reproduction: given a search keyword `N` and
//! positive examples `P` for a target type `T`, [`AutoType::session`] runs
//! the full pipeline of Definition 1 —
//!
//! 1. keyword search over the (synthetic) open-source universe, taking the
//!    union of top-k repositories from two complementary engines (§4.1);
//! 2. AST analysis for single-parameter candidate functions (§4.2);
//! 3. negative-example generation by the S1→S2→S3 mutation hierarchy,
//!    escalating until candidates separate `P` from `N` (Algorithm 2, §6);
//! 4. instrumented execution of every candidate on `P ∪ N` with the
//!    pip-install loop (§5.1);
//! 5. ranking by Best-k-Concise-DNF-Cover, or any of the baseline methods
//!    (§5.2, §8.1);
//! 6. synthesis of an executable validator from the expanded DNF-E
//!    (§5.3, Appendix G) plus semantic-transformation mining (§7.1).
//!
//! ```no_run
//! use autotype::{AutoType, AutoTypeConfig, NegativeMode};
//! use autotype_corpus::{build_corpus, CorpusConfig};
//! use autotype_rank::Method;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let corpus = build_corpus(&CorpusConfig::default());
//! let engine = AutoType::new(corpus, AutoTypeConfig::default());
//! let mut rng = StdRng::seed_from_u64(1);
//! let positives: Vec<String> = vec!["4147202263232835".into(), "371449635398431".into()];
//! let mut session = engine
//!     .session("credit card", &positives, NegativeMode::Hierarchy, &mut rng)
//!     .unwrap();
//! let ranked = session.rank(Method::DnfS);
//! println!("top function: {} — {}", ranked[0].label, ranked[0].explanation);
//! ```

use std::collections::BTreeSet;

use autotype_corpus::{Corpus, Quality};
use autotype_dnf::CoverParams;
pub use autotype_exec::ExecPool;
use autotype_exec::{
    analyze_module, featurize, probe_trace, Candidate, EntryPoint, Executor, Literal, PackageIndex,
};
use autotype_lang::Program;
use autotype_negative::{generate_negatives, random_negatives, MutationConfig, Strategy};
pub use autotype_pack::{load_pack, Pack, PackError, PackValidator};
use autotype_rank::{rank as rank_methods, FunctionTraces, Method, RankCandidate};
use autotype_search::{union_top_k, Document, Field, SearchEngine};
use autotype_synth::{
    explain_cover, harvest_transformations, SynthesizedValidator, Transformation,
};
use rand::rngs::StdRng;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct AutoTypeConfig {
    /// Repositories taken from each search engine before the union. The
    /// paper uses 40 against all of GitHub; the default scales that to the
    /// synthetic corpus (documented in DESIGN.md).
    pub top_k_repos: usize,
    /// Execution fuel per run (the deterministic 30-second watchdog).
    pub fuel: u64,
    /// DNF cover parameters (paper: k = 3, θ = 0.3).
    pub cover: CoverParams,
    /// Mutation configuration for negative generation.
    pub mutation: MutationConfig,
    /// Worker threads for the candidate × example trace-collection loop.
    /// Defaults to the machine's available parallelism. `1` takes the exact
    /// serial code path (no threads); any other count produces bit-identical
    /// sessions — traces, rankings, fuel accounting, and figures do not
    /// depend on this knob.
    pub workers: usize,
}

impl Default for AutoTypeConfig {
    fn default() -> Self {
        AutoTypeConfig {
            top_k_repos: 8,
            fuel: 300_000,
            cover: CoverParams::default(),
            mutation: MutationConfig::default(),
            workers: autotype_exec::default_workers(),
        }
    }
}

/// How negative examples are produced (the Figure 10(c) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegativeMode {
    /// The paper's S1→S2→S3 mutation hierarchy (Algorithm 2).
    Hierarchy,
    /// Random strings only.
    RandomOnly,
    /// No negatives: rank by how many positives share the same path.
    None,
}

/// A ranked, synthesized type-detection function.
#[derive(Debug, Clone)]
pub struct RankedFunction {
    /// Repository id in the corpus.
    pub repo: usize,
    /// Module (file) name inside the repository.
    pub file: String,
    /// How the function is invoked.
    pub entry: EntryPoint,
    /// Display label `file.entry`.
    pub label: String,
    /// Positive coverage (primary ranking score).
    pub score: f64,
    /// Negative coverage (tie-breaker).
    pub neg_fraction: f64,
    /// The synthesized validator (None for KW/LR rankings).
    pub validator: Option<SynthesizedValidator>,
    /// Human-readable concise DNF.
    pub explanation: String,
    /// Ground-truth intent of the file (the human judge `I(F)`).
    pub intent: Option<&'static str>,
    /// Ground-truth quality label.
    pub quality: Quality,
}

/// The engine: corpus + search indexes + package index + execution pool.
pub struct AutoType {
    corpus: Corpus,
    github: SearchEngine,
    bing: SearchEngine,
    packages: PackageIndex,
    /// The trace-collection pool, shared by every session of this engine
    /// (evaluation drivers that loop over many types reuse it for free).
    pool: ExecPool,
    pub config: AutoTypeConfig,
}

/// One candidate discovered during a session.
struct SessionCandidate {
    repo: usize,
    file: String,
    candidate: Candidate,
}

/// A synthesis session: retrieved repositories, discovered candidates,
/// their traces over `P ∪ N`, and everything needed to rank and replay.
pub struct Session<'a> {
    engine: &'a AutoType,
    pub keyword: String,
    pub positives: Vec<String>,
    pub negatives: Vec<String>,
    /// Which mutation strategy produced the accepted negatives.
    pub strategy: Option<Strategy>,
    candidates: Vec<SessionCandidate>,
    traces: Vec<FunctionTraces>,
    documents: Vec<String>,
    executors: Vec<(usize, Executor)>,
    /// Total fuel consumed by all runs (the Figure 14 cost measure).
    pub fuel_spent: u64,
    /// pip-install rounds that were needed.
    pub installs: usize,
}

/// Map a corpus to the per-repository search `Document` collection the two
/// engines index (name / description / README / code text, weighted
/// differently per engine).
pub fn corpus_documents(corpus: &Corpus) -> Vec<Document> {
    corpus
        .repositories
        .iter()
        .map(|r| Document {
            id: r.id,
            fields: vec![
                (Field::Name, r.name.clone()),
                (Field::Description, r.description.clone()),
                (Field::Readme, r.readme.clone()),
                (Field::Code, r.code_text()),
            ],
        })
        .collect()
}

impl AutoType {
    pub fn new(corpus: Corpus, config: AutoTypeConfig) -> AutoType {
        let documents = corpus_documents(&corpus);
        // The pool is built first so corpus tokenization / index
        // construction — embarrassingly parallel over repositories — also
        // fans out across it.
        let pool = ExecPool::new(config.workers);
        let github = SearchEngine::github_with_pool(&documents, &pool);
        let bing = SearchEngine::bing_with_pool(&documents, &pool);
        let mut packages = PackageIndex::new();
        for (name, source) in &corpus.packages {
            packages.insert(name, source);
        }
        AutoType {
            corpus,
            github,
            bing,
            packages,
            pool,
            config,
        }
    }

    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// Worker count of the trace-collection pool (1 = serial path).
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The engine's shared execution pool — evaluation drivers batch
    /// column-detection jobs through it (see `detect_by_values_batched`).
    pub fn pool(&self) -> &ExecPool {
        &self.pool
    }

    /// Keyword retrieval: union of top-k from both engines (§4.1).
    pub fn retrieve(&self, keyword: &str) -> Vec<usize> {
        union_top_k(
            &[&self.github, &self.bing],
            keyword,
            self.config.top_k_repos,
        )
    }

    /// Build a synthesis session for a target type.
    ///
    /// Returns `None` when retrieval produced no candidate functions at
    /// all (nothing to rank — the "no relevant code" outcome).
    pub fn session(
        &self,
        keyword: &str,
        positives: &[String],
        negative_mode: NegativeMode,
        rng: &mut StdRng,
    ) -> Option<Session<'_>> {
        let repos = self.retrieve(keyword);
        let mut candidates = Vec::new();
        let mut executors: Vec<(usize, Executor)> = Vec::new();
        let mut documents = Vec::new();
        let mut installs = 0;

        for &repo_id in &repos {
            let repo = self.corpus.repository(repo_id);
            let Ok(program) = repo.program() else {
                continue; // uncompilable repository
            };
            let exec = Executor::new(program, &self.packages, self.config.fuel);
            installs += exec.installs;
            let exec_idx = executors.len();
            executors.push((repo_id, exec));
            let program: &Program = executors[exec_idx].1.program();
            for (file_idx, file) in program.files.iter().enumerate() {
                // Only the repository's own files are analyzed, not
                // installed packages.
                if repo.files.iter().all(|f| f.name != file.name) {
                    continue;
                }
                let (cands, _) = analyze_module(file_idx as u32, &file.module);
                let source_text = repo
                    .files
                    .iter()
                    .find(|f| f.name == file.name)
                    .map(|f| f.source.clone())
                    .unwrap_or_default();
                for candidate in cands {
                    documents.push(format!(
                        "{} {} {} {} {}",
                        repo.name,
                        repo.description,
                        file.name,
                        candidate.entry.label(),
                        source_text,
                    ));
                    candidates.push(SessionCandidate {
                        repo: repo_id,
                        file: file.name.clone(),
                        candidate,
                    });
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }

        let mut session = Session {
            engine: self,
            keyword: keyword.to_string(),
            positives: positives.to_vec(),
            negatives: Vec::new(),
            strategy: None,
            candidates,
            traces: Vec::new(),
            documents,
            executors,
            fuel_spent: 0,
            installs,
        };
        session.generate_and_trace(negative_mode, rng);
        Some(session)
    }
}

impl<'a> Session<'a> {
    /// Run Algorithm 2: try mutation strategies in hierarchy order until
    /// some candidate separates P from N, then keep those traces.
    fn generate_and_trace(&mut self, mode: NegativeMode, rng: &mut StdRng) {
        let pos_traces = self.run_all(&self.positives.clone());
        match mode {
            NegativeMode::None => {
                self.traces = pos_traces
                    .into_iter()
                    .map(|(pos, pos_bb)| FunctionTraces {
                        pos,
                        pos_bb,
                        ..Default::default()
                    })
                    .collect();
            }
            NegativeMode::RandomOnly => {
                let per_pos = self.engine.config.mutation.per_positive;
                let negatives = random_negatives(self.positives.len() * per_pos, rng);
                let neg_traces = self.run_all(&negatives);
                self.negatives = negatives;
                self.traces = pos_traces
                    .into_iter()
                    .zip(neg_traces)
                    .map(|((pos, pos_bb), (neg, neg_bb))| FunctionTraces {
                        pos,
                        neg,
                        pos_bb,
                        neg_bb,
                    })
                    .collect();
            }
            NegativeMode::Hierarchy => {
                for strategy in Strategy::HIERARCHY {
                    let negatives = generate_negatives(
                        &self.positives,
                        strategy,
                        &self.engine.config.mutation,
                        rng,
                    );
                    let neg_traces = self.run_all(&negatives);
                    let traces: Vec<FunctionTraces> = pos_traces
                        .iter()
                        .cloned()
                        .zip(neg_traces)
                        .map(|((pos, pos_bb), (neg, neg_bb))| FunctionTraces {
                            pos,
                            neg,
                            pos_bb,
                            neg_bb,
                        })
                        .collect();
                    // R ≠ ∅ check: does any candidate separate?
                    let separable = traces.iter().any(|t| {
                        let (input, _) = t.cover_input();
                        autotype_dnf::best_k_concise_cover(&input, &self.engine.config.cover)
                            .is_some_and(|c| c.pos_fraction() >= 0.95 && c.neg_fraction() <= 0.4)
                    });
                    self.negatives = negatives;
                    self.traces = traces;
                    if separable {
                        self.strategy = Some(strategy);
                        return;
                    }
                }
                // All strategies exhausted: keep S3's traces, no strategy
                // marked as accepted.
                self.strategy = None;
            }
        }
    }

    /// Execute every candidate on every input; returns per-candidate
    /// (full trace set, black-box trace set) pairs aligned with
    /// `self.candidates`. The black-box view records only the summarized
    /// final result (or escaping exception) — the RET baseline's input.
    ///
    /// With `workers > 1` the work is sharded across the engine's
    /// [`ExecPool`]; the merge is index-ordered and the sharding respects
    /// executor ownership, so the output (including `fuel_spent` and
    /// `installs`) is bit-identical to the serial path for every worker
    /// count.
    #[allow(clippy::type_complexity)]
    fn run_all(
        &mut self,
        inputs: &[String],
    ) -> Vec<(Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>)> {
        if self.engine.pool.workers() == 1 {
            self.run_all_serial(inputs)
        } else {
            self.run_all_parallel(inputs)
        }
    }

    /// The reference implementation: one candidate after another on one
    /// thread. `workers = 1` runs exactly this code.
    #[allow(clippy::type_complexity)]
    fn run_all_serial(
        &mut self,
        inputs: &[String],
    ) -> Vec<(Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>)> {
        let mut out: Vec<(Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>)> =
            vec![(Vec::new(), Vec::new()); self.candidates.len()];
        for (ci, sc) in self.candidates.iter().enumerate() {
            let exec = self
                .executors
                .iter_mut()
                .find(|(repo, _)| *repo == sc.repo)
                .map(|(_, e)| e)
                .expect("executor for repository");
            for input in inputs {
                let outcome = exec.run(&sc.candidate, input, &self.engine.packages);
                self.fuel_spent += outcome.fuel_used;
                self.installs = self.installs.max(exec.installs);
                let mut bb = BTreeSet::new();
                match &outcome.result {
                    Ok(value) => {
                        bb.insert(Literal::Ret {
                            site: autotype_lang::SiteId::new(u32::MAX, 0),
                            value: autotype_lang::ValueSummary::of(value),
                        });
                    }
                    Err(e) => {
                        bb.insert(Literal::Exception {
                            kind: e.kind.clone(),
                        });
                    }
                }
                out[ci].0.push(featurize(&outcome.trace));
                out[ci].1.push(bb);
            }
        }
        out
    }

    /// Parallel trace collection with a deterministic merge.
    ///
    /// Sharding unit: candidates run against the *same* executor form one
    /// job, because dynamic package installs append files to the executor's
    /// program and file ids (hence every `SiteId` in every trace) depend on
    /// the install order — so a potentially-installing executor must evolve
    /// serially, in candidate order, exactly as in the serial loop.
    /// Executors that are provably install-closed cannot change at all, so
    /// their candidates are split into per-candidate jobs over cheap
    /// (`Arc`-shallow) executor clones for better load balancing.
    ///
    /// Merging is by candidate index; `fuel_spent` is a commutative sum and
    /// `installs` a monotone max over executors, so both match the serial
    /// accounting bit for bit.
    #[allow(clippy::type_complexity)]
    fn run_all_parallel(
        &mut self,
        inputs: &[String],
    ) -> Vec<(Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>)> {
        struct Job {
            slot: usize,
            exec: Executor,
            cands: Vec<usize>,
            /// Whether `exec` is the slot's real executor (returned after
            /// the job) rather than a disposable install-closed clone.
            owns_slot: bool,
        }
        struct JobOut {
            slot: usize,
            exec: Option<Executor>,
            fuel: u64,
            per_cand: Vec<(usize, (Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>))>,
        }

        // Group candidate indices by executor slot. Candidates are created
        // repo by repo, so each group is a contiguous, ordered slice of the
        // serial execution order.
        let executors = std::mem::take(&mut self.executors);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); executors.len()];
        for (ci, sc) in self.candidates.iter().enumerate() {
            let slot = executors
                .iter()
                .position(|(repo, _)| *repo == sc.repo)
                .expect("executor for repository");
            groups[slot].push(ci);
        }

        let packages = &self.engine.packages;
        let mut slots: Vec<(usize, Option<Executor>)> = Vec::with_capacity(executors.len());
        let mut jobs: Vec<Job> = Vec::new();
        for (slot, ((repo, exec), cands)) in executors.into_iter().zip(groups).enumerate() {
            if cands.is_empty() {
                slots.push((repo, Some(exec)));
            } else if exec.install_closed(packages) {
                for ci in cands {
                    jobs.push(Job {
                        slot,
                        exec: exec.clone(),
                        cands: vec![ci],
                        owns_slot: false,
                    });
                }
                slots.push((repo, Some(exec)));
            } else {
                jobs.push(Job {
                    slot,
                    exec,
                    cands,
                    owns_slot: true,
                });
                slots.push((repo, None));
            }
        }
        // Longest-processing-time-first: start the biggest jobs early so no
        // worker is left holding a large group at the tail. Stable, so ties
        // keep their discovery order (merge order is index-based anyway).
        jobs.sort_by_key(|j| std::cmp::Reverse(j.cands.len()));

        let candidates = &self.candidates;
        let results = self.engine.pool.run_ordered(jobs, |_, job| {
            let Job {
                slot,
                mut exec,
                cands,
                owns_slot,
            } = job;
            let mut fuel = 0u64;
            let mut per_cand = Vec::with_capacity(cands.len());
            for ci in cands {
                let sc = &candidates[ci];
                let mut full = Vec::with_capacity(inputs.len());
                let mut bbs = Vec::with_capacity(inputs.len());
                for input in inputs {
                    let outcome = exec.run(&sc.candidate, input, packages);
                    fuel += outcome.fuel_used;
                    let mut bb = BTreeSet::new();
                    match &outcome.result {
                        Ok(value) => {
                            bb.insert(Literal::Ret {
                                site: autotype_lang::SiteId::new(u32::MAX, 0),
                                value: autotype_lang::ValueSummary::of(value),
                            });
                        }
                        Err(e) => {
                            bb.insert(Literal::Exception {
                                kind: e.kind.clone(),
                            });
                        }
                    }
                    full.push(featurize(&outcome.trace));
                    bbs.push(bb);
                }
                per_cand.push((ci, (full, bbs)));
            }
            JobOut {
                slot,
                exec: owns_slot.then_some(exec),
                fuel,
                per_cand,
            }
        });

        let mut out: Vec<(Vec<BTreeSet<Literal>>, Vec<BTreeSet<Literal>>)> =
            vec![(Vec::new(), Vec::new()); self.candidates.len()];
        for result in results {
            self.fuel_spent += result.fuel;
            if let Some(exec) = result.exec {
                slots[result.slot].1 = Some(exec);
            }
            for (ci, pair) in result.per_cand {
                out[ci] = pair;
            }
        }
        self.executors = slots
            .into_iter()
            .map(|(repo, exec)| (repo, exec.expect("every executor slot restored")))
            .collect();
        for (_, exec) in &self.executors {
            self.installs = self.installs.max(exec.installs);
        }
        out
    }

    /// Number of discovered candidate functions.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Rank candidates with a method and synthesize validators.
    pub fn rank(&mut self, method: Method) -> Vec<RankedFunction> {
        // The no-negatives ablation: rank by the largest group of positives
        // sharing an identical trace.
        if self.negatives.is_empty() {
            return self.rank_without_negatives();
        }
        let rank_inputs: Vec<RankCandidate> = self
            .candidates
            .iter()
            .enumerate()
            .map(|(id, _)| RankCandidate {
                id,
                traces: self.traces[id].clone(),
                document: self.documents[id].clone(),
            })
            .collect();
        let ranked = rank_methods(
            method,
            &rank_inputs,
            &self.keyword,
            &self.engine.config.cover,
        );
        ranked
            .into_iter()
            .map(|r| {
                let sc = &self.candidates[r.id];
                let repo = self.engine.corpus.repository(sc.repo);
                let validator = r
                    .dnf
                    .as_ref()
                    .map(|cover| SynthesizedValidator::from_cover(cover, &r.literals));
                let explanation = r
                    .dnf
                    .as_ref()
                    .map(|cover| explain_cover(cover, &r.literals))
                    .unwrap_or_default();
                RankedFunction {
                    repo: sc.repo,
                    file: sc.file.clone(),
                    entry: sc.candidate.entry.clone(),
                    label: format!("{}/{}.{}", repo.name, sc.file, sc.candidate.entry.label()),
                    score: r.score,
                    neg_fraction: r.neg_fraction,
                    validator,
                    explanation,
                    intent: repo.intent_of(&sc.file),
                    quality: repo.quality_of(&sc.file).unwrap_or(Quality::Unrelated),
                }
            })
            .collect()
    }

    fn rank_without_negatives(&self) -> Vec<RankedFunction> {
        let mut scored: Vec<(usize, f64)> = self
            .traces
            .iter()
            .enumerate()
            .map(|(id, t)| {
                let mut counts: std::collections::HashMap<&BTreeSet<Literal>, usize> =
                    std::collections::HashMap::new();
                for trace in &t.pos {
                    *counts.entry(trace).or_default() += 1;
                }
                let max_share = counts.values().copied().max().unwrap_or(0);
                (id, max_share as f64 / t.pos.len().max(1) as f64)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
            .into_iter()
            .map(|(id, score)| {
                let sc = &self.candidates[id];
                let repo = self.engine.corpus.repository(sc.repo);
                RankedFunction {
                    repo: sc.repo,
                    file: sc.file.clone(),
                    entry: sc.candidate.entry.clone(),
                    label: format!("{}/{}.{}", repo.name, sc.file, sc.candidate.entry.label()),
                    score,
                    neg_fraction: 0.0,
                    validator: None,
                    explanation: String::new(),
                    intent: repo.intent_of(&sc.file),
                    quality: repo.quality_of(&sc.file).unwrap_or(Quality::Unrelated),
                }
            })
            .collect()
    }

    /// Execute a ranked function's synthesized validator on a fresh input
    /// (Algorithm 3: run, trace, check `∧T(s) → DNF-E`).
    pub fn validate(&mut self, function: &RankedFunction, input: &str) -> bool {
        let Some(validator) = &function.validator else {
            return false;
        };
        let Some(sc_idx) = self.candidates.iter().position(|sc| {
            sc.repo == function.repo
                && sc.file == function.file
                && sc.candidate.entry == function.entry
        }) else {
            return false;
        };
        let sc_repo = self.candidates[sc_idx].repo;
        let candidate = self.candidates[sc_idx].candidate.clone();
        let exec = self
            .executors
            .iter_mut()
            .find(|(repo, _)| *repo == sc_repo)
            .map(|(_, e)| e)
            .expect("executor");
        let (trace, fuel_used) = probe_trace(exec, &candidate, input, &self.engine.packages);
        self.fuel_spent += fuel_used;
        validator.accepts(&trace)
    }

    /// Detach a thread-safe batch handle for a ranked function's validator,
    /// for scoring whole columns of values concurrently (§9.1's batched
    /// detection path). Returns `None` when the function has no synthesized
    /// validator or no longer resolves to a session candidate — exactly the
    /// cases where [`validate`](Session::validate) answers `false` for every
    /// input, so callers can simply skip such functions.
    ///
    /// The handle snapshots the candidate's executor at call time; fold its
    /// fuel accounting back with [`absorb_batch`](Session::absorb_batch)
    /// when the batch is done.
    pub fn batch_validator(&self, function: &RankedFunction) -> Option<BatchValidator<'a>> {
        let validator = function.validator.clone()?;
        let sc = self.candidates.iter().find(|sc| {
            sc.repo == function.repo
                && sc.file == function.file
                && sc.candidate.entry == function.entry
        })?;
        let exec = self
            .executors
            .iter()
            .find(|(repo, _)| *repo == sc.repo)
            .map(|(_, e)| e.clone())
            .expect("executor");
        Some(BatchValidator {
            packages: &self.engine.packages,
            candidate: sc.candidate.clone(),
            exec,
            validator,
            fuel: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Fold a finished batch handle's fuel accounting back into the
    /// session's Figure 14 cost measure.
    pub fn absorb_batch(&mut self, batch: BatchValidator<'_>) {
        self.fuel_spent += batch.fuel.into_inner();
    }

    /// Export a ranked function's synthesized validator as a portable
    /// detector [`Pack`] — the offline artifact of the offline-synthesis /
    /// online-serving split. The pack snapshots the DNF-E, the candidate's
    /// entry point, the executor's complete program source (in file-id
    /// order, so every trace `SiteId` resolves identically at load time),
    /// and the pip-index slice for dynamic installs, plus ranking metadata
    /// and provenance.
    ///
    /// Returns `None` for functions without a synthesized validator (KW/LR
    /// rankings) or whose candidate no longer resolves — the same cases
    /// where [`validate`](Session::validate) answers `false` for every
    /// input. A rehydrated pack validator's verdicts are bit-identical to
    /// [`batch_validator`](Session::batch_validator)'s.
    pub fn export_pack(
        &self,
        function: &RankedFunction,
        slug: &str,
        method: Method,
    ) -> Option<Pack> {
        let validator = function.validator.as_ref()?;
        let sc = self.candidates.iter().find(|sc| {
            sc.repo == function.repo
                && sc.file == function.file
                && sc.candidate.entry == function.entry
        })?;
        let (_, exec) = self.executors.iter().find(|(repo, _)| *repo == sc.repo)?;
        let repo = self.engine.corpus.repository(sc.repo);
        // Snapshot every program file's source in file-id order. Each file
        // is either one of the repository's own files or an installed
        // package; a file satisfying neither would mean the snapshot cannot
        // be reproduced, so refuse to export rather than emit a broken pack.
        let mut files = Vec::with_capacity(exec.program().files.len());
        for file in &exec.program().files {
            let source = repo
                .files
                .iter()
                .find(|f| f.name == file.name)
                .map(|f| f.source.clone())
                .or_else(|| self.engine.packages.get(&file.name).map(str::to_string))?;
            files.push((file.name.clone(), source));
        }
        Some(Pack {
            slug: slug.to_string(),
            keyword: self.keyword.clone(),
            label: function.label.clone(),
            repo_name: repo.name.clone(),
            file: function.file.clone(),
            strategy: self.strategy.map(|s| s.to_string()).unwrap_or_default(),
            method: method.name().to_string(),
            score: function.score,
            neg_fraction: function.neg_fraction,
            explanation: function.explanation.clone(),
            fuel: self.engine.config.fuel,
            installs: exec.installs as u64,
            candidate_file: sc.candidate.file,
            entry: sc.candidate.entry.clone(),
            files,
            packages: self
                .engine
                .packages
                .iter()
                .map(|(n, s)| (n.to_string(), s.to_string()))
                .collect(),
            dnf_e: validator.dnf_e.clone(),
        })
    }

    /// [`export_pack`](Session::export_pack) straight to disk.
    pub fn save_pack(
        &self,
        function: &RankedFunction,
        slug: &str,
        method: Method,
        path: &std::path::Path,
    ) -> Result<Pack, PackError> {
        let pack = self.export_pack(function, slug, method).ok_or_else(|| {
            PackError::Malformed(format!(
                "{}: no synthesized validator to export",
                function.label
            ))
        })?;
        pack.save(path)?;
        Ok(pack)
    }

    /// Run a ranked function directly and report whether it *accepted* the
    /// input (completed without an exception and did not return `False`) —
    /// the acceptance notion used to unit-test functions that were ranked
    /// without a synthesized DNF (the KW/LR baselines).
    pub fn executes_ok(&mut self, function: &RankedFunction, input: &str) -> bool {
        let Some(sc_idx) = self.candidates.iter().position(|sc| {
            sc.repo == function.repo
                && sc.file == function.file
                && sc.candidate.entry == function.entry
        }) else {
            return false;
        };
        let sc_repo = self.candidates[sc_idx].repo;
        let candidate = self.candidates[sc_idx].candidate.clone();
        let exec = self
            .executors
            .iter_mut()
            .find(|(repo, _)| *repo == sc_repo)
            .map(|(_, e)| e)
            .expect("executor");
        let outcome = exec.run(&candidate, input, &self.engine.packages);
        self.fuel_spent += outcome.fuel_used;
        match &outcome.result {
            Ok(autotype_lang::Value::Bool(false)) => false,
            Ok(_) => true,
            Err(_) => false,
        }
    }

    /// Mine semantic transformations from a ranked function over the
    /// session's positive examples (§7.1).
    pub fn transformations(&mut self, function: &RankedFunction) -> Vec<Transformation> {
        let Some(sc_idx) = self.candidates.iter().position(|sc| {
            sc.repo == function.repo
                && sc.file == function.file
                && sc.candidate.entry == function.entry
        }) else {
            return Vec::new();
        };
        let sc_repo = self.candidates[sc_idx].repo;
        let candidate = self.candidates[sc_idx].candidate.clone();
        let positives = self.positives.clone();
        let exec = self
            .executors
            .iter_mut()
            .find(|(repo, _)| *repo == sc_repo)
            .map(|(_, e)| e)
            .expect("executor");
        let harvests: Vec<Vec<(String, String)>> = positives
            .iter()
            .map(|p| {
                let outcome = exec.run(&candidate, p, &self.engine.packages);
                self.fuel_spent += outcome.fuel_used;
                outcome.harvest
            })
            .collect();
        harvest_transformations(&harvests, 0.5, true)
    }
}

/// A thread-safe, detached handle for running one ranked function's
/// synthesized validator over many inputs concurrently — the unit the
/// batched column-detection path fans out across the exec pool.
///
/// Every [`accepts`](BatchValidator::accepts) call runs against a fresh
/// (Arc-shallow) clone of the executor snapshot taken at
/// [`Session::batch_validator`] time, so each call is a pure function of
/// its input: verdicts are independent of call order and of how calls are
/// scheduled across worker threads, which is what makes batched detection
/// bit-identical at every worker count. Dynamic package installs triggered
/// by a probe happen in the per-call clone and are discarded, so the
/// snapshot never drifts mid-batch. Fuel is accumulated atomically (a
/// commutative sum, deterministic under any schedule).
pub struct BatchValidator<'a> {
    packages: &'a PackageIndex,
    candidate: Candidate,
    exec: Executor,
    validator: SynthesizedValidator,
    fuel: std::sync::atomic::AtomicU64,
}

impl BatchValidator<'_> {
    /// Algorithm 3 on one input: run the candidate, trace, check
    /// `∧T(s) → DNF-E`.
    pub fn accepts(&self, input: &str) -> bool {
        let mut exec = self.exec.clone();
        let (trace, fuel_used) = probe_trace(&mut exec, &self.candidate, input, self.packages);
        self.fuel
            .fetch_add(fuel_used, std::sync::atomic::Ordering::Relaxed);
        self.validator.accepts(&trace)
    }

    /// Total fuel burned by all [`accepts`](BatchValidator::accepts) calls
    /// so far.
    pub fn fuel_spent(&self) -> u64 {
        self.fuel.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_corpus::{build_corpus, CorpusConfig};
    use autotype_typesys::by_slug;
    use rand::SeedableRng;

    fn engine() -> AutoType {
        AutoType::new(
            build_corpus(&CorpusConfig::default()),
            AutoTypeConfig::default(),
        )
    }

    fn positives(slug: &str, n: usize, seed: u64) -> Vec<String> {
        let ty = by_slug(slug).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        ty.examples(&mut rng, n)
    }

    #[test]
    fn credit_card_pipeline_end_to_end() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(42);
        let pos = positives("creditcard", 20, 1);
        let mut session = engine
            .session("credit card", &pos, NegativeMode::Hierarchy, &mut rng)
            .expect("session");
        // Checksum types separate already at S1 (§6).
        assert_eq!(session.strategy, Some(Strategy::S1));
        let ranked = session.rank(Method::DnfS);
        assert!(!ranked.is_empty());
        let top = &ranked[0];
        assert_eq!(
            top.intent,
            Some("creditcard"),
            "top-1 must be relevant: {}",
            top.label
        );
        assert!(top.score > 0.9, "top-1 score {}", top.score);
        // The synthesized validator detects fresh positives and rejects
        // corrupted ones.
        let fresh = positives("creditcard", 5, 77);
        for card in &fresh {
            assert!(session.validate(&top.clone(), card), "rejects {card}");
        }
        assert!(!session.validate(&top.clone(), "4147202263232836"));
        assert!(!session.validate(&top.clone(), "not a card"));
    }

    #[test]
    fn ipv6_escalates_to_s2() {
        // Example 6 of the paper: S1 keeps IPv6 valid; S2 breaks the colon
        // structure and is the accepted strategy.
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(11);
        let pos = positives("ipv6", 20, 2);
        let mut session = engine
            .session("IPv6", &pos, NegativeMode::Hierarchy, &mut rng)
            .expect("session");
        assert_eq!(session.strategy, Some(Strategy::S2));
        let ranked = session.rank(Method::DnfS);
        assert_eq!(ranked[0].intent, Some("ipv6"), "{}", ranked[0].label);
    }

    #[test]
    fn transformations_include_card_brand() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(4);
        // Visa + Mastercard + Amex mix so the brand column has entropy.
        let pos = positives("creditcard", 20, 3);
        let mut session = engine
            .session("credit card", &pos, NegativeMode::Hierarchy, &mut rng)
            .unwrap();
        let ranked = session.rank(Method::DnfS);
        let class_fn = ranked
            .iter()
            .find(|f| f.label.contains("CreditCard"))
            .cloned();
        if let Some(f) = class_fn {
            let transforms = session.transformations(&f);
            assert!(
                transforms.iter().any(|t| t.name.contains("card_brand")),
                "harvested: {:?}",
                transforms.iter().map(|t| &t.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn keyword_retrieval_finds_type_repositories() {
        let engine = engine();
        let repos = engine.retrieve("ISBN");
        assert!(repos
            .iter()
            .any(|&r| engine.corpus.repository(r).name.starts_with("isbn")));
    }

    #[test]
    fn no_code_types_yield_no_relevant_functions() {
        let engine = engine();
        let mut rng = StdRng::seed_from_u64(8);
        let pos = positives("lcc", 10, 5);
        // Retrieval may hit distractor repos; ranking must not produce a
        // relevant (intent-matching) top function.
        if let Some(mut session) = engine.session(
            "Library of Congress Classification",
            &pos,
            NegativeMode::Hierarchy,
            &mut rng,
        ) {
            let ranked = session.rank(Method::DnfS);
            assert!(ranked.iter().all(|f| f.intent != Some("lcc")));
        }
    }
}

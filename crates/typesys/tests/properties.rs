//! Property-based tests over the checksum library and the full benchmark
//! registry: check-digit computations must round-trip, and single-digit
//! corruption must always be caught (the error-detection guarantee the
//! paper's credit-card/ISBN narrative relies on).

use autotype_typesys::checksums as ck;
use autotype_typesys::{registry, Coverage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn digit_string(len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..10, len)
        .prop_map(|ds| ds.into_iter().map(|d| char::from(b'0' + d)).collect())
}

proptest! {
    /// Luhn check-digit round trip + single-digit error detection.
    #[test]
    fn luhn_roundtrip_and_single_digit_errors(body in digit_string(15), pos in 0usize..16, delta in 1u8..10) {
        let check = ck::luhn_check_digit(&body);
        let full = format!("{body}{check}");
        prop_assert!(ck::luhn_valid(&full));
        // Corrupt exactly one digit: Luhn must reject.
        let mut bytes = full.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = b'0' + ((bytes[i] - b'0') + delta) % 10;
        let corrupted = String::from_utf8(bytes).unwrap();
        if corrupted != full {
            prop_assert!(!ck::luhn_valid(&corrupted), "{corrupted} passed after corruption");
        }
    }

    /// GS1 check-digit round trip + single-digit error detection.
    #[test]
    fn gs1_roundtrip_and_single_digit_errors(body in digit_string(12), pos in 0usize..13, delta in 1u8..10) {
        let check = ck::gs1_check_digit(&body);
        let full = format!("{body}{check}");
        prop_assert!(ck::gs1_valid(&full));
        let mut bytes = full.clone().into_bytes();
        let i = pos % bytes.len();
        bytes[i] = b'0' + ((bytes[i] - b'0') + delta) % 10;
        let corrupted = String::from_utf8(bytes).unwrap();
        if corrupted != full {
            prop_assert!(!ck::gs1_valid(&corrupted));
        }
    }

    /// ISBN-10 check character round trip.
    #[test]
    fn isbn10_roundtrip(body in digit_string(9)) {
        let check = ck::isbn10_check_char(&body);
        let full = format!("{body}{check}");
        prop_assert!(ck::isbn10_valid(&full));
    }

    /// ISSN check character round trip.
    #[test]
    fn issn_roundtrip(body in digit_string(7)) {
        let check = ck::issn_check_char(&body);
        let full = format!("{body}{check}");
        prop_assert!(ck::issn_valid(&full));
    }

    /// mod 11-2 (ORCID/ISNI) round trip.
    #[test]
    fn mod11_2_roundtrip(body in digit_string(15)) {
        let check = ck::mod11_2_check_char(&body).unwrap();
        let full = format!("{body}{check}");
        let (b, c) = full.split_at(15);
        prop_assert_eq!(ck::mod11_2_check_char(b), c.chars().next());
    }
}

/// Registry-wide fuzz: for every benchmark type, generated examples always
/// validate — across many seeds, not just the fixed test seed.
#[test]
fn registry_generators_validate_across_seeds() {
    for seed in [1u64, 999, 123456, 0xDEADBEEF] {
        let mut rng = StdRng::seed_from_u64(seed);
        for ty in registry() {
            for _ in 0..5 {
                let example = (ty.generate)(&mut rng);
                assert!(
                    (ty.validate)(&example),
                    "{} (seed {seed}): invalid example {example:?}",
                    ty.name
                );
            }
        }
    }
}

/// S1-style digit corruption of checksum-type examples is almost always
/// invalid — the property Algorithm 2's first rung depends on.
#[test]
fn digit_corruption_breaks_checksum_types() {
    let mut rng = StdRng::seed_from_u64(7);
    for slug in ["creditcard", "isbn", "issn", "aba", "imo", "nhs"] {
        let ty = registry().iter().find(|t| t.slug == slug).unwrap();
        assert_eq!(ty.coverage, Coverage::Covered);
        let mut broken = 0;
        let mut total = 0;
        for _ in 0..40 {
            let example = (ty.generate)(&mut rng);
            // Increment the first digit (mod 10).
            let Some(pos) = example.find(|c: char| c.is_ascii_digit()) else {
                continue;
            };
            let mut bytes = example.clone().into_bytes();
            bytes[pos] = b'0' + ((bytes[pos] - b'0') + 1) % 10;
            let corrupted = String::from_utf8(bytes).unwrap();
            total += 1;
            if !(ty.validate)(&corrupted) {
                broken += 1;
            }
        }
        assert!(
            broken * 10 >= total * 9,
            "{slug}: only {broken}/{total} single-digit corruptions detected"
        );
    }
}

//! Finance & commerce semantic types: 16 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "SEDOL",
            slug: "sedol",
            domain: Domain::Finance,
            keywords: &[
                "SEDOL",
                "stock exchange daily official list",
                "SEDOL number",
            ],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::sedol_valid,
            generate: g_sedol,
        },
        Spec {
            name: "UPC barcode",
            slug: "upc",
            domain: Domain::Finance,
            keywords: &["UPC barcode", "UPC code", "universal product code"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_upc,
            generate: g_upc,
        },
        Spec {
            name: "CUSIP number",
            slug: "cusip",
            domain: Domain::Finance,
            keywords: &["CUSIP", "CUSIP securities"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::cusip_valid,
            generate: g_cusip,
        },
        Spec {
            name: "stock ticker",
            slug: "ticker",
            domain: Domain::Finance,
            keywords: &["stock ticker", "stock symbol"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_ticker,
            generate: g_ticker,
        },
        Spec {
            name: "ABA routing number",
            slug: "aba",
            domain: Domain::Finance,
            keywords: &["ABA routing number", "bank routing number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::aba_valid,
            generate: g_aba,
        },
        Spec {
            name: "EAN barcode",
            slug: "ean",
            domain: Domain::Finance,
            keywords: &["EAN code", "EAN barcode", "european article number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_ean,
            generate: g_ean,
        },
        Spec {
            name: "ASIN book number",
            slug: "asin",
            domain: Domain::Finance,
            keywords: &["ASIN", "amazon standard identification number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_asin,
            generate: g_asin,
        },
        Spec {
            name: "IBAN number",
            slug: "iban",
            domain: Domain::Finance,
            keywords: &["IBAN number", "international bank account number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: ck::iban_valid,
            generate: g_iban,
        },
        Spec {
            name: "bitcoin address",
            slug: "bitcoin",
            domain: Domain::Finance,
            keywords: &["bitcoin address", "BTC wallet"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_bitcoin,
            generate: g_bitcoin,
        },
        Spec {
            name: "EDIFACT message",
            slug: "edifact",
            domain: Domain::Finance,
            keywords: &["EDIFACT message", "UN EDIFACT"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_edifact,
            generate: g_edifact,
        },
        Spec {
            name: "FIX message",
            slug: "fix",
            domain: Domain::Finance,
            keywords: &["FIX message", "FIX protocol"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_fix,
            generate: g_fix,
        },
        Spec {
            name: "GTIN number",
            slug: "gtin",
            domain: Domain::Finance,
            keywords: &["GTIN", "global trade item number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_gtin,
            generate: g_gtin,
        },
        Spec {
            name: "credit card number",
            slug: "creditcard",
            domain: Domain::Finance,
            keywords: &["credit card", "credit card number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_creditcard,
            generate: g_creditcard,
        },
        Spec {
            name: "currency amount",
            slug: "currency",
            domain: Domain::Finance,
            keywords: &["currency", "money amount"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_currency,
            generate: g_currency,
        },
        Spec {
            name: "SWIFT message",
            slug: "swift",
            domain: Domain::Finance,
            keywords: &[
                "SWIFT message",
                "Society for Worldwide Interbank Financial Telecommunication",
                "SWIFT",
            ],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_swift,
            generate: g_swift,
        },
        Spec {
            name: "NATO stock number",
            slug: "nato",
            domain: Domain::Finance,
            keywords: &["NATO stock number", "NSN"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_nato,
            generate: g_nato,
        },
    ]
}

fn g_sedol(rng: &mut StdRng) -> String {
    // First six characters (consonant letters or digits), then check digit.
    loop {
        let body = gen::from_alphabet(rng, "0123456789BCDFGHJKLMNPQRSTVWXYZ", 6);
        if let Some(check) = ck::sedol_check_digit(&body) {
            return format!("{body}{check}");
        }
    }
}

fn v_upc(s: &str) -> bool {
    s.len() == 12 && ck::gs1_valid(s)
}

fn g_upc(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 11);
    format!("{body}{}", ck::gs1_check_digit(&body))
}

fn g_cusip(rng: &mut StdRng) -> String {
    let body = format!(
        "{}{}",
        gen::digits(rng, 3),
        gen::from_alphabet(rng, "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ", 5)
    );
    let mut sum = 0u32;
    for (i, c) in body.chars().enumerate() {
        let mut v = match c {
            '0'..='9' => c as u32 - '0' as u32,
            _ => c as u32 - 'A' as u32 + 10,
        };
        if i % 2 == 1 {
            v *= 2;
        }
        sum += v / 10 + v % 10;
    }
    format!("{body}{}", (10 - sum % 10) % 10)
}

fn v_ticker(s: &str) -> bool {
    let (symbol, suffix) = match s.split_once('.') {
        Some((sym, suf)) => (sym, Some(suf)),
        None => (s, None),
    };
    let sym_ok = (1..=5).contains(&symbol.len()) && symbol.bytes().all(|b| b.is_ascii_uppercase());
    let suf_ok = match suffix {
        None => true,
        Some(x) => (1..=2).contains(&x.len()) && x.bytes().all(|b| b.is_ascii_uppercase()),
    };
    sym_ok && suf_ok
}

fn g_ticker(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.8) {
        gen::pick(rng, gen::TICKERS).to_string()
    } else {
        {
            let n = rng.gen_range(1..=5);
            gen::upper(rng, n)
        }
    }
}

fn g_aba(rng: &mut StdRng) -> String {
    // First two digits are a Federal Reserve district (00-12, 21-32, 61-72, 80).
    loop {
        let prefix = format!("{:02}", rng.gen_range(1..=12));
        let body = format!("{prefix}{}", gen::digits(rng, 6));
        let d: Vec<u32> = body.bytes().map(|b| (b - b'0') as u32).collect();
        let partial = 3 * (d[0] + d[3] + d[6]) + 7 * (d[1] + d[4] + d[7]) + (d[2] + d[5]);
        let check = (10 - partial % 10) % 10;
        let full = format!("{body}{check}");
        if ck::aba_valid(&full) {
            return full;
        }
    }
}

fn v_ean(s: &str) -> bool {
    (s.len() == 13 || s.len() == 8) && ck::gs1_valid(s)
}

fn g_ean(rng: &mut StdRng) -> String {
    let n = if rng.gen_bool(0.85) { 12 } else { 7 };
    let body = gen::digits(rng, n);
    format!("{body}{}", ck::gs1_check_digit(&body))
}

fn v_asin(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 10 {
        return false;
    }
    if b.starts_with(b"B0") {
        return b
            .iter()
            .all(|x| x.is_ascii_digit() || x.is_ascii_uppercase());
    }
    ck::isbn10_valid(s)
}

fn g_asin(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.7) {
        format!(
            "B0{}",
            gen::from_alphabet(rng, "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ", 8)
        )
    } else {
        let body = gen::digits(rng, 9);
        format!("{body}{}", ck::isbn10_check_char(&body))
    }
}

fn g_iban(rng: &mut StdRng) -> String {
    // (country, BBAN length, BBAN alphabet is digits for simplicity)
    const COUNTRIES: &[(&str, usize)] = &[
        ("DE", 18),
        ("FR", 23),
        ("GB", 18),
        ("ES", 20),
        ("IT", 23),
        ("NL", 14),
    ];
    let (country, len) = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
    // GB and NL both lead the BBAN with a four-letter bank code.
    let bban = if country == "GB" || country == "NL" {
        format!("{}{}", gen::upper(rng, 4), gen::digits(rng, len - 4))
    } else {
        gen::digits(rng, len)
    };
    // Compute the two check digits: remainder of BBAN || CC || "00".
    let rearranged = format!("{bban}{country}00");
    let rem = ck::mod97_remainder(&rearranged).expect("alphanumeric BBAN");
    let check = 98 - rem;
    format!("{country}{check:02}{bban}")
}

fn v_bitcoin(s: &str) -> bool {
    const BASE58: &str = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
    (26..=35).contains(&s.len())
        && (s.starts_with('1') || s.starts_with('3'))
        && s.chars().all(|c| BASE58.contains(c))
}

fn g_bitcoin(rng: &mut StdRng) -> String {
    const BASE58: &str = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";
    let prefix = if rng.gen_bool(0.5) { "1" } else { "3" };
    format!("{prefix}{}", {
        let n = rng.gen_range(25..=33);
        gen::from_alphabet(rng, BASE58, n)
    })
}

fn v_edifact(s: &str) -> bool {
    (s.starts_with("UNA") || s.starts_with("UNB+")) && s.contains('+') && s.ends_with('\'')
}

fn g_edifact(rng: &mut StdRng) -> String {
    format!(
        "UNB+UNOA:2+SENDER{}+RECEIVER{}+200101:1200+{}'",
        gen::digits(rng, 2),
        gen::digits(rng, 2),
        gen::digits(rng, 8)
    )
}

fn v_fix(s: &str) -> bool {
    if !s.starts_with("8=FIX.4.") && !s.starts_with("8=FIXT.1.") {
        return false;
    }
    let fields: Vec<&str> = s.split('|').filter(|f| !f.is_empty()).collect();
    fields.len() >= 4
        && fields.iter().all(|f| {
            f.split_once('=')
                .is_some_and(|(tag, _)| !tag.is_empty() && tag.bytes().all(|b| b.is_ascii_digit()))
        })
        && fields.iter().any(|f| f.starts_with("35="))
}

fn g_fix(rng: &mut StdRng) -> String {
    let msg_type = gen::pick(rng, &["D", "8", "A", "0", "G"]);
    format!(
        "8=FIX.4.2|9={}|35={msg_type}|49=SENDER|56=TARGET|34={}|10={:03}",
        gen::digits(rng, 3),
        gen::digits(rng, 3),
        rng.gen_range(0..256)
    )
}

fn v_gtin(s: &str) -> bool {
    s.len() == 14 && ck::gs1_valid(s)
}

fn g_gtin(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 13);
    format!("{body}{}", ck::gs1_check_digit(&body))
}

/// Credit card: Luhn-valid plus a known issuer prefix/length combination
/// (Visa, MasterCard, Amex, Discover — Figure 2 of the paper).
pub(crate) fn v_creditcard(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != ' ' && *c != '-').collect();
    if !compact.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let brand_ok = match compact.len() {
        13 => compact.starts_with('4'),
        15 => compact.starts_with("34") || compact.starts_with("37"),
        16 => {
            compact.starts_with('4')
                || (compact[..2]
                    .parse::<u32>()
                    .map(|p| (51..=55).contains(&p))
                    .unwrap_or(false))
                || compact.starts_with("6011")
                || compact.starts_with("65")
        }
        _ => false,
    };
    brand_ok && ck::luhn_valid(&compact)
}

pub(crate) fn g_creditcard(rng: &mut StdRng) -> String {
    let (prefix, len) = match rng.gen_range(0..4) {
        0 => ("4".to_string(), 16),
        1 => (format!("5{}", rng.gen_range(1..=5)), 16),
        2 => (if rng.gen_bool(0.5) { "34" } else { "37" }.to_string(), 15),
        _ => ("6011".to_string(), 16),
    };
    let body_len = len - prefix.len() - 1;
    let body = format!("{prefix}{}", gen::digits(rng, body_len));
    format!("{body}{}", ck::luhn_check_digit(&body))
}

fn v_currency(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    // Forms: "$1,234.56", "€12.50", "£5", "USD 25.00", "25.00 USD"
    let (code_or_symbol, number) = if let Some(stripped) = s.strip_prefix(['$', '€', '£', '¥'])
    {
        (true, stripped.trim_start())
    } else if s.len() > 4
        && s.is_ascii()
        && gen::CURRENCY_CODES.contains(&&s[..3])
        && s.as_bytes()[3] == b' '
    {
        (true, &s[4..])
    } else if s.len() > 4
        && s.is_ascii()
        && gen::CURRENCY_CODES.contains(&&s[s.len() - 3..])
        && s.as_bytes()[s.len() - 4] == b' '
    {
        (true, &s[..s.len() - 4])
    } else {
        (false, s)
    };
    if !code_or_symbol {
        return false;
    }
    v_money_number(number)
}

fn v_money_number(n: &str) -> bool {
    if n.is_empty() {
        return false;
    }
    let (int_part, frac) = match n.split_once('.') {
        Some((i, f)) => (i, Some(f)),
        None => (n, None),
    };
    if let Some(f) = frac {
        if f.len() != 2 || !f.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
    }
    // Integer part: digits with optional well-placed thousands separators.
    if int_part.is_empty() {
        return false;
    }
    if int_part.contains(',') {
        let groups: Vec<&str> = int_part.split(',').collect();
        if groups[0].is_empty() || groups[0].len() > 3 {
            return false;
        }
        groups[0].bytes().all(|b| b.is_ascii_digit())
            && groups[1..]
                .iter()
                .all(|g| g.len() == 3 && g.bytes().all(|b| b.is_ascii_digit()))
    } else {
        int_part.bytes().all(|b| b.is_ascii_digit())
    }
}

fn g_currency(rng: &mut StdRng) -> String {
    let amount = rng.gen_range(1..1_000_000);
    let cents = rng.gen_range(0..100);
    let with_thousands = |n: i64| -> String {
        let s = n.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    };
    match rng.gen_range(0..4) {
        0 => format!("${}.{cents:02}", with_thousands(amount)),
        1 => format!("€{}.{cents:02}", amount),
        2 => format!(
            "{} {}.{cents:02}",
            gen::pick(rng, gen::CURRENCY_CODES),
            amount
        ),
        _ => format!("£{}", with_thousands(amount)),
    }
}

fn v_swift(s: &str) -> bool {
    // MT-style block format: {1:F01<BIC12>...}{2:...}
    if !s.starts_with("{1:F01") {
        return false;
    }
    let Some(close) = s.find('}') else {
        return false;
    };
    let block1 = &s[4..close];
    block1.len() >= 12
        && block1[..8].bytes().all(|b| b.is_ascii_alphanumeric())
        && s[close..].starts_with("}{2:")
}

fn g_swift(rng: &mut StdRng) -> String {
    let bic = format!(
        "{}{}{}",
        gen::upper(rng, 4),
        gen::pick(rng, gen::COUNTRY_CODES_2),
        gen::upper(rng, 2)
    );
    let mt = gen::pick(rng, &["103", "202", "950", "940"]);
    format!(
        "{{1:F01{bic}AXXX{}}}{{2:I{mt}{bic}XXXXN}}{{4::20:{}:32A:200101USD{},00-}}",
        gen::digits(rng, 10),
        gen::digits(rng, 8),
        gen::digits(rng, 4),
    )
}

fn v_nato(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() == 4
        && parts[0].len() == 4
        && parts[1].len() == 2
        && parts[2].len() == 3
        && parts[3].len() == 4
        && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
}

fn g_nato(rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}-{}",
        gen::digits(rng, 4),
        gen::digits(rng, 2),
        gen::digits(rng, 3),
        gen::digits(rng, 4)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn creditcard_brands() {
        assert!(v_creditcard("4147202263232835")); // Visa 16
        assert!(v_creditcard("371449635398431")); // Amex 15
        assert!(v_creditcard("6011016011016011")); // Discover
        assert!(!v_creditcard("1234567812345670")); // Luhn ok but no brand
        assert!(!v_creditcard("4147202263232836")); // bad checksum
    }

    #[test]
    fn creditcard_accepts_separators() {
        assert!(v_creditcard("4147 2022 6323 2835"));
        assert!(v_creditcard("4147-2022-6323-2835"));
    }

    #[test]
    fn currency_forms() {
        assert!(v_currency("$1,234.56"));
        assert!(v_currency("USD 25.00"));
        assert!(v_currency("€12.50"));
        assert!(v_currency("£5"));
        assert!(v_currency("25.00 USD"));
        assert!(!v_currency("1,234.56")); // no symbol/code
        assert!(!v_currency("$12,34.56")); // bad grouping
        assert!(!v_currency("$1.2.3"));
    }

    #[test]
    fn iban_generator_round_trips() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let iban = g_iban(&mut rng);
            assert!(ck::iban_valid(&iban), "generated invalid IBAN {iban}");
        }
    }

    #[test]
    fn fix_message_shape() {
        assert!(v_fix("8=FIX.4.2|9=100|35=D|49=A|56=B|10=128"));
        assert!(!v_fix("9=100|35=D"));
        assert!(!v_fix("8=FIX.4.2|9=100|49=A")); // no 35 tag
    }

    #[test]
    fn ticker_shapes() {
        assert!(v_ticker("AAPL"));
        assert!(v_ticker("BRK.B"));
        assert!(!v_ticker("aapl"));
        assert!(!v_ticker("TOOLONG"));
    }

    #[test]
    fn swift_block_format() {
        let mut rng = StdRng::seed_from_u64(9);
        let msg = g_swift(&mut rng);
        assert!(v_swift(&msg), "{msg}");
        assert!(!v_swift("SWIFT is a programming language"));
    }
}

//! Personal-information semantic types: 13 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "phone number",
            slug: "phone",
            domain: Domain::Personal,
            keywords: &["phone number", "telephone number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_phone,
            generate: g_phone,
        },
        Spec {
            name: "email address",
            slug: "email",
            domain: Domain::Personal,
            keywords: &["email address", "email"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_email,
            generate: g_email,
        },
        Spec {
            name: "person name",
            slug: "personname",
            domain: Domain::Personal,
            keywords: &["person name", "people names"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_personname,
            generate: g_personname,
        },
        Spec {
            name: "mailing address",
            slug: "address",
            domain: Domain::Personal,
            keywords: &["mailing address", "street address"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_address,
            generate: g_address,
        },
        Spec {
            name: "Legal Entity Identifier",
            slug: "lei",
            domain: Domain::Personal,
            keywords: &["Legal Entity Identifier", "LEI code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::lei_valid,
            generate: g_lei,
        },
        Spec {
            name: "US Social Security Number",
            slug: "ssn",
            domain: Domain::Personal,
            keywords: &["SSN", "social security number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ssn,
            generate: g_ssn,
        },
        Spec {
            name: "Chinese Resident ID",
            slug: "chinaid",
            domain: Domain::Personal,
            keywords: &["Chinese Resident ID", "China identity number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_chinaid,
            generate: g_chinaid,
        },
        Spec {
            name: "Employer Identification Number",
            slug: "ein",
            domain: Domain::Personal,
            keywords: &["EIN", "employer identification number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ein,
            generate: g_ein,
        },
        Spec {
            name: "NHS number",
            slug: "nhs",
            domain: Domain::Personal,
            keywords: &["NHS number", "national health service number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::nhs_valid,
            generate: g_nhs,
        },
        Spec {
            name: "PubChem ID",
            slug: "pubchem",
            domain: Domain::Personal,
            keywords: &["PubChem ID", "PubChem CID"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_pubchem,
            generate: g_pubchem,
        },
        Spec {
            name: "Personal Identifiable Information",
            slug: "pii",
            domain: Domain::Personal,
            keywords: &["PII", "personal identifiable information"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_pii,
            generate: g_pii,
        },
        Spec {
            name: "National Provider Identifier",
            slug: "npi",
            domain: Domain::Personal,
            keywords: &["National Provider Identifier", "NPI number"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: ck::npi_valid,
            generate: g_npi,
        },
        Spec {
            name: "FEI identifier",
            slug: "fei",
            domain: Domain::Personal,
            keywords: &["FEI identifier", "FDA establishment identifier"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_fei,
            generate: g_fei,
        },
    ]
}

/// US phone numbers: `(206) 555-0123`, `206-555-0123`, `206.555.0123`,
/// `+1 206 555 0123`, or bare `2065550123`. Area code and exchange must not
/// start with 0 or 1.
pub(crate) fn v_phone(s: &str) -> bool {
    let mut t = s.trim();
    if let Some(rest) = t.strip_prefix("+1") {
        t = rest.trim_start();
    } else if let Some(rest) = t.strip_prefix("1-").or_else(|| t.strip_prefix("1 ")) {
        t = rest;
    }
    let digits: String = t.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() != 10 {
        return false;
    }
    // Only separators allowed around digits.
    if !t.chars().all(|c| c.is_ascii_digit() || " ()-.".contains(c)) {
        return false;
    }
    // NANP area codes start 2-9 (the paper's own example "(502) 107-2133"
    // has an exchange starting with 1, so only the area code is constrained).
    digits.as_bytes()[0] >= b'2'
}

pub(crate) fn g_phone(rng: &mut StdRng) -> String {
    let area = format!("{}{}", rng.gen_range(2..10), gen::digits(rng, 2));
    let exchange = format!("{}{}", rng.gen_range(2..10), gen::digits(rng, 2));
    let line = gen::digits(rng, 4);
    match rng.gen_range(0..4) {
        0 => format!("({area}) {exchange}-{line}"),
        1 => format!("{area}-{exchange}-{line}"),
        2 => format!("+1 {area} {exchange} {line}"),
        _ => format!("{area}.{exchange}.{line}"),
    }
}

pub(crate) fn v_email(s: &str) -> bool {
    let Some((local, domain)) = s.split_once('@') else {
        return false;
    };
    if local.is_empty() || local.len() > 64 || s.contains(' ') {
        return false;
    }
    if !local
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "._%+-".contains(c))
        || local.starts_with('.')
        || local.ends_with('.')
    {
        return false;
    }
    let labels: Vec<&str> = domain.split('.').collect();
    labels.len() >= 2
        && labels.iter().all(|l| {
            !l.is_empty()
                && l.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
                && !l.starts_with('-')
                && !l.ends_with('-')
        })
        && labels.last().unwrap().len() >= 2
        && labels
            .last()
            .unwrap()
            .chars()
            .all(|c| c.is_ascii_alphabetic())
}

pub(crate) fn g_email(rng: &mut StdRng) -> String {
    let first = gen::pick(rng, gen::FIRST_NAMES).to_lowercase();
    let last = gen::pick(rng, gen::LAST_NAMES).to_lowercase();
    let domain = gen::pick(rng, gen::EMAIL_DOMAINS);
    match rng.gen_range(0..3) {
        0 => format!("{first}.{last}@{domain}"),
        1 => format!("{first}{}@{domain}", rng.gen_range(1..99)),
        _ => format!("{}{last}@{domain}", &first[..1]),
    }
}

fn v_personname(s: &str) -> bool {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if !(2..=3).contains(&parts.len()) {
        return false;
    }
    parts.iter().all(|p| {
        let mut chars = p.chars();
        chars.next().is_some_and(|c| c.is_ascii_uppercase())
            && chars.all(|c| c.is_ascii_lowercase() || c == '.')
    })
}

fn g_personname(rng: &mut StdRng) -> String {
    let first = gen::pick(rng, gen::FIRST_NAMES);
    let last = gen::pick(rng, gen::LAST_NAMES);
    if rng.gen_bool(0.2) {
        format!("{first} {}. {last}", gen::upper(rng, 1))
    } else {
        format!("{first} {last}")
    }
}

/// US mailing address: `123 Main St, Springfield, IL 62704`.
pub(crate) fn v_address(s: &str) -> bool {
    let parts: Vec<&str> = s.split(',').map(|p| p.trim()).collect();
    if parts.len() < 3 {
        return false;
    }
    // First part: house number + street words + suffix.
    let street: Vec<&str> = parts[0].split_whitespace().collect();
    if street.len() < 3 {
        return false;
    }
    if !street[0].bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let suffix = street.last().unwrap().trim_end_matches('.');
    if !gen::STREET_SUFFIXES
        .iter()
        .any(|suf| suf.eq_ignore_ascii_case(suffix))
    {
        return false;
    }
    // Last part: state + zip.
    let tail: Vec<&str> = parts.last().unwrap().split_whitespace().collect();
    if tail.len() != 2 {
        return false;
    }
    gen::US_STATES.contains(&tail[0]) && crate::geo::v_zipcode(tail[1])
}

pub(crate) fn g_address(rng: &mut StdRng) -> String {
    let number = rng.gen_range(1..9999);
    let street = gen::pick(rng, gen::STREET_NAMES);
    let suffix = gen::pick(rng, gen::STREET_SUFFIXES);
    let city = gen::pick(rng, gen::CITIES);
    let state = gen::pick(rng, gen::US_STATES);
    format!(
        "{number} {street} {suffix}, {city}, {state} {}",
        crate::geo::g_zipcode(rng)
    )
}

fn g_lei(rng: &mut StdRng) -> String {
    // 4-char LOU prefix + 2 reserved zeros + 12 alphanumerics + 2 check digits.
    loop {
        let body = format!(
            "{}00{}",
            gen::digits(rng, 4),
            gen::from_alphabet(rng, "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", 12)
        );
        let rem = ck::mod97_remainder(&format!("{body}00")).expect("alnum");
        let check = 98 - rem;
        let full = format!("{body}{check:02}");
        if ck::lei_valid(&full) {
            return full;
        }
    }
}

fn v_ssn(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 || parts[0].len() != 3 || parts[1].len() != 2 || parts[2].len() != 4 {
        return false;
    }
    if !parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit())) {
        return false;
    }
    let area: u32 = parts[0].parse().unwrap();
    area != 0 && area != 666 && area < 900 && parts[1] != "00" && parts[2] != "0000"
}

fn g_ssn(rng: &mut StdRng) -> String {
    let area = loop {
        let a = rng.gen_range(1..900);
        if a != 666 {
            break a;
        }
    };
    format!(
        "{area:03}-{:02}-{:04}",
        rng.gen_range(1..100),
        rng.gen_range(1..10000)
    )
}

fn v_chinaid(s: &str) -> bool {
    if !ck::china_id_valid(s) {
        return false;
    }
    // Birth date must be plausible.
    let year: u32 = s[6..10].parse().unwrap_or(0);
    let month: u32 = s[10..12].parse().unwrap_or(0);
    let day: u32 = s[12..14].parse().unwrap_or(0);
    (1900..=2024).contains(&year) && (1..=12).contains(&month) && (1..=31).contains(&day)
}

fn g_chinaid(rng: &mut StdRng) -> String {
    const CHECK_MAP: [char; 11] = ['1', '0', 'X', '9', '8', '7', '6', '5', '4', '3', '2'];
    const WEIGHTS: [u32; 17] = [7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2];
    let region = format!("{}{}", rng.gen_range(11..66), gen::digits(rng, 4));
    let birth = format!(
        "{}{:02}{:02}",
        rng.gen_range(1940..2010),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    );
    let seq = gen::digits(rng, 3);
    let body = format!("{region}{birth}{seq}");
    let sum: u32 = body
        .bytes()
        .enumerate()
        .map(|(i, b)| (b - b'0') as u32 * WEIGHTS[i])
        .sum();
    format!("{body}{}", CHECK_MAP[(sum % 11) as usize])
}

fn v_ein(s: &str) -> bool {
    let Some((prefix, serial)) = s.split_once('-') else {
        return false;
    };
    const VALID_PREFIXES: &[u32] = &[
        1, 2, 3, 4, 5, 6, 10, 11, 12, 13, 14, 15, 16, 20, 21, 22, 23, 24, 25, 26, 27, 30, 31, 32,
        33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 50, 51, 52, 53, 54, 55, 56,
        57, 58, 59, 60, 61, 62, 63, 64, 65, 66, 67, 68, 71, 72, 73, 74, 75, 76, 77, 80, 81, 82, 83,
        84, 85, 86, 87, 88, 90, 91, 92, 93, 94, 95, 98, 99,
    ];
    prefix.len() == 2
        && serial.len() == 7
        && prefix.bytes().all(|b| b.is_ascii_digit())
        && serial.bytes().all(|b| b.is_ascii_digit())
        && VALID_PREFIXES.contains(&prefix.parse().unwrap())
}

fn g_ein(rng: &mut StdRng) -> String {
    const PREFIXES: &[&str] = &["12", "20", "36", "45", "52", "54", "75", "91", "94"];
    format!("{}-{}", gen::pick(rng, PREFIXES), gen::digits(rng, 7))
}

fn g_nhs(rng: &mut StdRng) -> String {
    loop {
        let body = gen::digits(rng, 9);
        let d: Vec<u32> = body.bytes().map(|b| (b - b'0') as u32).collect();
        let sum: u32 = (0..9).map(|i| d[i] * (10 - i as u32)).sum();
        let check = 11 - (sum % 11);
        if check == 10 {
            continue;
        }
        let check = if check == 11 { 0 } else { check };
        return format!("{body}{check}");
    }
}

fn v_pubchem(s: &str) -> bool {
    s.strip_prefix("CID")
        .map(|d| {
            let d = d.strip_prefix(' ').unwrap_or(d);
            !d.is_empty()
                && d.len() <= 9
                && d.bytes().all(|b| b.is_ascii_digit())
                && !d.starts_with('0')
        })
        .unwrap_or(false)
}

fn g_pubchem(rng: &mut StdRng) -> String {
    format!("CID{}", {
        let n = rng.gen_range(3..8);
        gen::digits_nz(rng, n)
    })
}

fn v_pii(s: &str) -> bool {
    // Composite record: "name; ssn; email" — each component must validate.
    let parts: Vec<&str> = s.split(';').map(|p| p.trim()).collect();
    parts.len() == 3 && v_personname(parts[0]) && v_ssn(parts[1]) && v_email(parts[2])
}

fn g_pii(rng: &mut StdRng) -> String {
    format!("{}; {}; {}", g_personname(rng), g_ssn(rng), g_email(rng))
}

fn g_npi(rng: &mut StdRng) -> String {
    let body = format!("1{}", gen::digits(rng, 8));
    let check = ck::luhn_check_digit(&format!("80840{body}"));
    format!("{body}{check}")
}

fn v_fei(s: &str) -> bool {
    (s.len() == 7 || s.len() == 10) && s.bytes().all(|b| b.is_ascii_digit()) && !s.starts_with('0')
}

fn g_fei(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        gen::digits_nz(rng, 7)
    } else {
        format!("30{}", gen::digits(rng, 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn phone_formats() {
        assert!(v_phone("(502) 107-2133")); // paper example (§9.1)
        assert!(v_phone("206-555-0123"));
        assert!(v_phone("+1 206 555 0123"));
        assert!(v_phone("206.555.0123"));
        assert!(!v_phone("106-555-0123")); // area starts with 1
        assert!(!v_phone("206-555-012"));
    }

    #[test]
    fn email_rules() {
        assert!(v_email("a.b@example.com"));
        assert!(v_email("user+tag@mail.org"));
        assert!(!v_email("no-at-sign.com"));
        assert!(!v_email("a@b"));
        assert!(!v_email(".dot@x.com"));
        assert!(!v_email("a@x.c0m"));
    }

    #[test]
    fn address_structure() {
        assert!(v_address("459 Euclid Rd, Utica, NY 13501")); // paper §9.1
        assert!(v_address("1 Wall St, Springfield, IL 62704"));
        assert!(!v_address("100 Main Street")); // partial address (paper fn)
        assert!(!v_address("Main St, Springfield, IL 62704"));
    }

    #[test]
    fn ssn_rules() {
        assert!(v_ssn("123-45-6789"));
        assert!(!v_ssn("000-45-6789"));
        assert!(!v_ssn("666-45-6789"));
        assert!(!v_ssn("923-45-6789"));
        assert!(!v_ssn("123-00-6789"));
        assert!(!v_ssn("123-45-0000"));
    }

    #[test]
    fn china_id_generator_valid() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let id = g_chinaid(&mut rng);
            assert!(v_chinaid(&id), "{id}");
        }
    }

    #[test]
    fn npi_and_nhs_generators() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            assert!(ck::npi_valid(&g_npi(&mut rng)));
            assert!(ck::nhs_valid(&g_nhs(&mut rng)));
        }
    }

    #[test]
    fn ein_prefixes() {
        assert!(v_ein("12-3456789"));
        assert!(!v_ein("07-3456789")); // 07 not a valid prefix
        assert!(!v_ein("123456789"));
    }
}

//! The 112-type benchmark registry (paper Appendix A).
//!
//! Each [`SemanticType`] bundles a ground-truth validator, a positive-example
//! generator, search keywords (canonical plus the alternates of Appendix I
//! Table 4), a domain, and a *coverage* label reproducing the paper's
//! findings: 84 types have usable Python code, 24 have none ("we could not
//! find relevant code in Python2"), and 4 have code that needs invocation
//! shapes AutoType does not handle (§8.2.2 names SQL query, TAF, ISNI, RIC).

use rand::rngs::StdRng;
use std::sync::OnceLock;

/// Index of a type in the global registry.
pub type TypeId = usize;

/// Domain clusters from Appendix A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Science,
    Health,
    Finance,
    Tech,
    Transport,
    Geo,
    Publication,
    Personal,
    Other,
}

impl Domain {
    pub const ALL: [Domain; 9] = [
        Domain::Science,
        Domain::Health,
        Domain::Finance,
        Domain::Tech,
        Domain::Transport,
        Domain::Geo,
        Domain::Publication,
        Domain::Personal,
        Domain::Other,
    ];
}

/// Whether the (synthetic) open-source universe contains usable
/// type-detection code for a type — reproduces the population of §8.2.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Relevant, invocable PyLite code exists in the corpus.
    Covered,
    /// No relevant code exists (the paper's 24 niche types).
    NoCode,
    /// Relevant code exists but requires multi-step invocation chains
    /// (`a = foo1(); b = foo2(a); c = foo3(b, s)`) that the code-analysis
    /// stage rejects (the paper's 4 types).
    UnsupportedInvocation,
}

/// One benchmark semantic type.
pub struct SemanticType {
    pub id: TypeId,
    /// Canonical display name, e.g. `"credit card"`.
    pub name: &'static str,
    /// Short identifier used in code/corpus, e.g. `"creditcard"`.
    pub slug: &'static str,
    pub domain: Domain,
    /// Search keywords: `keywords[0]` is the canonical query; the rest are
    /// the alternates exercised by the Figure 12 sensitivity experiment.
    pub keywords: &'static [&'static str],
    pub coverage: Coverage,
    /// Member of the 20 "popular types" list (Appendix I) used by the
    /// sensitivity and table-detection experiments.
    pub popular: bool,
    /// Ground-truth validator (plays the role of the human judge's
    /// perfectly-informed oracle for `Q(F)` holdout scoring).
    pub validate: fn(&str) -> bool,
    /// Positive-example generator.
    pub generate: fn(&mut StdRng) -> String,
}

impl SemanticType {
    /// Generate `n` distinct positive examples.
    pub fn examples(&self, rng: &mut StdRng, n: usize) -> Vec<String> {
        let mut out = Vec::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 50 {
            attempts += 1;
            let candidate = (self.generate)(rng);
            if !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        // Extremely low-cardinality types (e.g. state abbreviations) may not
        // have n distinct values; pad with repeats to keep |P| stable.
        while out.len() < n {
            out.push((self.generate)(rng));
        }
        out
    }

    /// The canonical search keyword.
    pub fn keyword(&self) -> &'static str {
        self.keywords[0]
    }
}

impl std::fmt::Debug for SemanticType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemanticType")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("domain", &self.domain)
            .field("coverage", &self.coverage)
            .finish()
    }
}

/// A type definition before registry assembly assigns ids.
pub(crate) struct Spec {
    pub name: &'static str,
    pub slug: &'static str,
    pub domain: Domain,
    pub keywords: &'static [&'static str],
    pub coverage: Coverage,
    pub popular: bool,
    pub validate: fn(&str) -> bool,
    pub generate: fn(&mut StdRng) -> String,
}

static REGISTRY: OnceLock<Vec<SemanticType>> = OnceLock::new();

/// The full 112-type benchmark, in a stable order.
pub fn registry() -> &'static [SemanticType] {
    REGISTRY.get_or_init(|| {
        let mut specs: Vec<Spec> = Vec::with_capacity(112);
        specs.extend(crate::science::types());
        specs.extend(crate::health::types());
        specs.extend(crate::finance::types());
        specs.extend(crate::tech::types());
        specs.extend(crate::transport::types());
        specs.extend(crate::geo::types());
        specs.extend(crate::publication::types());
        specs.extend(crate::personal::types());
        specs.extend(crate::other::types());
        specs
            .into_iter()
            .enumerate()
            .map(|(id, s)| SemanticType {
                id,
                name: s.name,
                slug: s.slug,
                domain: s.domain,
                keywords: s.keywords,
                coverage: s.coverage,
                popular: s.popular,
                validate: s.validate,
                generate: s.generate,
            })
            .collect()
    })
}

/// Look up a type by slug.
pub fn by_slug(slug: &str) -> Option<&'static SemanticType> {
    registry().iter().find(|t| t.slug == slug)
}

/// The 20 popular types (Appendix I) in registry order.
pub fn popular_types() -> Vec<&'static SemanticType> {
    registry().iter().filter(|t| t.popular).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn registry_has_exactly_112_types() {
        assert_eq!(registry().len(), 112);
    }

    #[test]
    fn coverage_split_matches_the_paper() {
        let covered = registry()
            .iter()
            .filter(|t| t.coverage == Coverage::Covered)
            .count();
        let no_code = registry()
            .iter()
            .filter(|t| t.coverage == Coverage::NoCode)
            .count();
        let unsupported = registry()
            .iter()
            .filter(|t| t.coverage == Coverage::UnsupportedInvocation)
            .count();
        assert_eq!(covered, 84, "84/112 types synthesizable (§8.2.2)");
        assert_eq!(no_code, 24, "24 niche types without Python code");
        assert_eq!(unsupported, 4, "4 types with unsupported invocation");
    }

    #[test]
    fn exactly_20_popular_types() {
        assert_eq!(popular_types().len(), 20);
        assert!(popular_types()
            .iter()
            .all(|t| t.coverage == Coverage::Covered));
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = registry().iter().map(|t| t.slug).collect();
        slugs.sort_unstable();
        let before = slugs.len();
        slugs.dedup();
        assert_eq!(slugs.len(), before);
    }

    #[test]
    fn every_generator_produces_valid_examples() {
        let mut rng = StdRng::seed_from_u64(7);
        for t in registry() {
            for _ in 0..25 {
                let example = (t.generate)(&mut rng);
                assert!(
                    (t.validate)(&example),
                    "{} generated invalid example: {example:?}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn examples_are_mostly_distinct() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = by_slug("creditcard").unwrap();
        let examples = t.examples(&mut rng, 20);
        assert_eq!(examples.len(), 20);
        let mut unique = examples.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn every_type_has_a_keyword() {
        for t in registry() {
            assert!(!t.keywords.is_empty(), "{} has no keywords", t.name);
        }
    }

    #[test]
    fn validators_reject_clearly_wrong_inputs() {
        for t in registry() {
            assert!(!(t.validate)(""), "{} accepts the empty string", t.name);
        }
    }

    #[test]
    fn fig12_types_have_three_keywords() {
        // The keyword-sensitivity experiment (Fig. 12 / Table 4) needs at
        // least 3 keywords for these 10 types.
        for slug in [
            "isbn", "ipv4", "swift", "zipcode", "sedol", "isin", "vin", "rgbcolor", "fasta", "doi",
        ] {
            let t = by_slug(slug).unwrap_or_else(|| panic!("missing {slug}"));
            assert!(
                t.keywords.len() >= 3,
                "{} needs 3 keywords for Figure 12",
                t.name
            );
        }
    }
}

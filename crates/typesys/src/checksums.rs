//! Checksum algorithms used by rich semantic data types.
//!
//! The paper's running examples are Luhn (credit cards, Figure 2) and the
//! GS1 check digit (ISBN-13/EAN/UPC, Figure 3); the benchmark types pull in
//! many more industry-standard algorithms, all implemented here and used by
//! both the ground-truth validators and the corpus snippet generators.

/// Luhn (mod-10 "double every second digit") checksum over an ASCII digit
/// string, including the trailing check digit. Used by credit cards, IMEI,
/// and (over an expanded alphabet) ISIN and NPI.
pub fn luhn_valid(digits: &str) -> bool {
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    luhn_sum(digits).is_multiple_of(10)
}

/// The Luhn sum of a digit string (doubling starts from the second digit
/// from the right).
pub fn luhn_sum(digits: &str) -> u32 {
    digits
        .bytes()
        .rev()
        .enumerate()
        .map(|(i, b)| {
            let d = (b - b'0') as u32;
            if i % 2 == 1 {
                let doubled = d * 2;
                if doubled > 9 {
                    doubled - 9
                } else {
                    doubled
                }
            } else {
                d
            }
        })
        .sum()
}

/// Compute the Luhn check digit to append to `partial`.
pub fn luhn_check_digit(partial: &str) -> u8 {
    // Appending the check digit shifts parity: double from the rightmost of
    // `partial`.
    let sum: u32 = partial
        .bytes()
        .rev()
        .enumerate()
        .map(|(i, b)| {
            let d = (b - b'0') as u32;
            if i % 2 == 0 {
                let doubled = d * 2;
                if doubled > 9 {
                    doubled - 9
                } else {
                    doubled
                }
            } else {
                d
            }
        })
        .sum();
    ((10 - (sum % 10)) % 10) as u8
}

/// GS1 mod-10 checksum (EAN-8/13, UPC-A, GTIN-14, GLN, ISBN-13): weights
/// alternate 3,1 from the digit immediately left of the check digit.
pub fn gs1_valid(digits: &str) -> bool {
    if digits.len() < 2 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let (body, check) = digits.split_at(digits.len() - 1);
    gs1_check_digit(body) == check.as_bytes()[0] - b'0'
}

/// GS1 check digit for `body` (all digits).
pub fn gs1_check_digit(body: &str) -> u8 {
    let sum: u32 = body
        .bytes()
        .rev()
        .enumerate()
        .map(|(i, b)| {
            let d = (b - b'0') as u32;
            if i % 2 == 0 {
                d * 3
            } else {
                d
            }
        })
        .sum();
    ((10 - (sum % 10)) % 10) as u8
}

/// ISBN-10 checksum: `sum(i * d_i for i in 1..=10) % 11 == 0` with the last
/// position allowed to be `X` (= 10).
pub fn isbn10_valid(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() != 10 {
        return false;
    }
    let mut sum: u32 = 0;
    for (i, c) in chars.iter().enumerate() {
        let v = match c {
            '0'..='9' => *c as u32 - '0' as u32,
            'X' | 'x' if i == 9 => 10,
            _ => return false,
        };
        sum += (i as u32 + 1) * v;
    }
    sum.is_multiple_of(11)
}

/// ISBN-10 check character for a 9-digit body.
pub fn isbn10_check_char(body: &str) -> char {
    let sum: u32 = body
        .bytes()
        .enumerate()
        .map(|(i, b)| (i as u32 + 1) * (b - b'0') as u32)
        .sum();
    match sum % 11 {
        10 => 'X',
        d => (b'0' + d as u8) as char,
    }
}

/// ISSN checksum: 8 characters, weights 8..=2 over the first seven, check
/// digit `X` = 10.
pub fn issn_valid(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() != 8 {
        return false;
    }
    let mut sum: u32 = 0;
    for (i, c) in chars.iter().take(7).enumerate() {
        let v = match c {
            '0'..='9' => *c as u32 - '0' as u32,
            _ => return false,
        };
        sum += (8 - i as u32) * v;
    }
    let check = match chars[7] {
        '0'..='9' => chars[7] as u32 - '0' as u32,
        'X' | 'x' => 10,
        _ => return false,
    };
    (sum + check).is_multiple_of(11)
}

/// ISSN check character for a 7-digit body.
pub fn issn_check_char(body: &str) -> char {
    let sum: u32 = body
        .bytes()
        .enumerate()
        .map(|(i, b)| (8 - i as u32) * (b - b'0') as u32)
        .sum();
    match (11 - sum % 11) % 11 {
        10 => 'X',
        d => (b'0' + d as u8) as char,
    }
}

/// ISO 7064 mod-97-10 over a string where letters expand to `10 + index`
/// (IBAN after rotation, LEI directly). Valid when the remainder is 1.
pub fn mod97_remainder(s: &str) -> Option<u32> {
    let mut rem: u32 = 0;
    for c in s.chars() {
        let v = match c {
            '0'..='9' => c as u32 - '0' as u32,
            'A'..='Z' => c as u32 - 'A' as u32 + 10,
            'a'..='z' => c as u32 - 'a' as u32 + 10,
            _ => return None,
        };
        if v < 10 {
            rem = (rem * 10 + v) % 97;
        } else {
            rem = (rem * 100 + v) % 97;
        }
    }
    Some(rem)
}

/// IBAN validation: rotate the first four characters to the end, expand
/// letters, remainder mod 97 must be 1. Length checked per a country table
/// subset.
pub fn iban_valid(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.len() < 15 || compact.len() > 34 {
        return false;
    }
    let bytes = compact.as_bytes();
    if !bytes[0].is_ascii_uppercase() || !bytes[1].is_ascii_uppercase() {
        return false;
    }
    if !bytes[2].is_ascii_digit() || !bytes[3].is_ascii_digit() {
        return false;
    }
    let rotated = format!("{}{}", &compact[4..], &compact[..4]);
    mod97_remainder(&rotated) == Some(1)
}

/// ISIN: 2-letter country + 9 alphanumerics + Luhn check over the
/// digit-expanded form.
pub fn isin_valid(s: &str) -> bool {
    if s.len() != 12 {
        return false;
    }
    let bytes = s.as_bytes();
    if !bytes[0].is_ascii_uppercase() || !bytes[1].is_ascii_uppercase() {
        return false;
    }
    if !bytes[11].is_ascii_digit() {
        return false;
    }
    let mut expanded = String::with_capacity(24);
    for c in s.chars() {
        match c {
            '0'..='9' => expanded.push(c),
            'A'..='Z' => expanded.push_str(&(c as u32 - 'A' as u32 + 10).to_string()),
            _ => return false,
        }
    }
    luhn_valid(&expanded)
}

/// CUSIP: 9 characters; digits keep value, letters are `position + 9`,
/// `*`=36 `@`=37 `#`=38; every second value doubled; digit-sum mod 10.
pub fn cusip_valid(s: &str) -> bool {
    if s.len() != 9 {
        return false;
    }
    let mut sum: u32 = 0;
    for (i, c) in s.chars().enumerate().take(8) {
        let mut v = match c {
            '0'..='9' => c as u32 - '0' as u32,
            'A'..='Z' => c as u32 - 'A' as u32 + 10,
            'a'..='z' => c as u32 - 'a' as u32 + 10,
            '*' => 36,
            '@' => 37,
            '#' => 38,
            _ => return false,
        };
        if i % 2 == 1 {
            v *= 2;
        }
        sum += v / 10 + v % 10;
    }
    let check = match s.chars().nth(8) {
        Some(c @ '0'..='9') => c as u32 - '0' as u32,
        _ => return false,
    };
    (10 - sum % 10) % 10 == check
}

/// SEDOL: 7 characters (letters exclude vowels), weights 1,3,1,7,3,9 plus a
/// final check digit making the weighted sum divisible by 10.
pub fn sedol_valid(s: &str) -> bool {
    const WEIGHTS: [u32; 7] = [1, 3, 1, 7, 3, 9, 1];
    if s.len() != 7 {
        return false;
    }
    let mut sum = 0u32;
    for (i, c) in s.chars().enumerate() {
        let v = match c {
            '0'..='9' => c as u32 - '0' as u32,
            'B' | 'C' | 'D' | 'F' | 'G' | 'H' | 'J' | 'K' | 'L' | 'M' | 'N' | 'P' | 'Q' | 'R'
            | 'S' | 'T' | 'V' | 'W' | 'X' | 'Y' | 'Z' => c as u32 - 'A' as u32 + 10,
            _ => return false,
        };
        if i == 6 && !c.is_ascii_digit() {
            return false;
        }
        sum += WEIGHTS[i] * v;
    }
    sum.is_multiple_of(10)
}

/// SEDOL check digit for a 6-character body.
pub fn sedol_check_digit(body: &str) -> Option<u8> {
    const WEIGHTS: [u32; 6] = [1, 3, 1, 7, 3, 9];
    if body.len() != 6 {
        return None;
    }
    let mut sum = 0u32;
    for (i, c) in body.chars().enumerate() {
        let v = match c {
            '0'..='9' => c as u32 - '0' as u32,
            'A'..='Z' => c as u32 - 'A' as u32 + 10,
            _ => return None,
        };
        sum += WEIGHTS[i] * v;
    }
    Some(((10 - sum % 10) % 10) as u8)
}

/// ABA routing number: 9 digits with 3-7-1 weighted sum divisible by 10.
pub fn aba_valid(s: &str) -> bool {
    if s.len() != 9 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let d: Vec<u32> = s.bytes().map(|b| (b - b'0') as u32).collect();
    let sum = 3 * (d[0] + d[3] + d[6]) + 7 * (d[1] + d[4] + d[7]) + (d[2] + d[5] + d[8]);
    sum.is_multiple_of(10)
}

/// VIN (ISO 3779): 17 characters excluding I, O, Q; position 9 is a check
/// digit computed from transliterated values and positional weights.
pub fn vin_valid(s: &str) -> bool {
    const WEIGHTS: [u32; 17] = [8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2];
    if s.len() != 17 {
        return false;
    }
    let mut sum = 0u32;
    for (i, c) in s.chars().enumerate() {
        let v = match vin_translit(c) {
            Some(v) => v,
            None => return false,
        };
        sum += WEIGHTS[i] * v;
    }
    let expected = match sum % 11 {
        10 => 'X',
        d => (b'0' + d as u8) as char,
    };
    s.chars().nth(8) == Some(expected)
}

/// VIN character transliteration values (I, O, Q are illegal).
pub fn vin_translit(c: char) -> Option<u32> {
    Some(match c.to_ascii_uppercase() {
        '0'..='9' => c as u32 - '0' as u32,
        'A' => 1,
        'B' => 2,
        'C' => 3,
        'D' => 4,
        'E' => 5,
        'F' => 6,
        'G' => 7,
        'H' => 8,
        'J' => 1,
        'K' => 2,
        'L' => 3,
        'M' => 4,
        'N' => 5,
        'P' => 7,
        'R' => 9,
        'S' => 2,
        'T' => 3,
        'U' => 4,
        'V' => 5,
        'W' => 6,
        'X' => 7,
        'Y' => 8,
        'Z' => 9,
        _ => return None,
    })
}

/// IMO ship identification number: `IMO` + 7 digits, weighted 7..=2 over the
/// first six with the units digit of the sum as check digit.
pub fn imo_valid(s: &str) -> bool {
    let digits = match s.strip_prefix("IMO ").or_else(|| s.strip_prefix("IMO")) {
        Some(d) => d.trim(),
        None => s,
    };
    if digits.len() != 7 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let d: Vec<u32> = digits.bytes().map(|b| (b - b'0') as u32).collect();
    let sum: u32 = (0..6).map(|i| d[i] * (7 - i as u32)).sum();
    sum % 10 == d[6]
}

/// NHS number: 10 digits, weights 10..=2, check digit `11 - (sum mod 11)`
/// with 11 mapped to 0 and 10 invalid.
pub fn nhs_valid(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.len() != 10 || !compact.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let d: Vec<u32> = compact.bytes().map(|b| (b - b'0') as u32).collect();
    let sum: u32 = (0..9).map(|i| d[i] * (10 - i as u32)).sum();
    let check = match 11 - (sum % 11) {
        11 => 0,
        10 => return false,
        v => v,
    };
    check == d[9]
}

/// NPI (US National Provider Identifier): 10 digits; Luhn over `80840` +
/// first nine digits, with the tenth as check digit.
pub fn npi_valid(s: &str) -> bool {
    if s.len() != 10 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let expanded = format!("80840{s}");
    luhn_valid(&expanded)
}

/// ISO 7064 mod 11-2 check character (used by ORCID and ISNI): returns the
/// expected final character for the 15-digit body.
pub fn mod11_2_check_char(body: &str) -> Option<char> {
    let mut total: u32 = 0;
    for b in body.bytes() {
        if !b.is_ascii_digit() {
            return None;
        }
        total = (total + (b - b'0') as u32) * 2;
    }
    let remainder = total % 11;
    let result = (12 - remainder) % 11;
    Some(match result {
        10 => 'X',
        d => (b'0' + d as u8) as char,
    })
}

/// ORCID: four dash-separated groups of 4, mod 11-2 check character.
pub fn orcid_valid(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 4 || parts.iter().any(|p| p.len() != 4) {
        return false;
    }
    let compact: String = parts.concat();
    let (body, check) = compact.split_at(15);
    mod11_2_check_char(body) == check.chars().next()
}

/// Chinese resident identity number: 18 characters, ISO 7064 mod 11-2
/// variant with weights `2^(17-i) mod 11` and check map `10X98765432`.
pub fn china_id_valid(s: &str) -> bool {
    const CHECK_MAP: [char; 11] = ['1', '0', 'X', '9', '8', '7', '6', '5', '4', '3', '2'];
    let chars: Vec<char> = s.chars().collect();
    if chars.len() != 18 {
        return false;
    }
    // Weights are 2^(17-i) mod 11: 7 9 10 5 8 4 2 1 6 3 7 9 10 5 8 4 2.
    const WEIGHTS: [u32; 17] = [7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2];
    let mut sum: u32 = 0;
    for (i, c) in chars.iter().take(17).enumerate() {
        let v = match c {
            '0'..='9' => *c as u32 - '0' as u32,
            _ => return false,
        };
        sum += v * WEIGHTS[i];
    }
    let check = CHECK_MAP[(sum % 11) as usize];
    chars[17].to_ascii_uppercase() == check
}

/// IMEI: 15 digits with Luhn.
pub fn imei_valid(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != '-' && *c != ' ').collect();
    compact.len() == 15 && luhn_valid(&compact)
}

/// LEI (Legal Entity Identifier): 20 alphanumerics, mod-97 remainder 1.
pub fn lei_valid(s: &str) -> bool {
    if s.len() != 20 {
        return false;
    }
    if !s.chars().all(|c| c.is_ascii_alphanumeric()) {
        return false;
    }
    if !s[18..].bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    mod97_remainder(s) == Some(1)
}

/// Compute two check digits making `body || checkdigits` have mod-97
/// remainder 1 (used to generate IBAN and LEI values).
pub fn mod97_check_digits(body_with_00: &str) -> Option<u8> {
    let rem = mod97_remainder(body_with_00)?;
    Some((98 - rem as u8 % 98) % 98)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luhn_known_values() {
        // Paper Figure 6 examples.
        assert!(luhn_valid("4147202263232835"));
        assert!(luhn_valid("371449635398431"));
        assert!(luhn_valid("6011016011016011"));
        assert!(!luhn_valid("4147202263232836"));
        assert!(!luhn_valid("4147a02263232835"));
        assert!(!luhn_valid(""));
    }

    #[test]
    fn luhn_check_digit_roundtrip() {
        for partial in ["414720226323283", "37144963539843", "123456789"] {
            let check = luhn_check_digit(partial);
            let full = format!("{partial}{check}");
            assert!(luhn_valid(&full), "{full} should be Luhn-valid");
        }
    }

    #[test]
    fn gs1_isbn13_and_ean() {
        // Paper §9.2 example ISBN-13.
        assert!(gs1_valid("9784063641561"));
        assert!(!gs1_valid("9784063641562"));
        // EAN-8.
        assert!(gs1_valid("96385074"));
        // UPC-A.
        assert!(gs1_valid("036000291452"));
    }

    #[test]
    fn gs1_check_digit_roundtrip() {
        for body in ["978406364156", "03600029145", "9638507"] {
            let check = gs1_check_digit(body);
            assert!(gs1_valid(&format!("{body}{check}")));
        }
    }

    #[test]
    fn isbn10_known() {
        assert!(isbn10_valid("0306406152"));
        assert!(isbn10_valid("097522980X"));
        assert!(!isbn10_valid("0306406153"));
        assert_eq!(isbn10_check_char("030640615"), '2');
    }

    #[test]
    fn issn_known() {
        assert!(issn_valid("03784371"));
        assert!(issn_valid("0024936X"));
        assert!(!issn_valid("03784372"));
        assert_eq!(issn_check_char("0378437"), '1');
    }

    #[test]
    fn iban_known() {
        assert!(iban_valid("GB82WEST12345698765432"));
        assert!(iban_valid("DE89370400440532013000"));
        assert!(iban_valid("GB82 WEST 1234 5698 7654 32"));
        assert!(!iban_valid("GB82WEST12345698765433"));
        assert!(!iban_valid("XX00"));
    }

    #[test]
    fn isin_known() {
        assert!(isin_valid("US0378331005")); // Apple
        assert!(isin_valid("GB0002634946")); // BAE
        assert!(!isin_valid("US0378331006"));
        assert!(!isin_valid("us0378331005"));
    }

    #[test]
    fn cusip_known() {
        assert!(cusip_valid("037833100")); // Apple
        assert!(cusip_valid("17275R102")); // Cisco
        assert!(!cusip_valid("037833101"));
    }

    #[test]
    fn sedol_known() {
        assert!(sedol_valid("0263494")); // BAE Systems
        assert!(sedol_valid("B0WNLY7"));
        assert!(!sedol_valid("0263495"));
        assert_eq!(sedol_check_digit("026349"), Some(4));
    }

    #[test]
    fn aba_known() {
        assert!(aba_valid("111000025"));
        assert!(aba_valid("021000021"));
        assert!(!aba_valid("111000026"));
        assert!(!aba_valid("11100002"));
    }

    #[test]
    fn vin_known() {
        assert!(vin_valid("1M8GDM9AXKP042788"));
        assert!(vin_valid("11111111111111111"));
        assert!(!vin_valid("1M8GDM9AXKP042789"));
        assert!(!vin_valid("1M8GDM9AIKP042788")); // contains I
    }

    #[test]
    fn imo_known() {
        assert!(imo_valid("IMO 9074729"));
        assert!(imo_valid("9074729"));
        assert!(!imo_valid("9074728"));
    }

    #[test]
    fn nhs_known() {
        assert!(nhs_valid("9434765919"));
        assert!(!nhs_valid("9434765918"));
    }

    #[test]
    fn npi_known() {
        assert!(npi_valid("1245319599"));
        assert!(!npi_valid("1245319598"));
    }

    #[test]
    fn orcid_known() {
        assert!(orcid_valid("0000-0002-1825-0097"));
        assert!(!orcid_valid("0000-0002-1825-0098"));
        assert!(!orcid_valid("0000-0002-1825"));
    }

    #[test]
    fn imei_known() {
        assert!(imei_valid("490154203237518"));
        assert!(!imei_valid("490154203237519"));
    }

    #[test]
    fn lei_known() {
        assert!(lei_valid("5493001KJTIIGC8Y1R12"));
        assert!(!lei_valid("5493001KJTIIGC8Y1R13"));
    }

    #[test]
    fn china_id_known() {
        assert!(china_id_valid("11010519491231002X"));
        assert!(!china_id_valid("110105194912310021"));
    }

    #[test]
    fn mod97_rejects_non_alnum() {
        assert_eq!(mod97_remainder("AB-12"), None);
    }
}

//! Random-generation helpers shared by the per-type positive-example
//! generators. All randomness flows through a caller-provided `StdRng` so
//! every experiment is reproducible from a seed.

use rand::rngs::StdRng;
use rand::Rng;

/// `n` random ASCII digits.
pub fn digits(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| char::from(b'0' + rng.gen_range(0..10)))
        .collect()
}

/// `n` random digits with a non-zero first digit.
pub fn digits_nz(rng: &mut StdRng, n: usize) -> String {
    let mut out = String::with_capacity(n);
    out.push(char::from(b'1' + rng.gen_range(0..9)));
    out.push_str(&digits(rng, n - 1));
    out
}

/// `n` random uppercase ASCII letters.
pub fn upper(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| char::from(b'A' + rng.gen_range(0..26)))
        .collect()
}

/// `n` random lowercase ASCII letters.
pub fn lower(rng: &mut StdRng, n: usize) -> String {
    (0..n)
        .map(|_| char::from(b'a' + rng.gen_range(0..26)))
        .collect()
}

/// `n` random characters from `alphabet`.
pub fn from_alphabet(rng: &mut StdRng, alphabet: &str, n: usize) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    (0..n)
        .map(|_| chars[rng.gen_range(0..chars.len())])
        .collect()
}

/// A uniformly random element of a slice of `Copy` items.
pub fn pick<T: Copy>(rng: &mut StdRng, items: &[T]) -> T {
    items[rng.gen_range(0..items.len())]
}

/// Random integer in `[lo, hi]` rendered as a string.
pub fn int_in(rng: &mut StdRng, lo: i64, hi: i64) -> String {
    rng.gen_range(lo..=hi).to_string()
}

/// Random hex string of length `n` (lowercase).
pub fn hex(rng: &mut StdRng, n: usize) -> String {
    from_alphabet(rng, "0123456789abcdef", n)
}

/// Common first names used by the person-name / address generators.
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "John",
    "Patricia",
    "Robert",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Carlos",
    "Karen",
    "Wei",
    "Nancy",
    "Ahmed",
    "Lisa",
    "Yuki",
    "Margaret",
    "Pierre",
    "Sandra",
    "Ivan",
    "Ashley",
];

/// Common last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Chen",
    "Nguyen",
    "Kim",
    "Patel",
    "Mueller",
    "Rossi",
    "Tanaka",
    "Kowalski",
    "Ivanov",
];

/// Street suffixes for mailing addresses.
pub const STREET_SUFFIXES: &[&str] = &[
    "St", "Ave", "Rd", "Blvd", "Ln", "Dr", "Ct", "Pl", "Way", "Ter",
];

/// Street base names.
pub const STREET_NAMES: &[&str] = &[
    "Main",
    "Oak",
    "Maple",
    "Cedar",
    "Pine",
    "Elm",
    "Washington",
    "Lake",
    "Hill",
    "Park",
    "Euclid",
    "Wall",
    "Broad",
    "Church",
    "Market",
    "Spring",
    "High",
    "Center",
    "Union",
    "River",
];

/// US cities (paired loosely with states below).
pub const CITIES: &[&str] = &[
    "Springfield",
    "Portland",
    "Madison",
    "Georgetown",
    "Franklin",
    "Arlington",
    "Salem",
    "Fairview",
    "Riverside",
    "Clinton",
    "Utica",
    "Houston",
    "Seattle",
    "Denver",
    "Austin",
    "Boston",
    "Phoenix",
    "Atlanta",
    "Chicago",
    "Dayton",
];

/// The 50 US state abbreviations plus DC.
pub const US_STATES: &[&str] = &[
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI", "ID", "IL", "IN", "IA", "KS",
    "KY", "LA", "ME", "MD", "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY",
    "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV",
    "WI", "WY", "DC",
];

/// ISO 3166-1 alpha-2 country codes (subset).
pub const COUNTRY_CODES_2: &[&str] = &[
    "US", "GB", "DE", "FR", "JP", "CN", "IN", "BR", "CA", "AU", "IT", "ES", "NL", "SE", "CH", "KR",
    "MX", "RU", "ZA", "NO", "DK", "FI", "PL", "BE", "AT", "IE", "PT", "GR", "CZ", "NZ",
];

/// ISO 3166-1 alpha-3 country codes (subset, aligned with the alpha-2 list).
pub const COUNTRY_CODES_3: &[&str] = &[
    "USA", "GBR", "DEU", "FRA", "JPN", "CHN", "IND", "BRA", "CAN", "AUS", "ITA", "ESP", "NLD",
    "SWE", "CHE", "KOR", "MEX", "RUS", "ZAF", "NOR", "DNK", "FIN", "POL", "BEL", "AUT", "IRL",
    "PRT", "GRC", "CZE", "NZL",
];

/// Country display names (aligned with the alpha-2 list).
pub const COUNTRY_NAMES: &[&str] = &[
    "United States",
    "United Kingdom",
    "Germany",
    "France",
    "Japan",
    "China",
    "India",
    "Brazil",
    "Canada",
    "Australia",
    "Italy",
    "Spain",
    "Netherlands",
    "Sweden",
    "Switzerland",
    "South Korea",
    "Mexico",
    "Russia",
    "South Africa",
    "Norway",
    "Denmark",
    "Finland",
    "Poland",
    "Belgium",
    "Austria",
    "Ireland",
    "Portugal",
    "Greece",
    "Czechia",
    "New Zealand",
];

/// IATA airport codes (subset).
pub const AIRPORT_CODES: &[&str] = &[
    "JFK", "LAX", "SEA", "SFO", "ORD", "ATL", "DFW", "DEN", "MIA", "BOS", "LHR", "CDG", "FRA",
    "AMS", "NRT", "HND", "PEK", "SYD", "YYZ", "DXB", "SIN", "ICN", "MAD", "FCO", "ZRH", "VIE",
    "CPH", "OSL", "ARN", "HEL",
];

/// Email domains.
pub const EMAIL_DOMAINS: &[&str] = &[
    "gmail.com",
    "yahoo.com",
    "outlook.com",
    "example.com",
    "mail.org",
    "company.net",
    "university.edu",
    "hotmail.com",
    "proton.me",
    "corp.io",
];

/// Stock tickers (subset of real symbols).
pub const TICKERS: &[&str] = &[
    "AAPL", "MSFT", "GOOG", "AMZN", "TSLA", "META", "NVDA", "IBM", "ORCL", "INTC", "AMD", "CRM",
    "NFLX", "DIS", "BA", "GE", "F", "GM", "T", "VZ", "KO", "PEP", "WMT", "COST", "JPM", "BAC",
    "GS", "MS", "V", "MA",
];

/// Known chemical element symbols (for chemical-formula validation).
pub const ELEMENTS: &[&str] = &[
    "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne", "Na", "Mg", "Al", "Si", "P", "S", "Cl",
    "Ar", "K", "Ca", "Fe", "Cu", "Zn", "Br", "Ag", "I", "Au", "Hg", "Pb", "Sn", "Ni", "Mn", "Cr",
    "Co", "Ti",
];

/// Common drug names (for the drug-name type).
pub const DRUG_NAMES: &[&str] = &[
    "Atorvastatin",
    "Lisinopril",
    "Metformin",
    "Amlodipine",
    "Metoprolol",
    "Omeprazole",
    "Simvastatin",
    "Losartan",
    "Albuterol",
    "Gabapentin",
    "Hydrochlorothiazide",
    "Sertraline",
    "Ibuprofen",
    "Acetaminophen",
    "Amoxicillin",
    "Azithromycin",
    "Prednisone",
    "Tramadol",
    "Trazodone",
    "Pantoprazole",
    "Fluoxetine",
    "Citalopram",
    "Warfarin",
    "Clopidogrel",
    "Montelukast",
    "Rosuvastatin",
    "Escitalopram",
    "Bupropion",
    "Furosemide",
    "Carvedilol",
];

/// Book titles (for the book-name type and ISBN transformations).
pub const BOOK_TITLES: &[&str] = &[
    "The Great Gatsby",
    "To Kill a Mockingbird",
    "Pride and Prejudice",
    "The Catcher in the Rye",
    "Moby Dick",
    "War and Peace",
    "Crime and Punishment",
    "Brave New World",
    "Jane Eyre",
    "Wuthering Heights",
    "The Odyssey",
    "Don Quixote",
    "Anna Karenina",
    "Great Expectations",
    "The Brothers Karamazov",
    "One Hundred Years of Solitude",
    "A Tale of Two Cities",
    "Les Miserables",
    "The Grapes of Wrath",
    "Lolita",
];

/// Month names and abbreviations for date generation/validation.
pub const MONTHS_FULL: &[&str] = &[
    "January",
    "February",
    "March",
    "April",
    "May",
    "June",
    "July",
    "August",
    "September",
    "October",
    "November",
    "December",
];

/// Three-letter month abbreviations.
pub const MONTHS_ABBR: &[&str] = &[
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Known HTTP status codes.
pub const HTTP_STATUS: &[&str] = &[
    "100", "101", "200", "201", "202", "204", "206", "301", "302", "303", "304", "307", "308",
    "400", "401", "403", "404", "405", "406", "408", "409", "410", "412", "413", "415", "418",
    "422", "429", "500", "501", "502", "503", "504",
];

/// ISO 4217 currency codes (subset).
pub const CURRENCY_CODES: &[&str] = &[
    "USD", "EUR", "GBP", "JPY", "CHF", "CAD", "AUD", "CNY", "INR", "BRL", "SEK", "NOK", "DKK",
    "KRW", "MXN", "ZAR", "PLN", "CZK", "NZD", "SGD",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn digit_helpers_produce_expected_lengths() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(digits(&mut rng, 10).len(), 10);
        let d = digits_nz(&mut rng, 5);
        assert_eq!(d.len(), 5);
        assert_ne!(d.as_bytes()[0], b'0');
        assert_eq!(upper(&mut rng, 4).len(), 4);
        assert_eq!(hex(&mut rng, 32).len(), 32);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(digits(&mut a, 20), digits(&mut b, 20));
    }

    #[test]
    fn country_tables_are_aligned() {
        assert_eq!(COUNTRY_CODES_2.len(), COUNTRY_CODES_3.len());
        assert_eq!(COUNTRY_CODES_2.len(), COUNTRY_NAMES.len());
    }
}

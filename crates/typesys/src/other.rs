//! Miscellaneous ("Other") semantic types: 17 types, including the
//! structured-text types (JSON, XML, HTML) and the multi-format date-time
//! type the paper calls out as having several sub-formats (§8.1).

use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "book name",
            slug: "bookname",
            domain: Domain::Other,
            keywords: &["book name", "book title"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_bookname,
            generate: g_bookname,
        },
        Spec {
            name: "HEX color",
            slug: "hexcolor",
            domain: Domain::Other,
            keywords: &["HEX color", "hex color code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_hexcolor,
            generate: g_hexcolor,
        },
        Spec {
            name: "RGB color",
            slug: "rgbcolor",
            domain: Domain::Other,
            keywords: &["RGB color", "RGB", "RGB color code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_rgbcolor,
            generate: g_rgbcolor,
        },
        Spec {
            name: "CMYK color",
            slug: "cmyk",
            domain: Domain::Other,
            keywords: &["CMYK color", "CMYK values"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_cmyk,
            generate: g_cmyk,
        },
        Spec {
            name: "HSL color",
            slug: "hsl",
            domain: Domain::Other,
            keywords: &["HSL color", "HSL values"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_hsl,
            generate: g_hsl,
        },
        Spec {
            name: "UNIX time",
            slug: "unixtime",
            domain: Domain::Other,
            keywords: &["UNIX time", "epoch timestamp"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_unixtime,
            generate: g_unixtime,
        },
        Spec {
            name: "HTTP status code",
            slug: "httpstatus",
            domain: Domain::Other,
            keywords: &["http status code", "HTTP response code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_httpstatus,
            generate: g_httpstatus,
        },
        Spec {
            name: "Roman numeral",
            slug: "roman",
            domain: Domain::Other,
            keywords: &["roman number", "roman numeral"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_roman,
            generate: g_roman,
        },
        Spec {
            name: "HTML",
            slug: "html",
            domain: Domain::Other,
            keywords: &["HTML", "HTML markup"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_html,
            generate: g_html,
        },
        Spec {
            name: "JSON",
            slug: "json",
            domain: Domain::Other,
            keywords: &["JSON", "JSON document"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_json,
            generate: g_json,
        },
        Spec {
            name: "XML",
            slug: "xml",
            domain: Domain::Other,
            keywords: &["XML", "XML document"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_xml,
            generate: g_xml,
        },
        Spec {
            name: "date time",
            slug: "datetime",
            domain: Domain::Other,
            keywords: &["date time", "datetime parser"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_datetime,
            generate: g_datetime,
        },
        Spec {
            name: "SQL statement",
            slug: "sql",
            domain: Domain::Other,
            keywords: &["SQL statement", "SQL query"],
            coverage: Coverage::UnsupportedInvocation,
            popular: false,
            validate: v_sql,
            generate: g_sql,
        },
        Spec {
            name: "Reuters instrument code",
            slug: "ric",
            domain: Domain::Other,
            keywords: &["Reuters instrument code", "RIC"],
            coverage: Coverage::UnsupportedInvocation,
            popular: false,
            validate: v_ric,
            generate: g_ric,
        },
        Spec {
            name: "OID number",
            slug: "oid",
            domain: Domain::Other,
            keywords: &["OID number", "object identifier"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_oid,
            generate: g_oid,
        },
        Spec {
            name: "GUID",
            slug: "guid",
            domain: Domain::Other,
            keywords: &["Global Unique Identifier", "GUID", "UUID"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_guid,
            generate: g_guid,
        },
        Spec {
            name: "ISNI",
            slug: "isni",
            domain: Domain::Other,
            keywords: &["International Standard Name Identifier", "ISNI"],
            coverage: Coverage::UnsupportedInvocation,
            popular: false,
            validate: v_isni,
            generate: g_isni,
        },
    ]
}

fn v_bookname(s: &str) -> bool {
    gen::BOOK_TITLES.contains(&s)
}

fn g_bookname(rng: &mut StdRng) -> String {
    gen::pick(rng, gen::BOOK_TITLES).to_string()
}

fn v_hexcolor(s: &str) -> bool {
    let Some(hex) = s.strip_prefix('#') else {
        return false;
    };
    (hex.len() == 6 || hex.len() == 3) && hex.bytes().all(|b| b.is_ascii_hexdigit())
}

fn g_hexcolor(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.85) {
        format!("#{}", gen::hex(rng, 6))
    } else {
        format!("#{}", gen::hex(rng, 3))
    }
}

fn component_0_255(p: &str) -> bool {
    let p = p.trim();
    !p.is_empty()
        && p.len() <= 3
        && p.bytes().all(|b| b.is_ascii_digit())
        && p.parse::<u32>().map(|v| v <= 255).unwrap_or(false)
}

fn v_rgbcolor(s: &str) -> bool {
    let inner = if let Some(rest) = s.strip_prefix("rgb(") {
        match rest.strip_suffix(')') {
            Some(i) => i,
            None => return false,
        }
    } else {
        s
    };
    let parts: Vec<&str> = inner.split(',').collect();
    parts.len() == 3 && parts.iter().all(|p| component_0_255(p))
}

fn g_rgbcolor(rng: &mut StdRng) -> String {
    let (r, g, b) = (
        rng.gen_range(0..256),
        rng.gen_range(0..256),
        rng.gen_range(0..256),
    );
    if rng.gen_bool(0.7) {
        format!("rgb({r}, {g}, {b})")
    } else {
        format!("{r},{g},{b}")
    }
}

fn percent_component(p: &str, max: u32) -> bool {
    let p = p.trim();
    let Some(num) = p.strip_suffix('%') else {
        return false;
    };
    !num.is_empty()
        && num.bytes().all(|b| b.is_ascii_digit())
        && num.parse::<u32>().map(|v| v <= max).unwrap_or(false)
}

fn v_cmyk(s: &str) -> bool {
    let inner = if let Some(rest) = s.strip_prefix("cmyk(") {
        match rest.strip_suffix(')') {
            Some(i) => i,
            None => return false,
        }
    } else {
        return false;
    };
    let parts: Vec<&str> = inner.split(',').collect();
    parts.len() == 4 && parts.iter().all(|p| percent_component(p, 100))
}

fn g_cmyk(rng: &mut StdRng) -> String {
    format!(
        "cmyk({}%, {}%, {}%, {}%)",
        rng.gen_range(0..=100),
        rng.gen_range(0..=100),
        rng.gen_range(0..=100),
        rng.gen_range(0..=100)
    )
}

fn v_hsl(s: &str) -> bool {
    let inner = if let Some(rest) = s.strip_prefix("hsl(") {
        match rest.strip_suffix(')') {
            Some(i) => i,
            None => return false,
        }
    } else {
        return false;
    };
    let parts: Vec<&str> = inner.split(',').collect();
    if parts.len() != 3 {
        return false;
    }
    let hue = parts[0].trim();
    hue.bytes().all(|b| b.is_ascii_digit())
        && hue.parse::<u32>().map(|v| v <= 360).unwrap_or(false)
        && percent_component(parts[1], 100)
        && percent_component(parts[2], 100)
}

fn g_hsl(rng: &mut StdRng) -> String {
    format!(
        "hsl({}, {}%, {}%)",
        rng.gen_range(0..=360),
        rng.gen_range(0..=100),
        rng.gen_range(0..=100)
    )
}

fn v_unixtime(s: &str) -> bool {
    if !(9..=10).contains(&s.len()) || !s.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    let v: u64 = s.parse().unwrap_or(0);
    // ~1973 .. ~2038.
    (100_000_000..=2_200_000_000).contains(&v)
}

fn g_unixtime(rng: &mut StdRng) -> String {
    rng.gen_range(100_000_000u64..2_000_000_000).to_string()
}

fn v_httpstatus(s: &str) -> bool {
    gen::HTTP_STATUS.contains(&s)
}

fn g_httpstatus(rng: &mut StdRng) -> String {
    gen::pick(rng, gen::HTTP_STATUS).to_string()
}

pub(crate) fn v_roman(s: &str) -> bool {
    if s.is_empty() || s.len() > 15 {
        return false;
    }
    let mut rest = s;
    let mut total_len = 0usize;
    // M{0,3}
    let mut m = 0;
    while rest.starts_with('M') && m < 3 {
        rest = &rest[1..];
        m += 1;
        total_len += 1;
    }
    // (CM|CD|D?C{0,3})
    for (nine, four, five, unit) in [
        ("CM", "CD", 'D', 'C'),
        ("XC", "XL", 'L', 'X'),
        ("IX", "IV", 'V', 'I'),
    ] {
        if let Some(r) = rest.strip_prefix(nine) {
            rest = r;
            total_len += 2;
            continue;
        }
        if let Some(r) = rest.strip_prefix(four) {
            rest = r;
            total_len += 2;
            continue;
        }
        if rest.starts_with(five) {
            rest = &rest[1..];
            total_len += 1;
        }
        let mut units = 0;
        while rest.starts_with(unit) && units < 3 {
            rest = &rest[1..];
            units += 1;
            total_len += 1;
        }
    }
    rest.is_empty() && total_len == s.len()
}

pub(crate) fn g_roman(rng: &mut StdRng) -> String {
    let mut n: u32 = rng.gen_range(1..=3999);
    let mut out = String::new();
    for (value, sym) in [
        (1000, "M"),
        (900, "CM"),
        (500, "D"),
        (400, "CD"),
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ] {
        while n >= value {
            out.push_str(sym);
            n -= value;
        }
    }
    out
}

fn v_html(s: &str) -> bool {
    let t = s.trim();
    if !t.starts_with('<') || !t.ends_with('>') {
        return false;
    }
    // Must contain a known HTML tag and a matching close (or self-close).
    const TAGS: &[&str] = &[
        "html", "div", "p", "a", "span", "table", "tr", "td", "ul", "li", "h1", "h2", "body", "b",
        "i", "img", "br", "head", "title",
    ];
    let lower = t.to_ascii_lowercase();
    TAGS.iter().any(|tag| {
        lower.contains(&format!("<{tag}"))
            && (lower.contains(&format!("</{tag}>")) || lower.contains("/>"))
    })
}

fn g_html(rng: &mut StdRng) -> String {
    let text = gen::pick(rng, gen::BOOK_TITLES);
    match rng.gen_range(0..4) {
        0 => format!("<p>{text}</p>"),
        1 => format!("<div class=\"item\"><span>{text}</span></div>"),
        2 => format!("<a href=\"https://example.com\">{text}</a>"),
        _ => format!("<ul><li>{text}</li><li>{}</li></ul>", gen::digits(rng, 3)),
    }
}

/// A strict little JSON validator (objects, arrays, strings, numbers,
/// booleans, null) — no external crates.
pub(crate) fn v_json(s: &str) -> bool {
    let chars: Vec<char> = s.chars().collect();
    let mut pos = 0usize;
    fn skip_ws(chars: &[char], pos: &mut usize) {
        while *pos < chars.len() && chars[*pos].is_whitespace() {
            *pos += 1;
        }
    }
    fn value(chars: &[char], pos: &mut usize, depth: u32) -> bool {
        if depth > 64 {
            return false;
        }
        skip_ws(chars, pos);
        match chars.get(*pos) {
            Some('{') => {
                *pos += 1;
                skip_ws(chars, pos);
                if chars.get(*pos) == Some(&'}') {
                    *pos += 1;
                    return true;
                }
                loop {
                    skip_ws(chars, pos);
                    if !string(chars, pos) {
                        return false;
                    }
                    skip_ws(chars, pos);
                    if chars.get(*pos) != Some(&':') {
                        return false;
                    }
                    *pos += 1;
                    if !value(chars, pos, depth + 1) {
                        return false;
                    }
                    skip_ws(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some('}') => {
                            *pos += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some('[') => {
                *pos += 1;
                skip_ws(chars, pos);
                if chars.get(*pos) == Some(&']') {
                    *pos += 1;
                    return true;
                }
                loop {
                    if !value(chars, pos, depth + 1) {
                        return false;
                    }
                    skip_ws(chars, pos);
                    match chars.get(*pos) {
                        Some(',') => *pos += 1,
                        Some(']') => {
                            *pos += 1;
                            return true;
                        }
                        _ => return false,
                    }
                }
            }
            Some('"') => string(chars, pos),
            Some('t') => literal(chars, pos, "true"),
            Some('f') => literal(chars, pos, "false"),
            Some('n') => literal(chars, pos, "null"),
            Some(c) if *c == '-' || c.is_ascii_digit() => number(chars, pos),
            _ => false,
        }
    }
    fn literal(chars: &[char], pos: &mut usize, lit: &str) -> bool {
        for expected in lit.chars() {
            if chars.get(*pos) != Some(&expected) {
                return false;
            }
            *pos += 1;
        }
        true
    }
    fn string(chars: &[char], pos: &mut usize) -> bool {
        if chars.get(*pos) != Some(&'"') {
            return false;
        }
        *pos += 1;
        while let Some(&c) = chars.get(*pos) {
            match c {
                '"' => {
                    *pos += 1;
                    return true;
                }
                '\\' => {
                    *pos += 2;
                }
                _ => *pos += 1,
            }
        }
        false
    }
    fn number(chars: &[char], pos: &mut usize) -> bool {
        if chars.get(*pos) == Some(&'-') {
            *pos += 1;
        }
        let mut digits = 0;
        while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
            *pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
        if chars.get(*pos) == Some(&'.') {
            *pos += 1;
            let mut frac = 0;
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if matches!(chars.get(*pos), Some('e') | Some('E')) {
            *pos += 1;
            if matches!(chars.get(*pos), Some('+') | Some('-')) {
                *pos += 1;
            }
            let mut exp = 0;
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                *pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }
    // Top level must be an object or array (like mined json.loads wrappers).
    skip_ws(&chars, &mut pos);
    if !matches!(chars.get(pos), Some('{') | Some('[')) {
        return false;
    }
    if !value(&chars, &mut pos, 0) {
        return false;
    }
    skip_ws(&chars, &mut pos);
    pos == chars.len()
}

fn g_json(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => format!(
            "{{\"id\": {}, \"name\": \"{}\", \"active\": {}}}",
            rng.gen_range(1..10000),
            gen::pick(rng, gen::FIRST_NAMES),
            if rng.gen_bool(0.5) { "true" } else { "false" }
        ),
        1 => format!(
            "[{}, {}, {}]",
            rng.gen_range(0..100),
            rng.gen_range(0..100),
            rng.gen_range(0..100)
        ),
        2 => format!(
            "{{\"items\": [{{\"sku\": \"{}\", \"qty\": {}}}], \"total\": {}.{:02}}}",
            gen::upper(rng, 5),
            rng.gen_range(1..10),
            rng.gen_range(1..1000),
            rng.gen_range(0..100)
        ),
        _ => format!(
            "{{\"city\": \"{}\", \"zip\": \"{}\"}}",
            gen::pick(rng, gen::CITIES),
            gen::digits(rng, 5)
        ),
    }
}

/// Simple XML well-formedness: tags must balance and nest properly.
pub(crate) fn v_xml(s: &str) -> bool {
    let t = s.trim();
    if !t.starts_with('<') || !t.ends_with('>') {
        return false;
    }
    let mut stack: Vec<String> = Vec::new();
    let mut rest = t;
    let mut saw_element = false;
    while let Some(open) = rest.find('<') {
        let Some(close_rel) = rest[open..].find('>') else {
            return false;
        };
        let tag = &rest[open + 1..open + close_rel];
        rest = &rest[open + close_rel + 1..];
        if tag.starts_with('?') || tag.starts_with('!') {
            continue; // declaration / comment
        }
        if let Some(name) = tag.strip_prefix('/') {
            match stack.pop() {
                Some(top) if top == name => {}
                _ => return false,
            }
        } else if tag.ends_with('/') {
            saw_element = true;
        } else {
            let name: String = tag.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() || !name.chars().next().unwrap().is_ascii_alphabetic() {
                return false;
            }
            stack.push(name);
            saw_element = true;
        }
    }
    stack.is_empty() && saw_element
}

fn g_xml(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => format!(
            "<order id=\"{}\"><item>{}</item><qty>{}</qty></order>",
            gen::digits(rng, 4),
            gen::pick(rng, gen::BOOK_TITLES),
            rng.gen_range(1..10)
        ),
        1 => format!(
            "<?xml version=\"1.0\"?><person><name>{}</name></person>",
            gen::pick(rng, gen::FIRST_NAMES)
        ),
        _ => format!(
            "<config><key>{}</key><value>{}</value></config>",
            gen::lower(rng, 6),
            gen::digits(rng, 3)
        ),
    }
}

fn days_in_month(month: u32, year: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400)) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

fn valid_ymd(year: u32, month: u32, day: u32) -> bool {
    (1000..=2100).contains(&year)
        && (1..=12).contains(&month)
        && day >= 1
        && day <= days_in_month(month, year)
}

fn valid_time(t: &str) -> bool {
    let (clock, ampm) = match t.strip_suffix(" AM").or_else(|| t.strip_suffix(" PM")) {
        Some(c) => (c, true),
        None => (t, false),
    };
    let parts: Vec<&str> = clock.split(':').collect();
    if !(2..=3).contains(&parts.len()) {
        return false;
    }
    if !parts
        .iter()
        .all(|p| (1..=2).contains(&p.len()) && p.bytes().all(|b| b.is_ascii_digit()))
    {
        return false;
    }
    let hour: u32 = parts[0].parse().unwrap();
    let minute: u32 = parts[1].parse().unwrap();
    let second: u32 = parts.get(2).map(|p| p.parse().unwrap()).unwrap_or(0);
    let hour_ok = if ampm {
        (1..=12).contains(&hour)
    } else {
        hour <= 23
    };
    hour_ok && minute <= 59 && second <= 59
}

/// Multi-format date-time validation (the paper's date-time type has several
/// sub-formats; §8.1 creates a test case per sub-format plus a mixed one).
pub(crate) fn v_datetime(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    // ISO "T" separator: date T time.
    if let Some((date, time)) = s.split_once('T') {
        if v_date_only(date) && valid_time(time) {
            return true;
        }
    }
    // "date <time>" — try every space as the date/time boundary.
    for (i, c) in s.char_indices() {
        if c == ' ' && valid_time(&s[i + 1..]) && v_date_only(&s[..i]) {
            return true;
        }
    }
    v_date_only(s)
}

fn v_date_only(s: &str) -> bool {
    // ISO: 2017-01-01 or 2017/01/01.
    for sep in ['-', '/'] {
        let parts: Vec<&str> = s.split(sep).collect();
        if parts.len() == 3
            && parts[0].len() == 4
            && parts
                .iter()
                .all(|p| p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty())
        {
            let y = parts[0].parse().unwrap_or(0);
            let m = parts[1].parse().unwrap_or(0);
            let d = parts[2].parse().unwrap_or(0);
            return valid_ymd(y, m, d);
        }
        // US: 01/02/2017.
        if parts.len() == 3
            && parts[2].len() == 4
            && parts
                .iter()
                .all(|p| p.bytes().all(|b| b.is_ascii_digit()) && !p.is_empty() && p.len() <= 4)
        {
            let m = parts[0].parse().unwrap_or(0);
            let d = parts[1].parse().unwrap_or(0);
            let y = parts[2].parse().unwrap_or(0);
            return valid_ymd(y, m, d);
        }
    }
    // Textual: "Jan 01, 2017" / "January 1 2017" / "01 Jan 2017".
    let cleaned = s.replace(',', " ");
    let tokens: Vec<&str> = cleaned.split_whitespace().collect();
    if tokens.len() == 3 {
        let month_index = |tok: &str| {
            gen::MONTHS_ABBR
                .iter()
                .position(|m| m.eq_ignore_ascii_case(tok))
                .or_else(|| {
                    gen::MONTHS_FULL
                        .iter()
                        .position(|m| m.eq_ignore_ascii_case(tok))
                })
        };
        // Month first.
        if let Some(mi) = month_index(tokens[0]) {
            let d: u32 = tokens[1].parse().unwrap_or(0);
            let y: u32 = tokens[2].parse().unwrap_or(0);
            return valid_ymd(y, mi as u32 + 1, d);
        }
        // Day first.
        if let Some(mi) = month_index(tokens[1]) {
            let d: u32 = tokens[0].parse().unwrap_or(0);
            let y: u32 = tokens[2].parse().unwrap_or(0);
            return valid_ymd(y, mi as u32 + 1, d);
        }
    }
    false
}

pub(crate) fn g_datetime(rng: &mut StdRng) -> String {
    let year = rng.gen_range(1950..2025);
    let month = rng.gen_range(1..=12);
    let day = rng.gen_range(1..=days_in_month(month, year));
    match rng.gen_range(0..6) {
        0 => format!("{year}-{month:02}-{day:02}"),
        1 => format!("{month:02}/{day:02}/{year}"),
        2 => format!("{} {day:02}, {year}", gen::MONTHS_ABBR[month as usize - 1]),
        3 => format!("{} {day}, {year}", gen::MONTHS_FULL[month as usize - 1]),
        4 => format!(
            "{year}-{month:02}-{day:02} {:02}:{:02}:{:02}",
            rng.gen_range(0..24),
            rng.gen_range(0..60),
            rng.gen_range(0..60)
        ),
        _ => format!(
            "{month}/{day}/{year} {}:{:02} {}",
            rng.gen_range(1..=12),
            rng.gen_range(0..60),
            if rng.gen_bool(0.5) { "AM" } else { "PM" }
        ),
    }
}

fn v_sql(s: &str) -> bool {
    let upper = s.trim().to_ascii_uppercase();
    (upper.starts_with("SELECT ") && upper.contains(" FROM "))
        || upper.starts_with("INSERT INTO ")
        || (upper.starts_with("UPDATE ") && upper.contains(" SET "))
        || upper.starts_with("DELETE FROM ")
        || upper.starts_with("CREATE TABLE ")
}

fn g_sql(rng: &mut StdRng) -> String {
    let table = gen::pick(rng, &["users", "orders", "products", "events", "logs"]);
    let column = gen::pick(rng, &["id", "name", "created_at", "price", "status"]);
    match rng.gen_range(0..4) {
        0 => format!(
            "SELECT {column} FROM {table} WHERE id = {}",
            rng.gen_range(1..1000)
        ),
        1 => format!(
            "SELECT * FROM {table} ORDER BY {column} DESC LIMIT {}",
            rng.gen_range(1..100)
        ),
        2 => format!(
            "INSERT INTO {table} ({column}) VALUES ({})",
            rng.gen_range(1..100)
        ),
        _ => format!(
            "UPDATE {table} SET {column} = {} WHERE id = {}",
            rng.gen_range(1..10),
            rng.gen_range(1..1000)
        ),
    }
}

fn v_ric(s: &str) -> bool {
    let Some((symbol, exchange)) = s.split_once('.') else {
        return false;
    };
    const EXCHANGES: &[&str] = &["O", "N", "L", "T", "PA", "DE", "HK", "AX", "TO", "SS"];
    (1..=5).contains(&symbol.len())
        && symbol.bytes().all(|b| b.is_ascii_uppercase())
        && EXCHANGES.contains(&exchange)
}

fn g_ric(rng: &mut StdRng) -> String {
    let exchange = gen::pick(rng, &["O", "N", "L", "T", "PA", "DE", "HK"]);
    format!("{}.{exchange}", gen::pick(rng, gen::TICKERS))
}

fn v_oid(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() < 3 {
        return false;
    }
    if !parts.iter().all(|p| {
        !p.is_empty()
            && p.bytes().all(|b| b.is_ascii_digit())
            && !(p.len() > 1 && p.starts_with('0'))
    }) {
        return false;
    }
    let first: u32 = parts[0].parse().unwrap();
    let second: u32 = parts[1].parse().unwrap();
    first <= 2 && (first == 2 || second <= 39)
}

fn g_oid(rng: &mut StdRng) -> String {
    let mut parts = vec![
        rng.gen_range(0..3).to_string(),
        rng.gen_range(0..40).to_string(),
    ];
    for _ in 0..rng.gen_range(2..6) {
        parts.push(rng.gen_range(1..10000).to_string());
    }
    parts.join(".")
}

fn v_guid(s: &str) -> bool {
    let t = s.trim_start_matches('{').trim_end_matches('}');
    let parts: Vec<&str> = t.split('-').collect();
    parts.len() == 5
        && [8, 4, 4, 4, 12]
            .iter()
            .zip(&parts)
            .all(|(len, p)| p.len() == *len && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

fn g_guid(rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}-{}-{}",
        gen::hex(rng, 8),
        gen::hex(rng, 4),
        gen::hex(rng, 4),
        gen::hex(rng, 4),
        gen::hex(rng, 12)
    )
}

fn v_isni(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != ' ').collect();
    if compact.len() != 16 {
        return false;
    }
    let (body, check) = compact.split_at(15);
    if !body.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    crate::checksums::mod11_2_check_char(body) == check.chars().next()
}

fn g_isni(rng: &mut StdRng) -> String {
    let body = format!("0000{}", gen::digits(rng, 11));
    let check = crate::checksums::mod11_2_check_char(&body).expect("digits");
    let full = format!("{body}{check}");
    format!(
        "{} {} {} {}",
        &full[..4],
        &full[4..8],
        &full[8..12],
        &full[12..]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn json_validator() {
        assert!(v_json("{\"a\": 1}"));
        assert!(v_json("[1, 2, 3]"));
        assert!(v_json("{\"a\": [true, null, -1.5e3], \"b\": \"x\"}"));
        assert!(!v_json("{a: 1}"));
        assert!(!v_json("{\"a\": 1,}"));
        assert!(!v_json("\"bare string\""));
        assert!(!v_json("{\"a\": 1} extra"));
    }

    #[test]
    fn xml_validator() {
        assert!(v_xml("<a><b>x</b></a>"));
        assert!(v_xml("<?xml version=\"1.0\"?><r><i/></r>"));
        assert!(!v_xml("<a><b>x</a></b>"));
        assert!(!v_xml("<a>unclosed"));
        assert!(!v_xml("plain text"));
    }

    #[test]
    fn roman_numerals() {
        assert!(v_roman("XIV"));
        assert!(v_roman("MMXVIII"));
        assert!(v_roman("MCMXCIX"));
        assert!(!v_roman("IIII"));
        assert!(!v_roman("VX"));
        assert!(!v_roman("ABC"));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let r = g_roman(&mut rng);
            assert!(v_roman(&r), "{r}");
        }
    }

    #[test]
    fn datetime_formats() {
        assert!(v_datetime("2017-01-01"));
        assert!(v_datetime("Jan 01, 2017"));
        assert!(v_datetime("September 15, 2011"));
        assert!(v_datetime("01/02/2017"));
        assert!(v_datetime("2017-01-01 12:34:56"));
        assert!(v_datetime("1/2/2017 1:30 PM"));
        assert!(!v_datetime("Abc 01, 2017")); // paper: "Abc" is not a month
        assert!(!v_datetime("2017-13-01"));
        assert!(!v_datetime("2017-02-30"));
        assert!(!v_datetime("4-11")); // the "temperature range" ambiguity
    }

    #[test]
    fn color_formats() {
        assert!(v_hexcolor("#ff00aa"));
        assert!(v_hexcolor("#f0a"));
        assert!(!v_hexcolor("ff00aa"));
        assert!(v_rgbcolor("rgb(255, 0, 128)"));
        assert!(v_rgbcolor("255,0,128"));
        assert!(!v_rgbcolor("rgb(256, 0, 0)"));
        assert!(v_cmyk("cmyk(0%, 50%, 100%, 0%)"));
        assert!(v_hsl("hsl(360, 100%, 50%)"));
        assert!(!v_hsl("hsl(361, 100%, 50%)"));
    }

    #[test]
    fn oid_and_guid() {
        assert!(v_oid("1.3.6.1.4.1"));
        assert!(!v_oid("3.3.6"));
        assert!(!v_oid("1.40.6.1"));
        assert!(v_guid("550e8400-e29b-41d4-a716-446655440000"));
        assert!(!v_guid("550e8400-e29b-41d4-a716"));
    }

    #[test]
    fn sql_and_ric() {
        assert!(v_sql("SELECT id FROM users WHERE id = 1"));
        assert!(v_sql("INSERT INTO t (a) VALUES (1)"));
        assert!(!v_sql("HELLO WORLD"));
        assert!(v_ric("AAPL.O"));
        assert!(!v_ric("AAPL"));
    }

    #[test]
    fn isni_check() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let i = g_isni(&mut rng);
            assert!(v_isni(&i), "{i}");
        }
        assert!(!v_isni("0000 0001 2345 678X")); // wrong check almost surely
    }

    #[test]
    fn unixtime_range() {
        assert!(v_unixtime("1530000000"));
        assert!(!v_unixtime("15300000000"));
        assert!(!v_unixtime("99999999"));
    }
}

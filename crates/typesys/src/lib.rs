//! # autotype-typesys — ground truth for the 112-type AutoType benchmark
//!
//! The AutoType paper (SIGMOD 2018) evaluates on a benchmark of 112 rich
//! semantic data types (Appendix A). This crate is the reproduction's source
//! of truth for that benchmark: for every type it provides
//!
//! * a **validator** — the oracle used to score synthesized detection logic
//!   (`Q(F)` holdout scoring in §8.1) and to label web-table columns,
//! * a **positive-example generator** — the stand-in for the paper's
//!   "around 20 positive examples taken randomly from the web",
//! * **search keywords** including the alternates of Appendix I Table 4,
//! * a **coverage label** reproducing §8.2.2's population: 84 covered types,
//!   24 without usable code, 4 needing unsupported invocation chains.
//!
//! The checksum algorithms these types build on (Luhn, GS1, ISO 7064
//! mod-97/mod-11-2, VIN, CUSIP, SEDOL, ABA, ...) live in [`checksums`].

pub mod checksums;
pub mod gen;
pub mod registry;

mod finance;
mod geo;
mod health;
mod other;
mod personal;
mod publication;
mod science;
mod tech;
mod transport;

pub use registry::{by_slug, popular_types, registry, Coverage, Domain, SemanticType, TypeId};

//! Geo-location semantic types: 14 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "longitude/latitude",
            slug: "longlat",
            domain: Domain::Geo,
            keywords: &["longitude latitude", "lat long coordinates"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_longlat,
            generate: g_longlat,
        },
        Spec {
            name: "US zipcode",
            slug: "zipcode",
            domain: Domain::Geo,
            keywords: &["US zipcode", "zipcode", "US postal code"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_zipcode,
            generate: g_zipcode,
        },
        Spec {
            name: "UK postal code",
            slug: "ukpostcode",
            domain: Domain::Geo,
            keywords: &["UK postal code", "UK postcode"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ukpostcode,
            generate: g_ukpostcode,
        },
        Spec {
            name: "Canada postal code",
            slug: "capostcode",
            domain: Domain::Geo,
            keywords: &["Canada postal code", "Canadian postcode"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_capostcode,
            generate: g_capostcode,
        },
        Spec {
            name: "MGRS coordinate",
            slug: "mgrs",
            domain: Domain::Geo,
            keywords: &["MGRS coordinate", "military grid reference"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_mgrs,
            generate: g_mgrs,
        },
        Spec {
            name: "USNG coordinate",
            slug: "usng",
            domain: Domain::Geo,
            keywords: &["USNG coordinates", "US national grid"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_usng,
            generate: g_usng,
        },
        Spec {
            name: "Global Location Number",
            slug: "gln",
            domain: Domain::Geo,
            keywords: &["Global Location Number", "GLN"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_gln,
            generate: g_gln,
        },
        Spec {
            name: "UTM coordinate",
            slug: "utm",
            domain: Domain::Geo,
            keywords: &["UTM coordinates", "universal transverse mercator"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_utm,
            generate: g_utm,
        },
        Spec {
            name: "airport code",
            slug: "airport",
            domain: Domain::Geo,
            keywords: &["airport code", "IATA code"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_airport,
            generate: g_airport,
        },
        Spec {
            name: "US state abbreviation",
            slug: "usstate",
            domain: Domain::Geo,
            keywords: &["us state abbreviation", "state code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_usstate,
            generate: g_usstate,
        },
        Spec {
            name: "country code",
            slug: "country",
            domain: Domain::Geo,
            keywords: &["country code", "ISO country code"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_country,
            generate: g_country,
        },
        Spec {
            name: "GeoJSON",
            slug: "geojson",
            domain: Domain::Geo,
            keywords: &["geojson", "geo json geometry"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_geojson,
            generate: g_geojson,
        },
        Spec {
            name: "TAF message",
            slug: "taf",
            domain: Domain::Geo,
            keywords: &["TAF message", "terminal aerodrome forecast"],
            coverage: Coverage::UnsupportedInvocation,
            popular: false,
            validate: v_taf,
            generate: g_taf,
        },
        Spec {
            name: "International Geo Sample Number",
            slug: "igsn",
            domain: Domain::Geo,
            keywords: &["International Geo Sample Number", "IGSN"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_igsn,
            generate: g_igsn,
        },
    ]
}

fn parse_f64(s: &str) -> Option<f64> {
    if s.is_empty() {
        return None;
    }
    let body = s.strip_prefix('-').unwrap_or(s);
    if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit() || b == b'.') {
        return None;
    }
    if body.matches('.').count() > 1 {
        return None;
    }
    s.parse().ok()
}

fn v_longlat(s: &str) -> bool {
    let parts: Vec<&str> = s.split(',').map(|p| p.trim()).collect();
    if parts.len() != 2 {
        return false;
    }
    let (Some(lat), Some(lon)) = (parse_f64(parts[0]), parse_f64(parts[1])) else {
        return false;
    };
    // Require a decimal point so plain integer pairs don't match.
    (-90.0..=90.0).contains(&lat)
        && (-180.0..=180.0).contains(&lon)
        && parts.iter().any(|p| p.contains('.'))
}

fn g_longlat(rng: &mut StdRng) -> String {
    let lat = rng.gen_range(-90_0000..=90_0000) as f64 / 10_000.0;
    let lon = rng.gen_range(-180_0000..=180_0000) as f64 / 10_000.0;
    format!("{lat:.4}, {lon:.4}")
}

pub(crate) fn v_zipcode(s: &str) -> bool {
    match s.split_once('-') {
        None => s.len() == 5 && s.bytes().all(|b| b.is_ascii_digit()),
        Some((z, plus4)) => {
            z.len() == 5
                && plus4.len() == 4
                && z.bytes().all(|b| b.is_ascii_digit())
                && plus4.bytes().all(|b| b.is_ascii_digit())
        }
    }
}

pub(crate) fn g_zipcode(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.8) {
        gen::digits(rng, 5)
    } else {
        format!("{}-{}", gen::digits(rng, 5), gen::digits(rng, 4))
    }
}

fn v_ukpostcode(s: &str) -> bool {
    // Outward: A9, A99, AA9, AA99, A9A, AA9A; inward: 9AA.
    let Some((out, inw)) = s.split_once(' ') else {
        return false;
    };
    let ob = out.as_bytes();
    let outward_ok = match ob.len() {
        2 => ob[0].is_ascii_uppercase() && ob[1].is_ascii_digit(),
        3 => {
            (ob[0].is_ascii_uppercase() && ob[1].is_ascii_digit() && ob[2].is_ascii_digit())
                || (ob[0].is_ascii_uppercase()
                    && ob[1].is_ascii_uppercase()
                    && ob[2].is_ascii_digit())
                || (ob[0].is_ascii_uppercase()
                    && ob[1].is_ascii_digit()
                    && ob[2].is_ascii_uppercase())
        }
        4 => {
            ob[0].is_ascii_uppercase()
                && ob[1].is_ascii_uppercase()
                && ob[2].is_ascii_digit()
                && (ob[3].is_ascii_digit() || ob[3].is_ascii_uppercase())
        }
        _ => false,
    };
    let ib = inw.as_bytes();
    outward_ok
        && ib.len() == 3
        && ib[0].is_ascii_digit()
        && ib[1].is_ascii_uppercase()
        && ib[2].is_ascii_uppercase()
}

fn g_ukpostcode(rng: &mut StdRng) -> String {
    const AREAS: &[&str] = &[
        "SW", "EC", "N", "E", "W", "NW", "SE", "M", "B", "LS", "G", "EH",
    ];
    let area = gen::pick(rng, AREAS);
    let district = rng.gen_range(1..=20);
    format!(
        "{area}{district} {}{}",
        rng.gen_range(0..10),
        gen::from_alphabet(rng, "ABDEFGHJLNPQRSTUWXYZ", 2)
    )
}

fn v_capostcode(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != ' ').collect();
    let b = compact.as_bytes();
    const INVALID: &[u8] = b"DFIOQU";
    b.len() == 6
        && b[0].is_ascii_uppercase()
        && !INVALID.contains(&b[0])
        && b[0] != b'W'
        && b[0] != b'Z'
        && b[1].is_ascii_digit()
        && b[2].is_ascii_uppercase()
        && !INVALID.contains(&b[2])
        && b[3].is_ascii_digit()
        && b[4].is_ascii_uppercase()
        && !INVALID.contains(&b[4])
        && b[5].is_ascii_digit()
}

fn g_capostcode(rng: &mut StdRng) -> String {
    const FIRST: &str = "ABCEGHJKLMNPRSTVXY";
    const LETTERS: &str = "ABCEGHJKLMNPRSTVWXYZ";
    format!(
        "{}{}{} {}{}{}",
        gen::from_alphabet(rng, FIRST, 1),
        rng.gen_range(0..10),
        gen::from_alphabet(rng, LETTERS, 1),
        rng.gen_range(0..10),
        gen::from_alphabet(rng, LETTERS, 1),
        rng.gen_range(0..10)
    )
}

fn v_mgrs(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != ' ').collect();
    let b = compact.as_bytes();
    if b.len() < 5 {
        return false;
    }
    // Zone: 1-2 digits.
    let zone_len = if b[0].is_ascii_digit() && b.len() > 1 && b[1].is_ascii_digit() {
        2
    } else if b[0].is_ascii_digit() {
        1
    } else {
        return false;
    };
    let zone: u32 = compact[..zone_len].parse().unwrap_or(0);
    if !(1..=60).contains(&zone) {
        return false;
    }
    let rest = &b[zone_len..];
    if rest.len() < 3 {
        return false;
    }
    const BAND: &[u8] = b"CDEFGHJKLMNPQRSTUVWX";
    if !BAND.contains(&rest[0]) {
        return false;
    }
    if !rest[1].is_ascii_uppercase() || !rest[2].is_ascii_uppercase() {
        return false;
    }
    let digits = &rest[3..];
    digits.len().is_multiple_of(2)
        && digits.len() <= 10
        && digits.iter().all(|x| x.is_ascii_digit())
        && !digits.is_empty()
}

fn g_mgrs(rng: &mut StdRng) -> String {
    const BAND: &str = "CDEFGHJKLMNPQRSTUVWX";
    let precision = gen::pick(rng, &["2", "4", "6", "8", "10"]);
    let n: usize = precision.parse().unwrap();
    format!(
        "{}{}{}{}",
        rng.gen_range(1..=60),
        gen::from_alphabet(rng, BAND, 1),
        gen::from_alphabet(rng, "ABCDEFGHJKLMNPQRSTUVWXYZ", 2),
        gen::digits(rng, n)
    )
}

fn v_usng(s: &str) -> bool {
    // USNG is MGRS with spaces between components.
    let parts: Vec<&str> = s.split(' ').collect();
    if parts.len() != 4 {
        return false;
    }
    v_mgrs(&parts.concat()) && parts[2].len() == parts[3].len()
}

fn g_usng(rng: &mut StdRng) -> String {
    const BAND: &str = "CDEFGHJKLMNPQRSTUVWX";
    let n = gen::pick(rng, &["4", "5"]);
    let n: usize = n.parse().unwrap();
    format!(
        "{}{} {} {} {}",
        rng.gen_range(1..=60),
        gen::from_alphabet(rng, BAND, 1),
        gen::from_alphabet(rng, "ABCDEFGHJKLMNPQRSTUVWXYZ", 2),
        gen::digits(rng, n),
        gen::digits(rng, n)
    )
}

fn v_gln(s: &str) -> bool {
    s.len() == 13 && ck::gs1_valid(s)
}

fn g_gln(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 12);
    format!("{body}{}", ck::gs1_check_digit(&body))
}

fn v_utm(s: &str) -> bool {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() != 3 {
        return false;
    }
    let zone_band = parts[0].as_bytes();
    if zone_band.len() < 2 || zone_band.len() > 3 {
        return false;
    }
    let (zone_digits, band) = zone_band.split_at(zone_band.len() - 1);
    const BAND: &[u8] = b"CDEFGHJKLMNPQRSTUVWX";
    let zone: u32 = std::str::from_utf8(zone_digits)
        .ok()
        .and_then(|z| z.parse().ok())
        .unwrap_or(0);
    (1..=60).contains(&zone)
        && BAND.contains(&band[0])
        && (5..=7).contains(&parts[1].len())
        && parts[1].bytes().all(|b| b.is_ascii_digit())
        && (6..=8).contains(&parts[2].len())
        && parts[2].bytes().all(|b| b.is_ascii_digit())
}

fn g_utm(rng: &mut StdRng) -> String {
    const BAND: &str = "CDEFGHJKLMNPQRSTUVWX";
    format!(
        "{}{} {} {}",
        rng.gen_range(1..=60),
        gen::from_alphabet(rng, BAND, 1),
        rng.gen_range(100_000..999_999),
        rng.gen_range(1_000_000..9_999_999)
    )
}

fn v_airport(s: &str) -> bool {
    gen::AIRPORT_CODES.contains(&s)
}

fn g_airport(rng: &mut StdRng) -> String {
    gen::pick(rng, gen::AIRPORT_CODES).to_string()
}

fn v_usstate(s: &str) -> bool {
    gen::US_STATES.contains(&s)
}

fn g_usstate(rng: &mut StdRng) -> String {
    gen::pick(rng, gen::US_STATES).to_string()
}

pub(crate) fn v_country(s: &str) -> bool {
    gen::COUNTRY_CODES_2.contains(&s)
        || gen::COUNTRY_CODES_3.contains(&s)
        || gen::COUNTRY_NAMES.contains(&s)
}

pub(crate) fn g_country(rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => gen::pick(rng, gen::COUNTRY_CODES_2).to_string(),
        1 => gen::pick(rng, gen::COUNTRY_CODES_3).to_string(),
        _ => gen::pick(rng, gen::COUNTRY_NAMES).to_string(),
    }
}

fn v_geojson(s: &str) -> bool {
    if !crate::other::v_json(s) {
        return false;
    }
    const GEOMETRY_TYPES: &[&str] = &[
        "\"Point\"",
        "\"LineString\"",
        "\"Polygon\"",
        "\"MultiPoint\"",
        "\"MultiLineString\"",
        "\"MultiPolygon\"",
        "\"Feature\"",
        "\"FeatureCollection\"",
        "\"GeometryCollection\"",
    ];
    s.contains("\"type\"") && GEOMETRY_TYPES.iter().any(|t| s.contains(t))
}

fn g_geojson(rng: &mut StdRng) -> String {
    let lon = rng.gen_range(-18_000..18_000) as f64 / 100.0;
    let lat = rng.gen_range(-9_000..9_000) as f64 / 100.0;
    match rng.gen_range(0..3) {
        0 => format!("{{\"type\": \"Point\", \"coordinates\": [{lon:.2}, {lat:.2}]}}"),
        1 => format!(
            "{{\"type\": \"LineString\", \"coordinates\": [[{lon:.2}, {lat:.2}], [{:.2}, {:.2}]]}}",
            lon + 1.0,
            lat + 1.0
        ),
        _ => format!(
            "{{\"type\": \"Feature\", \"geometry\": {{\"type\": \"Point\", \"coordinates\": [{lon:.2}, {lat:.2}]}}, \"properties\": {{}}}}"
        ),
    }
}

fn v_taf(s: &str) -> bool {
    let parts: Vec<&str> = s.split_whitespace().collect();
    parts.len() >= 4
        && parts[0] == "TAF"
        && parts[1].len() == 4
        && parts[1].bytes().all(|b| b.is_ascii_uppercase())
        && parts[2].ends_with('Z')
        && parts[2].len() == 7
        && parts[2][..6].bytes().all(|b| b.is_ascii_digit())
}

fn g_taf(rng: &mut StdRng) -> String {
    let station = format!("K{}", gen::pick(rng, gen::AIRPORT_CODES));
    let day = rng.gen_range(1..=28);
    let hour = rng.gen_range(0..24);
    format!(
        "TAF {station} {day:02}{hour:02}30Z {day:02}{hour:02}/{:02}{:02} {:03}{:02}KT P6SM SCT035",
        (day % 28) + 1,
        hour,
        rng.gen_range(1..36) * 10,
        rng.gen_range(3..25)
    )
}

fn v_igsn(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("IGSN") else {
        return false;
    };
    let rest = rest.strip_prefix(':').unwrap_or(rest).trim_start();
    (5..=9).contains(&rest.len())
        && rest
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit())
}

fn g_igsn(rng: &mut StdRng) -> String {
    format!("IGSN{}", {
        let n = rng.gen_range(5..=9);
        gen::from_alphabet(rng, "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipcodes() {
        assert!(v_zipcode("98052"));
        assert!(v_zipcode("98052-1234"));
        assert!(!v_zipcode("9805"));
        assert!(!v_zipcode("98052-123"));
    }

    #[test]
    fn uk_and_ca_postcodes() {
        assert!(v_ukpostcode("SW1A 1AA"));
        assert!(v_ukpostcode("M1 1AE"));
        assert!(v_ukpostcode("EC1A 1BB"));
        assert!(!v_ukpostcode("SW1A1AA"));
        assert!(v_capostcode("K1A 0B1"));
        assert!(!v_capostcode("D1A 0B1")); // D invalid first letter
    }

    #[test]
    fn longlat_ranges() {
        assert!(v_longlat("47.6062, -122.3321"));
        assert!(!v_longlat("97.6062, -122.3321")); // lat out of range
        assert!(!v_longlat("47.6062"));
        assert!(!v_longlat("47, 122")); // no decimal point
    }

    #[test]
    fn utm_and_mgrs() {
        assert!(v_utm("17T 630084 4833438"));
        assert!(!v_utm("77Y 630084 4833438")); // zone > 60
        assert!(v_mgrs("33TWN0002910432"));
        assert!(v_usng("18S UJ 2348 0647"));
        assert!(!v_mgrs("33AWN0002910432")); // A not a band
    }

    #[test]
    fn taf_header() {
        assert!(v_taf("TAF KJFK 041730Z 0418/0524 31008KT P6SM SCT035"));
        assert!(!v_taf("METAR KJFK 041730Z"));
    }
}

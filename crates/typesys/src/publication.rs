//! Publication semantic types: 16 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "ISBN",
            slug: "isbn",
            domain: Domain::Publication,
            keywords: &["ISBN", "international standard book number", "ISBN13"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_isbn,
            generate: g_isbn,
        },
        Spec {
            name: "ISIN",
            slug: "isin",
            domain: Domain::Publication,
            keywords: &[
                "ISIN",
                "ISIN number",
                "international securities identification number",
            ],
            coverage: Coverage::Covered,
            popular: true,
            validate: ck::isin_valid,
            generate: g_isin,
        },
        Spec {
            name: "ISSN",
            slug: "issn",
            domain: Domain::Publication,
            keywords: &["ISSN", "international standard serial number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_issn,
            generate: g_issn,
        },
        Spec {
            name: "Bibcode",
            slug: "bibcode",
            domain: Domain::Publication,
            keywords: &["bibcode", "ADS bibliographic code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_bibcode,
            generate: g_bibcode,
        },
        Spec {
            name: "ISAN",
            slug: "isan",
            domain: Domain::Publication,
            keywords: &["ISAN", "audiovisual number"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_isan,
            generate: g_isan,
        },
        Spec {
            name: "ISWC",
            slug: "iswc",
            domain: Domain::Publication,
            keywords: &["ISWC", "musical work code"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_iswc,
            generate: g_iswc,
        },
        Spec {
            name: "DOI",
            slug: "doi",
            domain: Domain::Publication,
            keywords: &[
                "DOI",
                "DOI identifier",
                "digital object identifier",
                "DOI number",
            ],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_doi,
            generate: g_doi,
        },
        Spec {
            name: "ISRC",
            slug: "isrc",
            domain: Domain::Publication,
            keywords: &["ISRC", "sound recording code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_isrc,
            generate: g_isrc,
        },
        Spec {
            name: "ISMN",
            slug: "ismn",
            domain: Domain::Publication,
            keywords: &["ISMN", "music number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ismn,
            generate: g_ismn,
        },
        Spec {
            name: "ORCID",
            slug: "orcid",
            domain: Domain::Publication,
            keywords: &["ORCID", "researcher identifier"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::orcid_valid,
            generate: g_orcid,
        },
        Spec {
            name: "ONIX message",
            slug: "onix",
            domain: Domain::Publication,
            keywords: &["ONIX publishing protocol", "ONIX message"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_onix,
            generate: g_onix,
        },
        Spec {
            name: "Library of Congress Classification",
            slug: "lcc",
            domain: Domain::Publication,
            keywords: &["Library of Congress Classification", "LCC call number"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_lcc,
            generate: g_lcc,
        },
        Spec {
            name: "ISO 690 citation",
            slug: "iso690",
            domain: Domain::Publication,
            keywords: &["ISO 690 citation", "bibliographic citation"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_iso690,
            generate: g_iso690,
        },
        Spec {
            name: "APA citation",
            slug: "apacitation",
            domain: Domain::Publication,
            keywords: &["APA citation", "APA reference"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_apa,
            generate: g_apa,
        },
        Spec {
            name: "National Bibliography Number",
            slug: "nbn",
            domain: Domain::Publication,
            keywords: &["National Bibliography Number", "NBN urn"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_nbn,
            generate: g_nbn,
        },
        Spec {
            name: "Electronic Textbook Track Number",
            slug: "ettn",
            domain: Domain::Publication,
            keywords: &["Electronic Textbook Track Number", "ETTN"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_ettn,
            generate: g_ettn,
        },
    ]
}

/// ISBN-13 (GS1, 978/979 prefix) or ISBN-10, with optional dashes/spaces.
pub(crate) fn v_isbn(s: &str) -> bool {
    let compact: String = s
        .chars()
        .filter(|c| *c != '-' && *c != ' ')
        .collect::<String>()
        .to_ascii_uppercase();
    let compact = compact.strip_prefix("ISBN").unwrap_or(&compact);
    match compact.len() {
        13 => (compact.starts_with("978") || compact.starts_with("979")) && ck::gs1_valid(compact),
        10 => ck::isbn10_valid(compact),
        _ => false,
    }
}

pub(crate) fn g_isbn(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.7) {
        // ISBN-13.
        let prefix = if rng.gen_bool(0.9) { "978" } else { "979" };
        let body = format!("{prefix}{}", gen::digits(rng, 9));
        let full = format!("{body}{}", ck::gs1_check_digit(&body));
        if rng.gen_bool(0.3) {
            format!(
                "{}-{}-{}-{}-{}",
                &full[..3],
                &full[3..4],
                &full[4..7],
                &full[7..12],
                &full[12..]
            )
        } else {
            full
        }
    } else {
        let body = gen::digits(rng, 9);
        format!("{body}{}", ck::isbn10_check_char(&body))
    }
}

fn g_isin(rng: &mut StdRng) -> String {
    let country = gen::pick(rng, gen::COUNTRY_CODES_2);
    let body = format!("{country}{}", gen::digits(rng, 9));
    // Compute the Luhn check digit over the expanded form.
    let mut expanded = String::new();
    for c in body.chars() {
        match c {
            '0'..='9' => expanded.push(c),
            _ => expanded.push_str(&(c as u32 - 'A' as u32 + 10).to_string()),
        }
    }
    let check = ck::luhn_check_digit(&expanded);
    format!("{body}{check}")
}

pub(crate) fn v_issn(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != '-').collect();
    ck::issn_valid(&compact)
}

pub(crate) fn g_issn(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 7);
    let full = format!("{body}{}", ck::issn_check_char(&body));
    if rng.gen_bool(0.6) {
        format!("{}-{}", &full[..4], &full[4..])
    } else {
        full
    }
}

fn v_bibcode(s: &str) -> bool {
    // YYYYJJJJJVVVVMPPPPA: 19 characters.
    let b = s.as_bytes();
    if b.len() != 19 {
        return false;
    }
    let year: u32 = match s[..4].parse() {
        Ok(y) => y,
        Err(_) => return false,
    };
    (1800..=2030).contains(&year)
        && b[4..18]
            .iter()
            .all(|x| x.is_ascii_alphanumeric() || *x == b'.' || *x == b'&')
        && b[18].is_ascii_uppercase()
}

fn g_bibcode(rng: &mut StdRng) -> String {
    const JOURNALS: &[&str] = &["ApJ..", "MNRAS", "A&A..", "AJ...", "PhRvL", "Natur"];
    let year = rng.gen_range(1950..2024);
    let journal = gen::pick(rng, JOURNALS);
    let volume = format!("{:.>4}", rng.gen_range(1..999));
    let page = format!("{:.>5}", rng.gen_range(1..99999));
    let initial = gen::upper(rng, 1);
    format!("{year}{journal}{volume}{page}{initial}")
        .chars()
        .take(19)
        .collect()
}

fn v_isan(s: &str) -> bool {
    // ISAN root: 4 groups of 4 hex (16 hex digits), dash separated, with an
    // optional version part. Structure-only validation.
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() >= 4
        && parts[..4]
            .iter()
            .all(|p| p.len() == 4 && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

fn g_isan(rng: &mut StdRng) -> String {
    let groups: Vec<String> = (0..4)
        .map(|_| gen::from_alphabet(rng, "0123456789ABCDEF", 4))
        .collect();
    groups.join("-")
}

/// ISWC: `T-DDDDDDDDD-C` where C is a weighted mod-10 check digit
/// (ISO 15707: check = (10 - (1 + Σ (i+1)·d_i) mod 10) mod 10).
fn v_iswc(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != '-' && *c != '.').collect();
    let b = compact.as_bytes();
    if b.len() != 11 || b[0] != b'T' {
        return false;
    }
    if !b[1..].iter().all(|x| x.is_ascii_digit()) {
        return false;
    }
    let digits: Vec<u32> = b[1..10].iter().map(|x| (x - b'0') as u32).collect();
    let sum: u32 = 1 + digits
        .iter()
        .enumerate()
        .map(|(i, d)| (i as u32 + 1) * d)
        .sum::<u32>();
    (10 - sum % 10) % 10 == (b[10] - b'0') as u32
}

fn g_iswc(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 9);
    let digits: Vec<u32> = body.bytes().map(|x| (x - b'0') as u32).collect();
    let sum: u32 = 1 + digits
        .iter()
        .enumerate()
        .map(|(i, d)| (i as u32 + 1) * d)
        .sum::<u32>();
    let check = (10 - sum % 10) % 10;
    format!("T-{}.{}.{}-{check}", &body[..3], &body[3..6], &body[6..])
}

pub(crate) fn v_doi(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("10.") else {
        return false;
    };
    let Some((registrant, suffix)) = rest.split_once('/') else {
        return false;
    };
    (4..=5).contains(&registrant.len())
        && registrant.bytes().all(|b| b.is_ascii_digit())
        && !suffix.is_empty()
        && suffix.chars().all(|c| c.is_ascii_graphic())
}

fn g_doi(rng: &mut StdRng) -> String {
    format!(
        "10.{}/{}.{}",
        {
            let n = rng.gen_range(4..=5);
            gen::digits_nz(rng, n)
        },
        {
            let n = rng.gen_range(4..9);
            gen::lower(rng, n)
        },
        {
            let n = rng.gen_range(4..8);
            gen::digits(rng, n)
        }
    )
}

fn v_isrc(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != '-').collect();
    let b = compact.as_bytes();
    b.len() == 12
        && b[0].is_ascii_uppercase()
        && b[1].is_ascii_uppercase()
        && b[2..5]
            .iter()
            .all(|x| x.is_ascii_alphanumeric() && !x.is_ascii_lowercase())
        && b[5..7].iter().all(|x| x.is_ascii_digit())
        && b[7..].iter().all(|x| x.is_ascii_digit())
}

fn g_isrc(rng: &mut StdRng) -> String {
    let country = gen::pick(rng, gen::COUNTRY_CODES_2);
    let registrant = gen::from_alphabet(rng, "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", 3);
    let year = format!("{:02}", rng.gen_range(0..24));
    let designation = gen::digits(rng, 5);
    if rng.gen_bool(0.5) {
        format!("{country}-{registrant}-{year}-{designation}")
    } else {
        format!("{country}{registrant}{year}{designation}")
    }
}

fn v_ismn(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| *c != '-' && *c != ' ').collect();
    compact.len() == 13 && compact.starts_with("9790") && ck::gs1_valid(&compact)
}

fn g_ismn(rng: &mut StdRng) -> String {
    let body = format!("9790{}", gen::digits(rng, 8));
    format!("{body}{}", ck::gs1_check_digit(&body))
}

fn g_orcid(rng: &mut StdRng) -> String {
    let body = gen::digits(rng, 15);
    let check = ck::mod11_2_check_char(&body).expect("digit body");
    let full = format!("{body}{check}");
    format!(
        "{}-{}-{}-{}",
        &full[..4],
        &full[4..8],
        &full[8..12],
        &full[12..]
    )
}

fn v_onix(s: &str) -> bool {
    s.trim_start().starts_with("<ONIXMessage")
        && s.contains("</ONIXMessage>")
        && crate::other::v_xml(s)
}

fn g_onix(rng: &mut StdRng) -> String {
    format!(
        "<ONIXMessage><Header><Sender>{}</Sender></Header><Product><RecordReference>{}</RecordReference></Product></ONIXMessage>",
        gen::upper(rng, 5),
        gen::digits(rng, 8)
    )
}

fn v_lcc(s: &str) -> bool {
    // e.g. "QA76.73.R87 2018": 1-3 class letters + number, optional cutters.
    let b = s.as_bytes();
    if b.is_empty() || !b[0].is_ascii_uppercase() {
        return false;
    }
    let letters = s.chars().take_while(|c| c.is_ascii_uppercase()).count();
    if !(1..=3).contains(&letters) {
        return false;
    }
    let rest = &s[letters..];
    let digits = rest.chars().take_while(|c| c.is_ascii_digit()).count();
    digits >= 1
        && rest
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == ' ')
}

fn g_lcc(rng: &mut StdRng) -> String {
    const CLASSES: &[&str] = &["QA", "QC", "TK", "HB", "PS", "ML", "RC", "KF", "Z", "BF"];
    let class = gen::pick(rng, CLASSES);
    let num = rng.gen_range(1..9999);
    if rng.gen_bool(0.6) {
        format!(
            "{class}{num}.{}{} {}",
            gen::upper(rng, 1),
            gen::digits(rng, 2),
            rng.gen_range(1950..2024)
        )
    } else {
        format!("{class}{num}")
    }
}

fn v_iso690(s: &str) -> bool {
    // "SURNAME, Given. Title. Place: Publisher, Year."
    let has_author = s
        .split(',')
        .next()
        .is_some_and(|a| a.len() >= 2 && a.chars().all(|c| c.is_ascii_uppercase() || c == ' '));
    has_author && s.contains(": ") && s.trim_end().ends_with('.') && s.matches('.').count() >= 2
}

fn g_iso690(rng: &mut StdRng) -> String {
    let last = gen::pick(rng, gen::LAST_NAMES).to_uppercase();
    let first = gen::pick(rng, gen::FIRST_NAMES);
    let title = gen::pick(rng, gen::BOOK_TITLES);
    let city = gen::pick(rng, gen::CITIES);
    format!(
        "{last}, {first}. {title}. {city}: Academic Press, {}.",
        rng.gen_range(1970..2024)
    )
}

fn v_apa(s: &str) -> bool {
    // "Author, A. B. (Year). Title. Journal, Vol(Iss), pages."
    let Some(open) = s.find('(') else {
        return false;
    };
    let Some(close) = s.find(')') else {
        return false;
    };
    if close <= open + 4 {
        return false;
    }
    let year = &s[open + 1..open + 5];
    s.contains(", ") && year.bytes().all(|b| b.is_ascii_digit()) && s[close..].contains('.')
}

fn g_apa(rng: &mut StdRng) -> String {
    let last = gen::pick(rng, gen::LAST_NAMES);
    let initial = gen::upper(rng, 1);
    let title = gen::pick(rng, gen::BOOK_TITLES);
    format!(
        "{last}, {initial}. ({}). {title}. Journal of Examples, {}({}), {}-{}.",
        rng.gen_range(1980..2024),
        rng.gen_range(1..50),
        rng.gen_range(1..12),
        rng.gen_range(1..500),
        rng.gen_range(500..999)
    )
}

fn v_nbn(s: &str) -> bool {
    let parts: Vec<&str> = s.split(':').collect();
    parts.len() >= 4
        && parts[0] == "urn"
        && parts[1] == "nbn"
        && parts[2].len() == 2
        && parts[2].bytes().all(|b| b.is_ascii_lowercase())
        && !parts[3].is_empty()
}

fn g_nbn(rng: &mut StdRng) -> String {
    let country = gen::pick(rng, gen::COUNTRY_CODES_2).to_lowercase();
    format!(
        "urn:nbn:{country}:{}-{}",
        gen::lower(rng, 3),
        gen::digits(rng, 7)
    )
}

fn v_ettn(s: &str) -> bool {
    // Synthetic stand-in: `ETTN-` + 10 digits (documented in DESIGN.md).
    s.strip_prefix("ETTN-")
        .map(|d| d.len() == 10 && d.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or(false)
}

fn g_ettn(rng: &mut StdRng) -> String {
    format!("ETTN-{}", gen::digits(rng, 10))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isbn_both_lengths_and_dashes() {
        assert!(v_isbn("9784063641561"));
        assert!(v_isbn("978-4-06-364156-1"));
        assert!(v_isbn("0306406152"));
        assert!(v_isbn("ISBN 9784063641561"));
        assert!(!v_isbn("9784063641562"));
        assert!(!v_isbn("5784063641561")); // must start 978/979
    }

    #[test]
    fn doi_shape() {
        assert!(v_doi("10.1145/3183713.3196888")); // the paper's own DOI
        assert!(!v_doi("11.1145/318"));
        assert!(!v_doi("10.1145"));
    }

    #[test]
    fn iswc_checksum() {
        // T-034524680-1: check over 034524680.
        let mut rng = rand::SeedableRng::seed_from_u64(6);
        for _ in 0..10 {
            let w = g_iswc(&mut rng);
            assert!(v_iswc(&w), "{w}");
        }
        assert!(!v_iswc("T-000000001-5"));
    }

    #[test]
    fn isrc_shape() {
        assert!(v_isrc("USRC17607839"));
        assert!(v_isrc("US-RC1-76-07839"));
        assert!(!v_isrc("usrc17607839"));
    }

    #[test]
    fn bibcode_shape() {
        assert!(v_bibcode(
            "2018ApJ...859...101Z"
                .get(..19)
                .map(|_| "2018ApJ...859.0101Z")
                .unwrap()
        ));
        assert!(!v_bibcode("1700ApJ...859.0101Z"));
    }

    #[test]
    fn nbn_and_lcc() {
        assert!(v_nbn("urn:nbn:de:101-2018042401"));
        assert!(!v_nbn("urn:isbn:de:101"));
        assert!(v_lcc("QA76.73"));
        assert!(!v_lcc("qa76"));
    }
}

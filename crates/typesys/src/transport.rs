//! Transportation semantic types: 3 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "Vehicle Identification Number",
            slug: "vin",
            domain: Domain::Transport,
            keywords: &["VIN", "Vehicle Identification Number", "VIN number"],
            coverage: Coverage::Covered,
            popular: true,
            validate: ck::vin_valid,
            generate: g_vin,
        },
        Spec {
            name: "UIC wagon number",
            slug: "uic",
            domain: Domain::Transport,
            keywords: &["UIC wagon number", "railway wagon number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_uic,
            generate: g_uic,
        },
        Spec {
            name: "IMO ship number",
            slug: "imo",
            domain: Domain::Transport,
            keywords: &["IMO number", "International Maritime Organization number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::imo_valid,
            generate: g_imo,
        },
    ]
}

pub(crate) fn g_vin(rng: &mut StdRng) -> String {
    const VIN_CHARS: &str = "0123456789ABCDEFGHJKLMNPRSTUVWXYZ";
    const WEIGHTS: [u32; 17] = [8, 7, 6, 5, 4, 3, 2, 10, 0, 9, 8, 7, 6, 5, 4, 3, 2];
    loop {
        let mut chars: Vec<char> = (0..17)
            .map(|_| {
                let alphabet: Vec<char> = VIN_CHARS.chars().collect();
                alphabet[rng.gen_range(0..alphabet.len())]
            })
            .collect();
        let sum: u32 = chars
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 8)
            .map(|(i, c)| WEIGHTS[i] * ck::vin_translit(*c).expect("vin alphabet"))
            .sum();
        chars[8] = match sum % 11 {
            10 => 'X',
            d => (b'0' + d as u8) as char,
        };
        let vin: String = chars.into_iter().collect();
        if ck::vin_valid(&vin) {
            return vin;
        }
    }
}

/// UIC wagon number: 12 digits (often grouped) with a Luhn check digit.
fn v_uic(s: &str) -> bool {
    let compact: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    if compact.len() != 12 {
        return false;
    }
    if s.chars()
        .any(|c| !c.is_ascii_digit() && c != ' ' && c != '-')
    {
        return false;
    }
    ck::luhn_valid(&compact)
}

fn g_uic(rng: &mut StdRng) -> String {
    let body = format!("{}{}", rng.gen_range(31..=99), gen::digits(rng, 9));
    let full = format!("{body}{}", ck::luhn_check_digit(&body));
    if rng.gen_bool(0.5) {
        format!(
            "{} {} {} {}-{}",
            &full[..2],
            &full[2..4],
            &full[4..8],
            &full[8..11],
            &full[11..]
        )
    } else {
        full
    }
}

fn g_imo(rng: &mut StdRng) -> String {
    let body = gen::digits_nz(rng, 6);
    let d: Vec<u32> = body.bytes().map(|b| (b - b'0') as u32).collect();
    let sum: u32 = (0..6).map(|i| d[i] * (7 - i as u32)).sum();
    let digits = format!("{body}{}", sum % 10);
    if rng.gen_bool(0.6) {
        format!("IMO {digits}")
    } else {
        digits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uic_luhn() {
        // 12-digit Luhn-valid number.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = g_uic(&mut rng);
            assert!(v_uic(&v), "{v}");
        }
        assert!(!v_uic("318749501230")); // arbitrary, almost surely invalid? verify below
    }

    #[test]
    fn uic_rejects_wrong_length_and_chars() {
        assert!(!v_uic("3187495012"));
        assert!(!v_uic("31a874950123"));
    }

    #[test]
    fn generated_vins_validate() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let vin = g_vin(&mut rng);
            assert!(ck::vin_valid(&vin), "{vin}");
            assert!(!vin.contains('I') && !vin.contains('O') && !vin.contains('Q'));
        }
    }
}

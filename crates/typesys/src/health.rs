//! Health-domain semantic types: 8 types.

use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "drug name",
            slug: "drugname",
            domain: Domain::Health,
            keywords: &["drug name", "medication name"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_drugname,
            generate: g_drugname,
        },
        Spec {
            name: "DEA number",
            slug: "dea",
            domain: Domain::Health,
            keywords: &["DEA number", "DEA registration"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_dea,
            generate: g_dea,
        },
        Spec {
            name: "ICD-9 code",
            slug: "icd9",
            domain: Domain::Health,
            keywords: &["ICD9", "ICD-9 diagnosis code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_icd9,
            generate: g_icd9,
        },
        Spec {
            name: "ICD-10 code",
            slug: "icd10",
            domain: Domain::Health,
            keywords: &["ICD10", "ICD-10 diagnosis code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_icd10,
            generate: g_icd10,
        },
        Spec {
            name: "HL7 message",
            slug: "hl7",
            domain: Domain::Health,
            keywords: &["HL7 message", "HL7 v2"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_hl7,
            generate: g_hl7,
        },
        Spec {
            name: "HCPCS code",
            slug: "hcpcs",
            domain: Domain::Health,
            keywords: &["HCPCS code", "healthcare procedure code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_hcpcs,
            generate: g_hcpcs,
        },
        Spec {
            name: "FDA drug code",
            slug: "ndc",
            domain: Domain::Health,
            keywords: &["FDA drug code", "NDC national drug code"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ndc,
            generate: g_ndc,
        },
        Spec {
            name: "Active Ingredient Group number",
            slug: "aig",
            domain: Domain::Health,
            keywords: &["active ingredient group", "AIG number"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_aig,
            generate: g_aig,
        },
    ]
}

fn v_drugname(s: &str) -> bool {
    gen::DRUG_NAMES
        .iter()
        .any(|d| d.eq_ignore_ascii_case(s.trim()))
}

fn g_drugname(rng: &mut StdRng) -> String {
    gen::pick(rng, gen::DRUG_NAMES).to_string()
}

/// DEA: two letters (registrant type + last-name initial) + 7 digits, where
/// `(d1+d3+d5) + 2*(d2+d4+d6)` has units digit `d7`.
fn v_dea(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 9 {
        return false;
    }
    if !b"ABFGMPRX".contains(&b[0]) || !b[1].is_ascii_uppercase() {
        return false;
    }
    if !b[2..].iter().all(|x| x.is_ascii_digit()) {
        return false;
    }
    let d: Vec<u32> = b[2..].iter().map(|x| (x - b'0') as u32).collect();
    let sum = (d[0] + d[2] + d[4]) + 2 * (d[1] + d[3] + d[5]);
    sum % 10 == d[6]
}

fn g_dea(rng: &mut StdRng) -> String {
    let t = gen::pick(rng, &["A", "B", "F", "G", "M", "P", "R"]);
    let initial = gen::upper(rng, 1);
    let body = gen::digits(rng, 6);
    let d: Vec<u32> = body.bytes().map(|x| (x - b'0') as u32).collect();
    let check = ((d[0] + d[2] + d[4]) + 2 * (d[1] + d[3] + d[5])) % 10;
    format!("{t}{initial}{body}{check}")
}

fn v_icd9(s: &str) -> bool {
    let (head, tail) = match s.split_once('.') {
        Some((h, t)) => (h, Some(t)),
        None => (s, None),
    };
    let head_ok = match head.as_bytes() {
        [b'E', rest @ ..] => rest.len() == 3 && rest.iter().all(|b| b.is_ascii_digit()),
        [b'V', rest @ ..] => rest.len() == 2 && rest.iter().all(|b| b.is_ascii_digit()),
        digits => digits.len() == 3 && digits.iter().all(|b| b.is_ascii_digit()),
    };
    let tail_ok = match tail {
        None => true,
        Some(t) => (1..=2).contains(&t.len()) && t.bytes().all(|b| b.is_ascii_digit()),
    };
    head_ok && tail_ok
}

fn g_icd9(rng: &mut StdRng) -> String {
    let head = match rng.gen_range(0..10) {
        0 => format!("E{}", gen::digits(rng, 3)),
        1 => format!("V{}", gen::digits(rng, 2)),
        _ => gen::digits(rng, 3),
    };
    if rng.gen_bool(0.6) {
        format!("{head}.{}", {
            let n = rng.gen_range(1..=2);
            gen::digits(rng, n)
        })
    } else {
        head
    }
}

fn v_icd10(s: &str) -> bool {
    let (head, tail) = match s.split_once('.') {
        Some((h, t)) => (h, Some(t)),
        None => (s, None),
    };
    let hb = head.as_bytes();
    let head_ok = hb.len() == 3
        && hb[0].is_ascii_uppercase()
        && hb[0] != b'U'
        && hb[1].is_ascii_digit()
        && (hb[2].is_ascii_digit() || hb[2].is_ascii_uppercase());
    let tail_ok = match tail {
        None => true,
        Some(t) => (1..=4).contains(&t.len()) && t.bytes().all(|b| b.is_ascii_alphanumeric()),
    };
    head_ok && tail_ok
}

fn g_icd10(rng: &mut StdRng) -> String {
    let letter = gen::from_alphabet(rng, "ABCDEFGHIJKLMNOPQRSTVWXYZ", 1);
    let head = format!("{letter}{}", gen::digits(rng, 2));
    if rng.gen_bool(0.7) {
        format!("{head}.{}", {
            let n = rng.gen_range(1..=3);
            gen::digits(rng, n)
        })
    } else {
        head
    }
}

fn v_hl7(s: &str) -> bool {
    s.starts_with("MSH|^~\\&|") && s.split('|').count() >= 8
}

fn g_hl7(rng: &mut StdRng) -> String {
    let app = gen::pick(rng, &["EPIC", "CERNER", "LAB", "ADT1", "MEDITECH"]);
    let date = format!(
        "20{:02}{:02}{:02}1200",
        rng.gen_range(10..24),
        rng.gen_range(1..13),
        rng.gen_range(1..29)
    );
    format!(
        "MSH|^~\\&|{app}|HOSP|RCV|FAC|{date}||ADT^A01|MSG{}|P|2.3",
        gen::digits(rng, 5)
    )
}

fn v_hcpcs(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 5
        && b[0].is_ascii_uppercase()
        && (b'A'..=b'V').contains(&b[0])
        && b[1..].iter().all(|x| x.is_ascii_digit())
}

fn g_hcpcs(rng: &mut StdRng) -> String {
    format!(
        "{}{}",
        gen::from_alphabet(rng, "ABCDEGHJKLMPQRSTV", 1),
        gen::digits(rng, 4)
    )
}

fn v_ndc(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return false;
    }
    let lens = (parts[0].len(), parts[1].len(), parts[2].len());
    matches!(lens, (4..=5, 3..=4, 1..=2))
        && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
}

fn g_ndc(rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}",
        {
            let n = rng.gen_range(4..=5);
            gen::digits(rng, n)
        },
        {
            let n = rng.gen_range(3..=4);
            gen::digits(rng, n)
        },
        {
            let n = rng.gen_range(1..=2);
            gen::digits(rng, n)
        }
    )
}

fn v_aig(s: &str) -> bool {
    // Synthetic stand-in: `AIG` + 7 digits (documented in DESIGN.md).
    s.strip_prefix("AIG")
        .map(|d| d.len() == 7 && d.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or(false)
}

fn g_aig(rng: &mut StdRng) -> String {
    format!("AIG{}", gen::digits(rng, 7))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dea_checksum() {
        // Classic example: AP5836727 (sum check).
        assert!(v_dea("AP5836727"));
        assert!(!v_dea("AP5836726"));
        assert!(!v_dea("ZP5836727")); // bad registrant type
    }

    #[test]
    fn icd_codes() {
        assert!(v_icd9("250.01"));
        assert!(v_icd9("V22.1"));
        assert!(v_icd9("E850"));
        assert!(!v_icd9("25.01"));
        assert!(v_icd10("E11.9"));
        assert!(v_icd10("S72.001A"));
        assert!(!v_icd10("U07.1")); // U reserved
    }

    #[test]
    fn hl7_and_ndc() {
        assert!(v_hl7(
            "MSH|^~\\&|EPIC|HOSP|RCV|FAC|202001011200||ADT^A01|MSG1|P|2.3"
        ));
        assert!(!v_hl7("PID|1|12345"));
        assert!(v_ndc("0777-3105-02"));
        assert!(!v_ndc("0777-3105"));
    }

    #[test]
    fn hcpcs_shape() {
        assert!(v_hcpcs("J1100"));
        assert!(!v_hcpcs("W1100")); // W not in A..V? W <= V is false
        assert!(!v_hcpcs("J110"));
    }
}

//! Science-domain semantic types (biology, chemistry): 14 types.

use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "SMILES notation",
            slug: "smiles",
            domain: Domain::Science,
            keywords: &["SMILES", "SMILES notation", "molecule smiles parser"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_smiles,
            generate: g_smiles,
        },
        Spec {
            name: "International Chemical Identifier",
            slug: "inchi",
            domain: Domain::Science,
            keywords: &["InChI", "international chemical identifier"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_inchi,
            generate: g_inchi,
        },
        Spec {
            name: "CAS registry number",
            slug: "cas",
            domain: Domain::Science,
            keywords: &["CAS registry", "CAS number", "chemical abstracts"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_cas,
            generate: g_cas,
        },
        Spec {
            name: "FASTA sequence",
            slug: "fasta",
            domain: Domain::Science,
            keywords: &["FASTA sequence", "FASTA gene sequence", "FASTA"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_fasta,
            generate: g_fasta,
        },
        Spec {
            name: "FASTQ gene sequence",
            slug: "fastq",
            domain: Domain::Science,
            keywords: &["FASTQ", "FASTQ sequence"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_fastq,
            generate: g_fastq,
        },
        Spec {
            name: "chemical formula",
            slug: "chemformula",
            domain: Domain::Science,
            keywords: &["chemical formula", "molecular formula"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_chem_formula,
            generate: g_chem_formula,
        },
        Spec {
            name: "Uniprot accession",
            slug: "uniprot",
            domain: Domain::Science,
            keywords: &["Uniprot", "protein accession"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_uniprot,
            generate: g_uniprot,
        },
        Spec {
            name: "Ensembl gene ID",
            slug: "ensembl",
            domain: Domain::Science,
            keywords: &["Ensembl gene", "Ensembl ID"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_ensembl,
            generate: g_ensembl,
        },
        Spec {
            name: "Life Science Identifier",
            slug: "lsid",
            domain: Domain::Science,
            keywords: &["LSID", "life science identifier"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_lsid,
            generate: g_lsid,
        },
        Spec {
            name: "IUPAC name",
            slug: "iupac",
            domain: Domain::Science,
            keywords: &["IUPAC number", "IUPAC name"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_iupac,
            generate: g_iupac,
        },
        Spec {
            name: "EVMPD code",
            slug: "evmpd",
            domain: Domain::Science,
            keywords: &["EVMPD", "EudraVigilance product"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_evmpd,
            generate: g_evmpd,
        },
        Spec {
            name: "Anatomical Therapeutic Chemical code",
            slug: "atc",
            domain: Domain::Science,
            keywords: &["ATC code", "anatomical therapeutic chemical"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_atc,
            generate: g_atc,
        },
        Spec {
            name: "SNP ID",
            slug: "snpid",
            domain: Domain::Science,
            keywords: &["SNPID", "rs number", "SNP identifier"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_snpid,
            generate: g_snpid,
        },
        Spec {
            name: "International Code of Zoological Nomenclature",
            slug: "iczn",
            domain: Domain::Science,
            keywords: &["zoological nomenclature", "binomial name"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_iczn,
            generate: g_iczn,
        },
    ]
}

// --- SMILES ---------------------------------------------------------------

const SMILES_POOL: &[&str] = &[
    "CC(=O)Oc1ccccc1C(=O)O",
    "CCO",
    "C1CCCCC1",
    "c1ccccc1",
    "CC(C)CC(=O)O",
    "O=C(O)c1ccccc1",
    "CN1C=NC2=C1C(=O)N(C(=O)N2C)C",
    "C(C(=O)O)N",
    "CCN(CC)CC",
    "OCC(O)C(O)C(O)C(O)CO",
];

fn v_smiles(s: &str) -> bool {
    if s.is_empty() || s.len() > 200 {
        return false;
    }
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let allowed = |c: char| c.is_ascii_alphanumeric() || "()[]=#@+-/\\%.".contains(c);
    for c in s.chars() {
        if !allowed(c) {
            return false;
        }
        match c {
            '(' => paren += 1,
            ')' => {
                paren -= 1;
                if paren < 0 {
                    return false;
                }
            }
            '[' => bracket += 1,
            ']' => {
                bracket -= 1;
                if bracket < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    // Must start with an atom and contain at least one letter.
    let first = s.chars().next().unwrap();
    (first.is_ascii_alphabetic() || first == '[')
        && paren == 0
        && bracket == 0
        && s.chars().any(|c| c.is_ascii_alphabetic())
}

fn g_smiles(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.5) {
        gen::pick(rng, SMILES_POOL).to_string()
    } else {
        // Random alkane/alcohol chain.
        let n = rng.gen_range(2..10);
        let mut s = String::new();
        for _ in 0..n {
            s.push('C');
            if rng.gen_bool(0.2) {
                s.push_str("(C)");
            }
        }
        if rng.gen_bool(0.5) {
            s.push('O');
        }
        s
    }
}

// --- InChI ----------------------------------------------------------------

fn v_inchi(s: &str) -> bool {
    let Some(rest) = s
        .strip_prefix("InChI=1S/")
        .or_else(|| s.strip_prefix("InChI=1/"))
    else {
        return false;
    };
    let mut layers = rest.split('/');
    let formula = match layers.next() {
        Some(f) if !f.is_empty() => f,
        _ => return false,
    };
    v_chem_formula(formula) && rest.chars().all(|c| c.is_ascii_graphic())
}

fn g_inchi(rng: &mut StdRng) -> String {
    let formula = g_chem_formula(rng);
    let n = rng.gen_range(2..6);
    let carbons: Vec<String> = (1..=n).map(|i| i.to_string()).collect();
    format!("InChI=1S/{formula}/c{}", carbons.join("-"))
}

// --- CAS registry number ----------------------------------------------------

fn v_cas(s: &str) -> bool {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return false;
    }
    let (a, b, c) = (parts[0], parts[1], parts[2]);
    if !(2..=7).contains(&a.len()) || b.len() != 2 || c.len() != 1 {
        return false;
    }
    if ![a, b, c]
        .iter()
        .all(|p| p.bytes().all(|x| x.is_ascii_digit()))
    {
        return false;
    }
    let digits: Vec<u32> = a
        .bytes()
        .chain(b.bytes())
        .map(|x| (x - b'0') as u32)
        .collect();
    let sum: u32 = digits
        .iter()
        .rev()
        .enumerate()
        .map(|(i, d)| (i as u32 + 1) * d)
        .sum();
    sum % 10 == (c.as_bytes()[0] - b'0') as u32
}

fn g_cas(rng: &mut StdRng) -> String {
    let a = {
        let n = rng.gen_range(2..=7);
        gen::digits_nz(rng, n)
    };
    let b = gen::digits(rng, 2);
    let digits: Vec<u32> = a
        .bytes()
        .chain(b.bytes())
        .map(|x| (x - b'0') as u32)
        .collect();
    let sum: u32 = digits
        .iter()
        .rev()
        .enumerate()
        .map(|(i, d)| (i as u32 + 1) * d)
        .sum();
    format!("{a}-{b}-{}", sum % 10)
}

// --- FASTA / FASTQ ----------------------------------------------------------

fn v_fasta(s: &str) -> bool {
    let mut lines = s.lines();
    let Some(header) = lines.next() else {
        return false;
    };
    if !header.starts_with('>') || header.len() < 2 {
        return false;
    }
    let mut saw_seq = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if !line
            .chars()
            .all(|c| "ACGTUNacgtun".contains(c) || "RYKMSWBDHV".contains(c.to_ascii_uppercase()))
        {
            return false;
        }
        saw_seq = true;
    }
    saw_seq
}

fn g_fasta(rng: &mut StdRng) -> String {
    let id = format!(">seq_{}", gen::digits(rng, 4));
    let lines = rng.gen_range(1..=3);
    let mut out = id;
    for _ in 0..lines {
        out.push('\n');
        out.push_str(&{
            let n = rng.gen_range(20..60);
            gen::from_alphabet(rng, "ACGT", n)
        });
    }
    out
}

fn v_fastq(s: &str) -> bool {
    let lines: Vec<&str> = s.lines().collect();
    if lines.len() != 4 {
        return false;
    }
    lines[0].starts_with('@')
        && lines[0].len() > 1
        && !lines[1].is_empty()
        && lines[1].chars().all(|c| "ACGTN".contains(c))
        && lines[2].starts_with('+')
        && lines[3].len() == lines[1].len()
        && lines[3].bytes().all(|b| (b'!'..=b'~').contains(&b))
}

fn g_fastq(rng: &mut StdRng) -> String {
    let n = rng.gen_range(20..50);
    let seq = gen::from_alphabet(rng, "ACGT", n);
    let qual = gen::from_alphabet(rng, "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHI", n);
    format!("@read_{}\n{seq}\n+\n{qual}", gen::digits(rng, 5))
}

// --- Chemical formula -------------------------------------------------------

pub(crate) fn v_chem_formula(s: &str) -> bool {
    if s.is_empty() || s.len() > 60 {
        return false;
    }
    let chars: Vec<char> = s.chars().collect();
    let mut i = 0;
    let mut tokens = 0;
    while i < chars.len() {
        // Try a two-letter element first, then one-letter.
        let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
        let one: String = chars[i..i + 1].iter().collect();
        if two.len() == 2 && gen::ELEMENTS.contains(&two.as_str()) {
            i += 2;
        } else if gen::ELEMENTS.contains(&one.as_str()) {
            i += 1;
        } else {
            return false;
        }
        // Optional count.
        let mut count_len = 0;
        while i + count_len < chars.len() && chars[i + count_len].is_ascii_digit() {
            count_len += 1;
        }
        if count_len > 0 && chars[i] == '0' {
            return false;
        }
        i += count_len;
        tokens += 1;
    }
    tokens >= 1
}

pub(crate) fn g_chem_formula(rng: &mut StdRng) -> String {
    const POOL: &[&str] = &[
        "H2O",
        "CO2",
        "C6H12O6",
        "NaCl",
        "H2SO4",
        "CaCO3",
        "C2H5OH",
        "NH3",
        "CH4",
        "C8H10N4O2",
        "C9H8O4",
        "KMnO4",
        "Fe2O3",
        "MgSO4",
        "C6H6",
    ];
    if rng.gen_bool(0.6) {
        gen::pick(rng, POOL).to_string()
    } else {
        let c = rng.gen_range(1..20);
        let h = rng.gen_range(1..40);
        let o = rng.gen_range(1..10);
        format!("C{c}H{h}O{o}")
    }
}

// --- Uniprot / Ensembl ------------------------------------------------------

fn v_uniprot(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() != 6 {
        return false;
    }
    // Form 1: [OPQ][0-9][A-Z0-9]{3}[0-9]
    let form1 = matches!(b[0], b'O' | b'P' | b'Q')
        && b[1].is_ascii_digit()
        && b[2..5]
            .iter()
            .all(|x| x.is_ascii_uppercase() || x.is_ascii_digit())
        && b[5].is_ascii_digit();
    // Form 2: [A-NR-Z][0-9][A-Z][A-Z0-9]{2}[0-9]
    let form2 = (b[0].is_ascii_uppercase() && !matches!(b[0], b'O' | b'P' | b'Q'))
        && b[1].is_ascii_digit()
        && b[2].is_ascii_uppercase()
        && b[3..5]
            .iter()
            .all(|x| x.is_ascii_uppercase() || x.is_ascii_digit())
        && b[5].is_ascii_digit();
    form1 || form2
}

fn g_uniprot(rng: &mut StdRng) -> String {
    let first = gen::pick(rng, &["O", "P", "Q"]);
    format!(
        "{first}{}{}{}",
        gen::digits(rng, 1),
        gen::from_alphabet(rng, "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789", 3),
        gen::digits(rng, 1)
    )
}

fn v_ensembl(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("ENS") else {
        return false;
    };
    let b = rest.as_bytes();
    b.len() == 12
        && matches!(b[0], b'G' | b'T' | b'P' | b'E')
        && b[1..].iter().all(|x| x.is_ascii_digit())
}

fn g_ensembl(rng: &mut StdRng) -> String {
    let kind = gen::pick(rng, &["G", "T", "P", "E"]);
    format!("ENS{kind}{}", gen::digits(rng, 11))
}

// --- LSID / IUPAC / EVMPD / ATC / SNP / ICZN --------------------------------

fn v_lsid(s: &str) -> bool {
    let parts: Vec<&str> = s.split(':').collect();
    parts.len() >= 5
        && parts[0] == "urn"
        && parts[1] == "lsid"
        && parts[2..].iter().all(|p| !p.is_empty())
}

fn g_lsid(rng: &mut StdRng) -> String {
    let auth = gen::pick(
        rng,
        &["ncbi.nlm.nih.gov", "ebi.ac.uk", "ipni.org", "zoobank.org"],
    );
    let ns = gen::pick(rng, &["genbank", "protein", "names", "act"]);
    format!("urn:lsid:{auth}:{ns}:{}", gen::digits(rng, 6))
}

fn v_iupac(s: &str) -> bool {
    if s.is_empty() {
        return false;
    }
    const SUFFIXES: &[&str] = &["ol", "ane", "ene", "yne", "oic acid", "amine", "one", "al"];
    s.chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "-, ()".contains(c))
        && SUFFIXES.iter().any(|suf| s.ends_with(suf))
        && s.chars().any(|c| c.is_ascii_alphabetic())
}

fn g_iupac(rng: &mut StdRng) -> String {
    const STEMS: &[&str] = &[
        "methan", "ethan", "propan", "butan", "pentan", "hexan", "heptan", "octan",
    ];
    const SUFFIX: &[&str] = &["ol", "e", "oic acid", "amine", "one", "al"];
    let stem = gen::pick(rng, STEMS);
    let suffix = gen::pick(rng, SUFFIX);
    if suffix == "e" {
        format!("{stem}e")
    } else if rng.gen_bool(0.5) {
        format!(
            "{}-methyl{stem}-{}-{suffix}",
            rng.gen_range(2..4),
            rng.gen_range(1..3)
        )
    } else {
        format!("{stem}-{}-{suffix}", rng.gen_range(1..3))
    }
}

fn v_evmpd(s: &str) -> bool {
    // Synthetic stand-in format for EudraVigilance product codes:
    // `EV-` followed by 8 digits (documented substitution in DESIGN.md).
    s.strip_prefix("EV-")
        .map(|d| d.len() == 8 && d.bytes().all(|b| b.is_ascii_digit()))
        .unwrap_or(false)
}

fn g_evmpd(rng: &mut StdRng) -> String {
    format!("EV-{}", gen::digits(rng, 8))
}

fn v_atc(s: &str) -> bool {
    let b = s.as_bytes();
    const GROUPS: &[u8] = b"ABCDGHJLMNPRSV";
    match b.len() {
        1 => GROUPS.contains(&b[0]),
        3 => GROUPS.contains(&b[0]) && b[1..].iter().all(|x| x.is_ascii_digit()),
        4 | 5 => {
            GROUPS.contains(&b[0])
                && b[1].is_ascii_digit()
                && b[2].is_ascii_digit()
                && b[3..].iter().all(|x| x.is_ascii_uppercase())
        }
        7 => {
            GROUPS.contains(&b[0])
                && b[1].is_ascii_digit()
                && b[2].is_ascii_digit()
                && b[3].is_ascii_uppercase()
                && b[4].is_ascii_uppercase()
                && b[5].is_ascii_digit()
                && b[6].is_ascii_digit()
        }
        _ => false,
    }
}

fn g_atc(rng: &mut StdRng) -> String {
    let group = gen::pick(
        rng,
        &[
            "A", "B", "C", "D", "G", "H", "J", "L", "M", "N", "P", "R", "S", "V",
        ],
    );
    format!(
        "{group}{}{}{}",
        gen::digits(rng, 2),
        gen::upper(rng, 2),
        gen::digits(rng, 2)
    )
}

fn v_snpid(s: &str) -> bool {
    s.strip_prefix("rs")
        .map(|d| {
            !d.is_empty()
                && d.len() <= 10
                && d.bytes().all(|b| b.is_ascii_digit())
                && !d.starts_with('0')
        })
        .unwrap_or(false)
}

fn g_snpid(rng: &mut StdRng) -> String {
    format!("rs{}", {
        let n = rng.gen_range(3..9);
        gen::digits_nz(rng, n)
    })
}

fn v_iczn(s: &str) -> bool {
    let parts: Vec<&str> = s.split_whitespace().collect();
    if parts.len() < 2 {
        return false;
    }
    let genus = parts[0];
    let species = parts[1].trim_end_matches(',');
    genus.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && genus.chars().skip(1).all(|c| c.is_ascii_lowercase())
        && genus.len() >= 3
        && species.chars().all(|c| c.is_ascii_lowercase())
        && species.len() >= 3
}

fn g_iczn(rng: &mut StdRng) -> String {
    const GENERA: &[&str] = &[
        "Homo",
        "Panthera",
        "Canis",
        "Felis",
        "Ursus",
        "Equus",
        "Drosophila",
        "Escherichia",
        "Apis",
        "Danio",
    ];
    const SPECIES: &[&str] = &[
        "sapiens",
        "leo",
        "lupus",
        "catus",
        "arctos",
        "caballus",
        "melanogaster",
        "coli",
        "mellifera",
        "rerio",
    ];
    let g = gen::pick(rng, GENERA);
    let s = gen::pick(rng, SPECIES);
    if rng.gen_bool(0.3) {
        format!("{g} {s}, Linnaeus, {}", rng.gen_range(1758..1950))
    } else {
        format!("{g} {s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_accepts_known_numbers() {
        assert!(v_cas("7732-18-5")); // water
        assert!(v_cas("50-00-0")); // formaldehyde
        assert!(!v_cas("7732-18-6"));
        assert!(!v_cas("7732-18"));
    }

    #[test]
    fn chem_formula_validates() {
        assert!(v_chem_formula("H2O"));
        assert!(v_chem_formula("C6H12O6"));
        assert!(v_chem_formula("NaCl"));
        assert!(!v_chem_formula("Xx2"));
        assert!(!v_chem_formula("H0"));
        assert!(!v_chem_formula(""));
    }

    #[test]
    fn smiles_balancing() {
        assert!(v_smiles("CC(=O)Oc1ccccc1C(=O)O"));
        assert!(!v_smiles("CC(=O"));
        assert!(!v_smiles("C]["));
        assert!(!v_smiles("12345"));
    }

    #[test]
    fn fasta_and_fastq() {
        assert!(v_fasta(">seq1\nACGTACGT"));
        assert!(!v_fasta("ACGT"));
        assert!(!v_fasta(">seq1\nHELLO WORLD"));
        assert!(v_fastq("@r1\nACGT\n+\nIIII"));
        assert!(!v_fastq("@r1\nACGT\n+\nIII")); // quality length mismatch
    }

    #[test]
    fn uniprot_and_ensembl() {
        assert!(v_uniprot("P12345"));
        assert!(v_uniprot("Q9H0H5"));
        assert!(!v_uniprot("12345P"));
        assert!(v_ensembl("ENSG00000139618"));
        assert!(!v_ensembl("ENSX00000139618"));
    }

    #[test]
    fn atc_levels() {
        assert!(v_atc("A10BA02"));
        assert!(v_atc("A10"));
        assert!(!v_atc("U10BA02"));
        assert!(!v_atc("A1"));
    }
}

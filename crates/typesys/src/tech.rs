//! Technology & telecommunication semantic types: 11 types.

use crate::checksums as ck;
use crate::gen;
use crate::registry::{Coverage, Domain, Spec};
use rand::rngs::StdRng;
use rand::Rng;

pub(crate) fn types() -> Vec<Spec> {
    vec![
        Spec {
            name: "IPv4 address",
            slug: "ipv4",
            domain: Domain::Tech,
            keywords: &["IPv4", "IPv4 address", "ip address v4"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_ipv4,
            generate: g_ipv4,
        },
        Spec {
            name: "IPv6 address",
            slug: "ipv6",
            domain: Domain::Tech,
            keywords: &["IPv6", "IPv6 address"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_ipv6,
            generate: g_ipv6,
        },
        Spec {
            name: "URL",
            slug: "url",
            domain: Domain::Tech,
            keywords: &["url", "website address"],
            coverage: Coverage::Covered,
            popular: true,
            validate: v_url,
            generate: g_url,
        },
        Spec {
            name: "IMEI number",
            slug: "imei",
            domain: Domain::Tech,
            keywords: &["IMEI", "IMEI number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: ck::imei_valid,
            generate: g_imei,
        },
        Spec {
            name: "MAC address",
            slug: "mac",
            domain: Domain::Tech,
            keywords: &["MAC address", "hardware address"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_mac,
            generate: g_mac,
        },
        Spec {
            name: "MD5 hash",
            slug: "md5",
            domain: Domain::Tech,
            keywords: &["MD5", "MD5 hash"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_md5,
            generate: g_md5,
        },
        Spec {
            name: "MSISDN",
            slug: "msisdn",
            domain: Domain::Tech,
            keywords: &["MSISDN", "mobile subscriber number"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_msisdn,
            generate: g_msisdn,
        },
        Spec {
            name: "Notice To Airmen",
            slug: "notam",
            domain: Domain::Tech,
            keywords: &["Notice To Airmen", "NOTAM"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_notam,
            generate: g_notam,
        },
        Spec {
            name: "AIS message",
            slug: "ais",
            domain: Domain::Tech,
            keywords: &["AIS message", "automatic identification system"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_ais,
            generate: g_ais,
        },
        Spec {
            name: "NMEA 0183 sentence",
            slug: "nmea",
            domain: Domain::Tech,
            keywords: &["NMEA 0183", "NMEA sentence", "GPS sentence"],
            coverage: Coverage::Covered,
            popular: false,
            validate: v_nmea,
            generate: g_nmea,
        },
        Spec {
            name: "International Standard Text Code",
            slug: "istc",
            domain: Domain::Tech,
            keywords: &["International Standard Text Code", "ISTC"],
            coverage: Coverage::NoCode,
            popular: false,
            validate: v_istc,
            generate: g_istc,
        },
    ]
}

pub(crate) fn v_ipv4(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    if parts.len() != 4 {
        return false;
    }
    parts.iter().all(|p| {
        !p.is_empty()
            && p.len() <= 3
            && p.bytes().all(|b| b.is_ascii_digit())
            && !(p.len() > 1 && p.starts_with('0'))
            && p.parse::<u32>().map(|v| v <= 255).unwrap_or(false)
    })
}

pub(crate) fn g_ipv4(rng: &mut StdRng) -> String {
    format!(
        "{}.{}.{}.{}",
        rng.gen_range(1..=223),
        rng.gen_range(0..=255),
        rng.gen_range(0..=255),
        rng.gen_range(1..=254)
    )
}

pub(crate) fn v_ipv6(s: &str) -> bool {
    if s.is_empty() {
        return false;
    }
    let double_colons = s.matches("::").count();
    if double_colons > 1 || s.contains(":::") {
        return false;
    }
    let valid_group =
        |g: &str| (1..=4).contains(&g.len()) && g.bytes().all(|b| b.is_ascii_hexdigit());
    if let Some((head, tail)) = s.split_once("::") {
        let head_groups: Vec<&str> = if head.is_empty() {
            vec![]
        } else {
            head.split(':').collect()
        };
        let tail_groups: Vec<&str> = if tail.is_empty() {
            vec![]
        } else {
            tail.split(':').collect()
        };
        head_groups.len() + tail_groups.len() <= 7
            && head_groups
                .iter()
                .chain(tail_groups.iter())
                .all(|g| valid_group(g))
    } else {
        let groups: Vec<&str> = s.split(':').collect();
        groups.len() == 8 && groups.iter().all(|g| valid_group(g))
    }
}

pub(crate) fn g_ipv6(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.8) {
        let groups: Vec<String> = (0..8)
            .map(|_| {
                let n = rng.gen_range(1..=4);
                gen::hex(rng, n)
            })
            .collect();
        groups.join(":")
    } else {
        // Compressed form.
        let head: Vec<String> = (0..rng.gen_range(1..4))
            .map(|_| {
                let n = rng.gen_range(1..=4);
                gen::hex(rng, n)
            })
            .collect();
        let tail: Vec<String> = (0..rng.gen_range(1..4))
            .map(|_| {
                let n = rng.gen_range(1..=4);
                gen::hex(rng, n)
            })
            .collect();
        format!("{}::{}", head.join(":"), tail.join(":"))
    }
}

pub(crate) fn v_url(s: &str) -> bool {
    let Some((scheme, rest)) = s.split_once("://") else {
        return false;
    };
    if !["http", "https", "ftp", "ftps"].contains(&scheme) {
        return false;
    }
    let authority = rest.split(['/', '?', '#']).next().unwrap_or("");
    let host = authority.split(':').next().unwrap_or("");
    if host.is_empty() || !host.contains('.') {
        return false;
    }
    host.split('.').all(|label| {
        !label.is_empty() && label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
    }) && s.chars().all(|c| c.is_ascii_graphic())
}

pub(crate) fn g_url(rng: &mut StdRng) -> String {
    let scheme = if rng.gen_bool(0.7) { "https" } else { "http" };
    let host = format!(
        "{}.{}",
        {
            let n = rng.gen_range(3..10);
            gen::lower(rng, n)
        },
        gen::pick(rng, &["com", "org", "net", "io", "edu"])
    );
    let www = if rng.gen_bool(0.4) { "www." } else { "" };
    match rng.gen_range(0..3) {
        0 => format!("{scheme}://{www}{host}"),
        1 => format!("{scheme}://{www}{host}/{}", gen::lower(rng, 6)),
        _ => format!(
            "{scheme}://{www}{host}/{}/{}.html",
            gen::lower(rng, 5),
            gen::lower(rng, 7)
        ),
    }
}

fn g_imei(rng: &mut StdRng) -> String {
    // TAC (8 digits, realistic prefix 35) + serial (6) + Luhn check.
    let body = format!("35{}{}", gen::digits(rng, 6), gen::digits(rng, 6));
    format!("{body}{}", ck::luhn_check_digit(&body))
}

fn v_mac(s: &str) -> bool {
    let sep = if s.contains(':') {
        ':'
    } else if s.contains('-') {
        '-'
    } else {
        return false;
    };
    let parts: Vec<&str> = s.split(sep).collect();
    parts.len() == 6
        && parts
            .iter()
            .all(|p| p.len() == 2 && p.bytes().all(|b| b.is_ascii_hexdigit()))
}

fn g_mac(rng: &mut StdRng) -> String {
    let sep = if rng.gen_bool(0.7) { ":" } else { "-" };
    let pairs: Vec<String> = (0..6).map(|_| gen::hex(rng, 2)).collect();
    pairs.join(sep)
}

fn v_md5(s: &str) -> bool {
    s.len() == 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

fn g_md5(rng: &mut StdRng) -> String {
    gen::hex(rng, 32)
}

fn v_msisdn(s: &str) -> bool {
    const COUNTRY_PREFIXES: &[&str] = &[
        "1", "7", "20", "27", "30", "31", "33", "34", "39", "40", "41", "44", "46", "47", "48",
        "49", "52", "55", "61", "62", "63", "64", "65", "66", "81", "82", "86", "90", "91",
    ];
    if !(10..=15).contains(&s.len()) || !s.bytes().all(|b| b.is_ascii_digit()) {
        return false;
    }
    COUNTRY_PREFIXES.iter().any(|p| s.starts_with(p))
}

fn g_msisdn(rng: &mut StdRng) -> String {
    let cc = gen::pick(rng, &["1", "44", "49", "33", "81", "86", "91", "61", "55"]);
    let len = rng.gen_range(10..=12usize).max(cc.len() + 9);
    format!("{cc}{}", gen::digits(rng, len.min(15) - cc.len()))
}

fn v_notam(s: &str) -> bool {
    // "(A1234/18 NOTAMN ..." shape.
    let Some(rest) = s.strip_prefix('(') else {
        return false;
    };
    let b = rest.as_bytes();
    b.len() > 12
        && b[0].is_ascii_uppercase()
        && b[1..5].iter().all(|x| x.is_ascii_digit())
        && b[5] == b'/'
        && b[6].is_ascii_digit()
        && b[7].is_ascii_digit()
        && rest.contains("NOTAM")
}

fn g_notam(rng: &mut StdRng) -> String {
    let series = gen::upper(rng, 1);
    let kind = gen::pick(rng, &["N", "R", "C"]);
    format!(
        "({series}{}/{} NOTAM{kind} Q) {}/QMRLC/IV/NBO/A/000/999",
        gen::digits(rng, 4),
        rng.gen_range(15..25),
        gen::pick(rng, gen::AIRPORT_CODES),
    )
}

/// NMEA XOR checksum between `$`/`!` and `*`.
fn nmea_checksum(payload: &str) -> u8 {
    payload.bytes().fold(0u8, |acc, b| acc ^ b)
}

fn v_ais(s: &str) -> bool {
    let Some(rest) = s
        .strip_prefix("!AIVDM,")
        .or_else(|| s.strip_prefix("!AIVDO,"))
    else {
        return false;
    };
    let Some((payload, check)) = s[1..].rsplit_once('*') else {
        return false;
    };
    let _ = rest;
    check.len() == 2
        && u8::from_str_radix(check, 16)
            .map(|c| c == nmea_checksum(payload))
            .unwrap_or(false)
}

fn g_ais(rng: &mut StdRng) -> String {
    let body = format!(
        "AIVDM,1,1,,{},{},0",
        gen::pick(rng, &["A", "B"]),
        gen::from_alphabet(
            rng,
            "0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVW`abcdefghijklmnopqrstuvw",
            28
        )
    );
    format!("!{body}*{:02X}", nmea_checksum(&body))
}

fn v_nmea(s: &str) -> bool {
    let Some(rest) = s.strip_prefix('$') else {
        return false;
    };
    let Some((payload, check)) = rest.rsplit_once('*') else {
        return false;
    };
    payload.len() >= 6
        && payload[..5].bytes().all(|b| b.is_ascii_uppercase())
        && check.len() == 2
        && u8::from_str_radix(check, 16)
            .map(|c| c == nmea_checksum(payload))
            .unwrap_or(false)
}

fn g_nmea(rng: &mut StdRng) -> String {
    let talker = gen::pick(rng, &["GPGGA", "GPRMC", "GPGSV", "GPGLL"]);
    let lat = format!(
        "{:02}{:02}.{}",
        rng.gen_range(0..90),
        rng.gen_range(0..60),
        gen::digits(rng, 3)
    );
    let lon = format!(
        "{:03}{:02}.{}",
        rng.gen_range(0..180),
        rng.gen_range(0..60),
        gen::digits(rng, 3)
    );
    let body = format!(
        "{talker},{:02}{:02}{:02},{lat},N,{lon},W,1,08,0.9,545.4,M,46.9,M,,",
        rng.gen_range(0..24),
        rng.gen_range(0..60),
        rng.gen_range(0..60)
    );
    format!("${body}*{:02X}", nmea_checksum(&body))
}

fn v_istc(s: &str) -> bool {
    // ISTC: 3 hex + 4-digit year + 8 hex + 1 hex check, dash separated.
    let parts: Vec<&str> = s.split('-').collect();
    parts.len() == 4
        && parts[0].len() == 3
        && parts[0].bytes().all(|b| b.is_ascii_hexdigit())
        && parts[1].len() == 4
        && parts[1].bytes().all(|b| b.is_ascii_digit())
        && parts[2].len() == 8
        && parts[2].bytes().all(|b| b.is_ascii_hexdigit())
        && parts[3].len() == 1
        && parts[3].bytes().all(|b| b.is_ascii_hexdigit())
}

fn g_istc(rng: &mut StdRng) -> String {
    format!(
        "{}-{}-{}-{}",
        gen::from_alphabet(rng, "0123456789ABCDEF", 3),
        rng.gen_range(1990..2024),
        gen::from_alphabet(rng, "0123456789ABCDEF", 8),
        gen::from_alphabet(rng, "0123456789ABCDEF", 1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ipv4_edge_cases() {
        assert!(v_ipv4("192.168.0.1"));
        assert!(v_ipv4("255.255.255.255"));
        assert!(!v_ipv4("256.1.1.1"));
        assert!(!v_ipv4("1.2.3"));
        assert!(!v_ipv4("01.2.3.4")); // leading zero
        assert!(!v_ipv4("7.74.0.0.5"));
    }

    #[test]
    fn ipv6_forms() {
        assert!(v_ipv6("4f:45b6:336:d336:e41b:8df4:696:e2")); // paper example
        assert!(v_ipv6("2001:db8::1"));
        assert!(v_ipv6("fe80::1"));
        assert!(!v_ipv6("2001:db8:::1"));
        assert!(!v_ipv6("1:2:3:4:5:6:7:8:9"));
        assert!(!v_ipv6("g::1"));
    }

    #[test]
    fn url_forms() {
        assert!(v_url("https://www.example.com/path"));
        assert!(v_url("ftp://files.example.org"));
        assert!(!v_url("example.com"));
        assert!(!v_url("https://nodots"));
    }

    #[test]
    fn mac_and_md5() {
        assert!(v_mac("00:1A:2B:3C:4D:5E"));
        assert!(v_mac("00-1a-2b-3c-4d-5e"));
        assert!(!v_mac("00:1A:2B:3C:4D"));
        assert!(v_md5("9e107d9d372bb6826bd81d3542a419d6"));
        assert!(!v_md5("9e107d9d372bb6826bd81d3542a419d"));
    }

    #[test]
    fn nmea_checksum_validates() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = g_nmea(&mut rng);
        assert!(v_nmea(&s), "{s}");
        // Corrupt one digit: checksum must fail.
        let corrupted = s.replace('5', "6");
        if corrupted != s {
            assert!(!v_nmea(&corrupted));
        }
    }

    #[test]
    fn ais_checksum_validates() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = g_ais(&mut rng);
        assert!(v_ais(&s), "{s}");
        assert!(!v_ais("!AIVDM,1,1,,A,xyz*00"));
    }
}

//! Code analysis: discovering *candidate functions* (§4.2, Appendix D.1).
//!
//! AutoType identifies functions "suitable for single-parameter
//! invocations" using AST-level information. Six variants are handled
//! (Listing 2 of the paper), plus standalone scripts whose hard-coded
//! string constant can be replaced by the input:
//!
//! 1. non-class function taking a single parameter — `F(s)`
//! 2. in-class single-parameter method, parameter-less constructor —
//!    `a = classA(); a.F(s)`
//! 3. in-class parameter-less method, single-parameter constructor —
//!    `a = classA(s); a.F()`
//! 4. parameter-less function reading `sys.argv`
//! 5. parameter-less function reading `input()`
//! 6. parameter-less function reading a file via `open(...)`
//! 7. (Appendix D.1) script file with a hard-coded constant assignment that
//!    can be rewritten into a parameter
//!
//! Functions needing multi-step invocation chains (two or more data
//! parameters, e.g. `c = foo3(b, s)`) are *rejected*, reproducing the four
//! benchmark types AutoType cannot handle (§8.2.2).

use autotype_lang::ast::{ClassDef, Expr, FuncDef, Module, Stmt};

/// How a candidate function is invoked with one input string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryPoint {
    /// Variant 1: `F(s)`.
    Function { name: String },
    /// Variant 2: `a = Class(); a.method(s)`.
    MethodWithParam { class: String, method: String },
    /// Variant 3: `a = Class(s); a.method()`.
    CtorThenMethod { class: String, method: String },
    /// Variant 4: `F()` with `sys.argv[...]` replaced by the input.
    ArgvFunction { name: String },
    /// Variant 5: `F()` with `input()` returning the input.
    StdinFunction { name: String },
    /// Variant 6: `F(path)` / `F()` reading the input from a file.
    FileFunction { name: String, takes_path: bool },
    /// Appendix D.1: run the whole file as a script, with its first
    /// hard-coded string-constant assignment replaced by the input.
    ScriptConstant { variable: String },
}

impl EntryPoint {
    /// Display name used in rankings ("file.func").
    pub fn label(&self) -> String {
        match self {
            EntryPoint::Function { name }
            | EntryPoint::ArgvFunction { name }
            | EntryPoint::StdinFunction { name }
            | EntryPoint::FileFunction { name, .. } => name.clone(),
            EntryPoint::MethodWithParam { class, method }
            | EntryPoint::CtorThenMethod { class, method } => format!("{class}.{method}"),
            EntryPoint::ScriptConstant { variable } => format!("<script:{variable}>"),
        }
    }
}

/// A discovered candidate function within a program file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    pub file: u32,
    pub entry: EntryPoint,
}

/// Statistics from the analysis pass (how many functions were rejected and
/// why — used to reproduce the §8.2.2 coverage discussion).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    pub candidates: usize,
    pub rejected_multi_param: usize,
    pub rejected_other: usize,
}

/// Scan one parsed module for candidate functions.
pub fn analyze_module(file: u32, module: &Module) -> (Vec<Candidate>, AnalysisStats) {
    let mut out = Vec::new();
    let mut stats = AnalysisStats::default();

    for func in module.functions() {
        match classify_function(func, false) {
            Some(entry) => out.push(Candidate { file, entry }),
            None => {
                if func.params.len() >= 2 {
                    stats.rejected_multi_param += 1;
                } else {
                    stats.rejected_other += 1;
                }
            }
        }
    }

    for class in module.classes() {
        analyze_class(file, class, &mut out, &mut stats);
    }

    // Scripts with hard-coded constants (Appendix D.1, Listing 3).
    if module.has_script_body() {
        if let Some(variable) = first_string_constant(module) {
            out.push(Candidate {
                file,
                entry: EntryPoint::ScriptConstant { variable },
            });
        }
    }

    stats.candidates = out.len();
    (out, stats)
}

fn classify_function(func: &FuncDef, is_method: bool) -> Option<EntryPoint> {
    let data_params = if is_method {
        func.params.len().saturating_sub(1)
    } else {
        func.params.len()
    };
    match data_params {
        1 => Some(EntryPoint::Function {
            name: func.name.clone(),
        }),
        0 => {
            // Check for implicit parameters in the body.
            if uses_sys_argv(&func.body) {
                Some(EntryPoint::ArgvFunction {
                    name: func.name.clone(),
                })
            } else if calls_builtin(&func.body, "input") {
                Some(EntryPoint::StdinFunction {
                    name: func.name.clone(),
                })
            } else if calls_builtin(&func.body, "open") {
                Some(EntryPoint::FileFunction {
                    name: func.name.clone(),
                    takes_path: false,
                })
            } else {
                None
            }
        }
        _ => None, // multi-parameter: unsupported invocation chain
    }
}

fn analyze_class(file: u32, class: &ClassDef, out: &mut Vec<Candidate>, stats: &mut AnalysisStats) {
    let init = class.methods.iter().find(|m| m.name == "__init__");
    let ctor_params = init.map(|m| m.params.len().saturating_sub(1)).unwrap_or(0);
    for method in &class.methods {
        if method.name == "__init__" {
            continue;
        }
        let data_params = method.params.len().saturating_sub(1);
        match (ctor_params, data_params) {
            // Variant 2: parameter-less constructor, 1-param method.
            (0, 1) => out.push(Candidate {
                file,
                entry: EntryPoint::MethodWithParam {
                    class: class.name.clone(),
                    method: method.name.clone(),
                },
            }),
            // Variant 3: 1-param constructor, parameter-less method.
            (1, 0) => out.push(Candidate {
                file,
                entry: EntryPoint::CtorThenMethod {
                    class: class.name.clone(),
                    method: method.name.clone(),
                },
            }),
            (c, d) if c >= 2 || d >= 2 => stats.rejected_multi_param += 1,
            _ => stats.rejected_other += 1,
        }
    }
}

fn uses_sys_argv(body: &[Stmt]) -> bool {
    any_expr(body, &mut |e| {
        matches!(e, Expr::Attr { object, name, .. }
            if name == "argv" && matches!(object.as_ref(), Expr::Name(n) if n == "sys"))
    })
}

fn calls_builtin(body: &[Stmt], builtin: &str) -> bool {
    any_expr(body, &mut |e| {
        matches!(e, Expr::Call { callee, .. }
            if matches!(callee.as_ref(), Expr::Name(n) if n == builtin))
    })
}

/// First module-level assignment of a string constant to a plain name
/// (Listing 3: `card_number = '4111111111111111'`).
fn first_string_constant(module: &Module) -> Option<String> {
    for stmt in &module.body {
        if let Stmt::Assign {
            target: autotype_lang::ast::Target::Name(name),
            value: Expr::Str(_),
            ..
        } = stmt
        {
            return Some(name.clone());
        }
    }
    None
}

/// Walk every expression in a statement list.
fn any_expr(body: &[Stmt], pred: &mut impl FnMut(&Expr) -> bool) -> bool {
    fn walk_expr(e: &Expr, pred: &mut impl FnMut(&Expr) -> bool) -> bool {
        if pred(e) {
            return true;
        }
        match e {
            Expr::Bin { left, right, .. }
            | Expr::Cmp { left, right, .. }
            | Expr::BoolOp { left, right, .. } => walk_expr(left, pred) || walk_expr(right, pred),
            Expr::Not(inner) | Expr::Neg(inner, _) => walk_expr(inner, pred),
            Expr::Call { callee, args, .. } => {
                walk_expr(callee, pred) || args.iter().any(|a| walk_expr(a, pred))
            }
            Expr::Attr { object, .. } => walk_expr(object, pred),
            Expr::Index { object, index, .. } => walk_expr(object, pred) || walk_expr(index, pred),
            Expr::Slice {
                object, low, high, ..
            } => {
                walk_expr(object, pred)
                    || low.as_ref().is_some_and(|l| walk_expr(l, pred))
                    || high.as_ref().is_some_and(|h| walk_expr(h, pred))
            }
            Expr::List(items) => items.iter().any(|i| walk_expr(i, pred)),
            Expr::Dict(items) => items
                .iter()
                .any(|(k, v)| walk_expr(k, pred) || walk_expr(v, pred)),
            _ => false,
        }
    }
    fn walk_stmt(s: &Stmt, pred: &mut impl FnMut(&Expr) -> bool) -> bool {
        match s {
            Stmt::Expr(e) => walk_expr(e, pred),
            Stmt::Assign { value, .. } => walk_expr(value, pred),
            Stmt::AugAssign { value, .. } => walk_expr(value, pred),
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                walk_expr(cond, pred)
                    || then_body.iter().any(|s| walk_stmt(s, pred))
                    || else_body.iter().any(|s| walk_stmt(s, pred))
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, pred) || body.iter().any(|s| walk_stmt(s, pred))
            }
            Stmt::For { iter, body, .. } => {
                walk_expr(iter, pred) || body.iter().any(|s| walk_stmt(s, pred))
            }
            Stmt::Return { value, .. } => value.as_ref().is_some_and(|v| walk_expr(v, pred)),
            Stmt::Raise { message, .. } => message.as_ref().is_some_and(|m| walk_expr(m, pred)),
            Stmt::Try { body, handlers, .. } => {
                body.iter().any(|s| walk_stmt(s, pred))
                    || handlers
                        .iter()
                        .any(|h| h.body.iter().any(|s| walk_stmt(s, pred)))
            }
            Stmt::FuncDef(f) => f.body.iter().any(|s| walk_stmt(s, pred)),
            Stmt::ClassDef(c) => c
                .methods
                .iter()
                .any(|m| m.body.iter().any(|s| walk_stmt(s, pred))),
            _ => false,
        }
    }
    body.iter().any(|s| walk_stmt(s, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_lang::parse_source;

    fn analyze(src: &str) -> (Vec<Candidate>, AnalysisStats) {
        let module = parse_source(src).unwrap();
        analyze_module(0, &module)
    }

    #[test]
    fn variant1_single_param_function() {
        let (cands, _) = analyze("def validate(s):\n    return len(s) == 16\n");
        assert_eq!(
            cands[0].entry,
            EntryPoint::Function {
                name: "validate".into()
            }
        );
    }

    #[test]
    fn variant2_paramless_ctor_method_with_param() {
        let src = "class Card:\n    def __init__(self):\n        self.num = None\n    def parse(self, s):\n        return s\n";
        let (cands, _) = analyze(src);
        assert!(cands.contains(&Candidate {
            file: 0,
            entry: EntryPoint::MethodWithParam {
                class: "Card".into(),
                method: "parse".into()
            }
        }));
    }

    #[test]
    fn variant3_ctor_with_param_paramless_method() {
        let src = "class Card:\n    def __init__(self, s):\n        self.num = s\n    def check(self):\n        return len(self.num)\n";
        let (cands, _) = analyze(src);
        assert!(cands.contains(&Candidate {
            file: 0,
            entry: EntryPoint::CtorThenMethod {
                class: "Card".into(),
                method: "check".into()
            }
        }));
    }

    #[test]
    fn variant4_sys_argv() {
        let src = "import sys\n\ndef main():\n    s = sys.argv[0]\n    return len(s)\n";
        let (cands, _) = analyze(src);
        assert!(cands
            .iter()
            .any(|c| matches!(&c.entry, EntryPoint::ArgvFunction { name } if name == "main")));
    }

    #[test]
    fn variant5_input() {
        let src = "def main():\n    s = input()\n    return s.isdigit()\n";
        let (cands, _) = analyze(src);
        assert!(cands
            .iter()
            .any(|c| matches!(&c.entry, EntryPoint::StdinFunction { name } if name == "main")));
    }

    #[test]
    fn variant6_open_file() {
        let src = "def main():\n    fp = open('data.txt')\n    return fp.read()\n";
        let (cands, _) = analyze(src);
        assert!(cands
            .iter()
            .any(|c| matches!(&c.entry, EntryPoint::FileFunction { .. })));
    }

    #[test]
    fn script_constant_detected() {
        let src = "card_number = '4111111111111111'\ntotal = 0\nfor c in card_number:\n    total += int(c)\n";
        let (cands, _) = analyze(src);
        assert!(cands.iter().any(|c| matches!(
            &c.entry,
            EntryPoint::ScriptConstant { variable } if variable == "card_number"
        )));
    }

    #[test]
    fn multi_param_functions_are_rejected() {
        let src = "def combine(a, b):\n    return a + b\n\ndef chain(x, y, z):\n    return x\n";
        let (cands, stats) = analyze(src);
        assert!(cands.is_empty());
        assert_eq!(stats.rejected_multi_param, 2);
    }

    #[test]
    fn paramless_function_without_io_is_rejected() {
        let src = "def nothing():\n    return 42\n";
        let (cands, stats) = analyze(src);
        assert!(cands.is_empty());
        assert_eq!(stats.rejected_other, 1);
    }

    #[test]
    fn mixed_module_counts_all() {
        let src = r#"
def ok(s):
    return s

def bad(a, b):
    return a

class C:
    def __init__(self):
        pass
    def good(self, s):
        return s
    def also_bad(self, x, y):
        return x
"#;
        let (cands, stats) = analyze(src);
        assert_eq!(cands.len(), 2);
        assert_eq!(stats.rejected_multi_param, 2);
    }
}

//! Trace featurization (§5.2): each branch/return/exception event becomes a
//! binary literal, and each execution is reduced to a *set* of literals
//! ("we find that for function ranking, the set-based featurization is
//! already expressive enough").

use std::collections::BTreeSet;

use autotype_lang::trace::{SiteId, Trace, TraceEvent, ValueSummary};

/// A binary trace literal — the `c_i` of Definition 2.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Literal {
    /// `b_site == taken`.
    Branch { site: SiteId, taken: bool },
    /// `r_site == summary` (booleans keep values; numbers/lengths reduce to
    /// zero/non-zero; composites to None/not-None).
    Ret { site: SiteId, value: ValueSummary },
    /// An exception of this kind escaped the invocation.
    Exception { kind: String },
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Branch { site, taken } => {
                write!(
                    f,
                    "b{}=={}",
                    site.line,
                    if *taken { "True" } else { "False" }
                )
            }
            Literal::Ret { site, value } => {
                let rendered = match value {
                    ValueSummary::Bool(b) => (if *b { "True" } else { "False" }).to_string(),
                    ValueSummary::NumZero(z) => if *z { "0" } else { "!=0" }.to_string(),
                    ValueSummary::LenZero(z) => {
                        if *z {
                            "len==0".to_string()
                        } else {
                            "len!=0".to_string()
                        }
                    }
                    ValueSummary::IsNone(n) => {
                        if *n {
                            "None".to_string()
                        } else {
                            "!=None".to_string()
                        }
                    }
                };
                write!(f, "r{}=={rendered}", site.line)
            }
            Literal::Exception { kind } => write!(f, "raises {kind}"),
        }
    }
}

/// The set-based featurization `T(e)` of one execution trace. Interned
/// exception kinds are resolved through the trace's own table, so literals
/// from different programs (different intern orders) stay comparable.
pub fn featurize(trace: &Trace) -> BTreeSet<Literal> {
    let mut out = BTreeSet::new();
    for event in &trace.events {
        out.insert(match event {
            TraceEvent::Branch { site, taken } => Literal::Branch {
                site: *site,
                taken: *taken,
            },
            TraceEvent::Return { site, value } => Literal::Ret {
                site: *site,
                value: *value,
            },
            TraceEvent::Exception { kind } => Literal::Exception {
                kind: trace.exc.name(*kind).to_string(),
            },
        });
    }
    out
}

/// Only the return-value literals — the featurization of the RET baseline
/// (§8.1), which treats functions as black boxes.
pub fn featurize_returns_only(trace: &Trace) -> BTreeSet<Literal> {
    featurize(trace)
        .into_iter()
        .filter(|l| matches!(l, Literal::Ret { .. } | Literal::Exception { .. }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_events_collapse_in_set_model() {
        // A loop evaluates the same branch many times; the set model keeps
        // one literal per (site, outcome).
        let trace = Trace {
            events: vec![
                TraceEvent::Branch {
                    site: SiteId::new(0, 3),
                    taken: true,
                },
                TraceEvent::Branch {
                    site: SiteId::new(0, 3),
                    taken: true,
                },
                TraceEvent::Branch {
                    site: SiteId::new(0, 3),
                    taken: false,
                },
            ],
            ..Trace::default()
        };
        let t = featurize(&trace);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn both_branch_polarities_are_distinct_literals() {
        let a = Literal::Branch {
            site: SiteId::new(0, 6),
            taken: true,
        };
        let b = Literal::Branch {
            site: SiteId::new(0, 6),
            taken: false,
        };
        assert_ne!(a, b);
    }

    #[test]
    fn returns_only_filters_branches() {
        let mut trace = Trace::default();
        let kind = trace.exc.intern("ValueError");
        trace.events = vec![
            TraceEvent::Branch {
                site: SiteId::new(0, 6),
                taken: true,
            },
            TraceEvent::Return {
                site: SiteId::new(0, 20),
                value: ValueSummary::Bool(true),
            },
            TraceEvent::Exception { kind },
        ];
        let t = featurize_returns_only(&trace);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|l| !matches!(l, Literal::Branch { .. })));
        assert!(t.contains(&Literal::Exception {
            kind: "ValueError".to_string()
        }));
    }

    #[test]
    fn literal_display_matches_paper_notation() {
        let l = Literal::Branch {
            site: SiteId::new(0, 6),
            taken: true,
        };
        assert_eq!(l.to_string(), "b6==True");
        let r = Literal::Ret {
            site: SiteId::new(0, 20),
            value: ValueSummary::IsNone(false),
        };
        assert_eq!(r.to_string(), "r20==!=None");
    }
}

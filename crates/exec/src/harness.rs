//! Traced execution of candidate functions, including the
//! execute-parse-install-rerun dependency loop of §4.2.

use std::collections::BTreeMap;
use std::sync::Arc;

use autotype_lang::ast::{Expr, Stmt, Target};
use autotype_lang::interp::{Interp, Io, Program};
use autotype_lang::trace::Trace;
use autotype_lang::value::Value;
use autotype_lang::PyError;

use crate::analyze::{Candidate, EntryPoint};

/// The simulated package index (`pip`): importable module name → PyLite
/// source. Missing imports raise `ImportError`; the harness parses the
/// message and "installs" the package, exactly like AutoType's loop over
/// `requirements.txt` and exception messages.
#[derive(Debug, Clone, Default)]
pub struct PackageIndex {
    packages: BTreeMap<String, String>,
}

impl PackageIndex {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert(&mut self, name: &str, source: &str) {
        self.packages.insert(name.to_string(), source.to_string());
    }

    pub fn get(&self, name: &str) -> Option<&str> {
        self.packages.get(name).map(|s| s.as_str())
    }

    /// Iterate over `(name, source)` pairs in name order — the serializable
    /// view a detector pack snapshots so dynamic installs replay identically
    /// at load time.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.packages.iter().map(|(n, s)| (n.as_str(), s.as_str()))
    }

    pub fn len(&self) -> usize {
        self.packages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }
}

/// Result of one traced run of a candidate on one input.
#[derive(Debug)]
pub struct RunOutcome {
    /// Branch / return / exception events from the run (plus the table
    /// resolving interned exception kinds).
    pub trace: Trace,
    /// The top-level result (error kind if the run failed).
    pub result: Result<Value, PyError>,
    /// Deterministic execution cost (stand-in for wall-clock).
    pub fuel_used: u64,
    /// Number of install-loop iterations that were needed.
    pub installs: usize,
    /// Harvested intermediate values (name → rendered atomic value) for
    /// semantic-transformation mining (§7.1, Appendix B).
    pub harvest: Vec<(String, String)>,
}

impl RunOutcome {
    /// Whether the run completed without an uncaught exception.
    pub fn completed(&self) -> bool {
        self.result.is_ok()
    }
}

/// Executes candidates against a repository program.
///
/// Cloning is cheap — the program's parsed files sit behind `Arc` — so the
/// parallel trace engine can hand each worker its own executor while sharing
/// every AST (parse once, execute many).
#[derive(Debug, Clone)]
pub struct Executor {
    /// The repository program, with statically-resolvable dependencies
    /// already installed.
    program: Program,
    fuel: u64,
    pub installs: usize,
}

/// Maximum dynamic install-loop iterations ("this process may loop for
/// multiple times, each time with a different exception").
const MAX_INSTALL_ROUNDS: usize = 6;

impl Executor {
    /// Build an executor for a repository: resolves `import` statements
    /// against the package index up front (the `requirements.txt` path),
    /// leaving the dynamic loop for imports only discoverable at run time.
    pub fn new(mut program: Program, packages: &PackageIndex, fuel: u64) -> Executor {
        let mut installs = 0;
        // Transitively install statically-visible imports.
        let mut changed = true;
        while changed {
            changed = false;
            let wanted: Vec<String> = program
                .files
                .iter()
                .flat_map(|f| f.module.imports().into_iter().map(|s| s.to_string()))
                .collect();
            for module in wanted {
                if module != "sys" && program.file_id(&module).is_none() {
                    if let Some(source) = packages.get(&module) {
                        if program.add_file(&module, source).is_ok() {
                            installs += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        Executor {
            program,
            fuel,
            installs,
        }
    }

    /// Rehydrate an executor from a serialized snapshot **without**
    /// re-running static dependency resolution.
    ///
    /// `Executor::new` installs statically-visible imports up front, which
    /// can append files to the program; a deserialized detector pack must
    /// instead reproduce the exact file list (and therefore every file id
    /// inside every trace `SiteId`) that existed when the pack was written.
    /// The snapshot is that post-resolution file list, so re-resolving here
    /// would at best be a no-op and at worst shift file ids.
    pub fn from_snapshot(program: Program, fuel: u64, installs: usize) -> Executor {
        Executor {
            program,
            fuel,
            installs,
        }
    }

    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The per-run fuel budget this executor charges each probe.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Override the per-run fuel budget (per-request fuel ceilings on the
    /// serve path). Lowering fuel can only change a verdict by exhausting
    /// earlier; it never changes which sites a completed run visits.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Roll the executor back to a snapshot taken before one or more runs:
    /// a run only ever mutates an executor by *appending* dynamically
    /// installed package files (and bumping `installs`), so truncating the
    /// file list restores the exact pre-run program — every original file
    /// id, and therefore every trace `SiteId`, is untouched. This is what
    /// lets a long-lived prober reuse one executor across probes instead of
    /// cloning per probe: reset, run, reset, run.
    pub fn reset_snapshot(&mut self, files: usize, installs: usize) {
        debug_assert!(files <= self.program.files.len());
        self.program.files.truncate(files);
        self.installs = installs;
    }

    /// Whether no run of any candidate can ever mutate this executor by
    /// dynamically installing a package — i.e. every `import` appearing
    /// anywhere in the program (including inside function bodies) is either
    /// already satisfied or not available in the index. Install-closed
    /// executors can be cloned and run concurrently with bit-identical file
    /// ids; executors that may still install must evolve serially so the
    /// order in which files are appended stays deterministic.
    pub fn install_closed(&self, packages: &PackageIndex) -> bool {
        self.program.files.iter().all(|f| {
            f.module.all_imports().iter().all(|module| {
                *module == "sys"
                    || self.program.file_id(module).is_some()
                    || packages.get(module).is_none()
            })
        })
    }

    /// Run a candidate on one input string, tracing the execution. Applies
    /// the dynamic install loop when an `ImportError` names a package that
    /// exists in the index.
    pub fn run(
        &mut self,
        candidate: &Candidate,
        input: &str,
        packages: &PackageIndex,
    ) -> RunOutcome {
        for round in 0..MAX_INSTALL_ROUNDS {
            let outcome = self.run_once(candidate, input, round);
            if let Err(e) = &outcome.result {
                if e.kind == "ImportError" {
                    if let Some(module) = e.message.strip_prefix("No module named ") {
                        let module = module.trim().to_string();
                        if self.program.file_id(&module).is_none() {
                            if let Some(source) = packages.get(&module) {
                                if self.program.add_file(&module, source).is_ok() {
                                    self.installs += 1;
                                    continue; // rerun with the new package
                                }
                            }
                        }
                    }
                }
            }
            return outcome;
        }
        self.run_once(candidate, input, MAX_INSTALL_ROUNDS)
    }

    fn run_once(&self, candidate: &Candidate, input: &str, installs: usize) -> RunOutcome {
        let file = candidate.file;
        // Pre-populate implicit-parameter channels for variants 4-6.
        let mut io = Io {
            argv: vec![input.to_string()],
            stdin: Some(input.to_string()),
            ..Io::default()
        };
        for name in open_targets(&self.program, file) {
            io.files.insert(name, input.to_string());
        }

        // Variant 7 rewrites the module before execution.
        let rewritten;
        let program = if let EntryPoint::ScriptConstant { variable } = &candidate.entry {
            rewritten = rewrite_script_constant(&self.program, file, variable, input);
            &rewritten
        } else {
            &self.program
        };

        let mut interp = Interp::with_options(program, io, self.fuel);
        let result = match &candidate.entry {
            EntryPoint::Function { name }
            | EntryPoint::ArgvFunction { name }
            | EntryPoint::StdinFunction { name }
            | EntryPoint::FileFunction { name, .. } => {
                let args = match &candidate.entry {
                    EntryPoint::Function { .. } => vec![Value::str(input)],
                    _ => vec![],
                };
                interp.call_function(file, name, args)
            }
            EntryPoint::MethodWithParam { class, method } => interp
                .get_global(file, class)
                .and_then(|c| interp.call(c, vec![]))
                .and_then(|obj| interp.invoke_method(obj, method, vec![Value::str(input)])),
            EntryPoint::CtorThenMethod { class, method } => interp
                .get_global(file, class)
                .and_then(|c| interp.call(c, vec![Value::str(input)]))
                .and_then(|obj| interp.invoke_method(obj, method, vec![])),
            EntryPoint::ScriptConstant { .. } => interp.run_script(file).map(|_| Value::None),
        };

        let mut harvest = Vec::new();
        match (&candidate.entry, &result) {
            (EntryPoint::ScriptConstant { .. }, Ok(_)) => {
                // Harvest module globals.
                if let Ok(globals) = interp.load_module(file) {
                    for (name, value) in globals.borrow().attrs.iter() {
                        harvest_value(name, value, &mut harvest);
                    }
                }
            }
            (_, Ok(value)) => {
                harvest_value("return", value, &mut harvest);
            }
            _ => {}
        }
        // For method variants, also harvest instance attributes via a
        // second instrumented run would be wasteful; instead the object is
        // still reachable when the method returned `self` or stored state.
        if let (EntryPoint::CtorThenMethod { class, .. }, Ok(_)) = (&candidate.entry, &result) {
            let _ = class;
        }

        let trace = interp.reset_trace();
        let fuel_used = interp.fuel_used();
        RunOutcome {
            trace,
            result,
            fuel_used,
            installs,
            harvest,
        }
    }
}

/// Run a candidate on one input and return the featurized trace augmented
/// with the synthetic black-box literal — a `Ret` at the reserved site
/// `(u32::MAX, 0)` summarizing the top-level result, or an `Exception` when
/// the run failed — plus the fuel the run burned.
///
/// This is the exact trace shape `SynthesizedValidator` clauses are written
/// against (validators synthesized from the RET baseline's black-box view
/// need the synthetic literal to evaluate correctly), shared by the
/// session's validate path, the batched column-detection path, and the
/// pack-based serving runtime so the three can never drift.
pub fn probe_trace(
    exec: &mut Executor,
    candidate: &Candidate,
    input: &str,
    packages: &PackageIndex,
) -> (std::collections::BTreeSet<crate::Literal>, u64) {
    let outcome = exec.run(candidate, input, packages);
    let mut trace = crate::featurize(&outcome.trace);
    match &outcome.result {
        Ok(value) => {
            trace.insert(crate::Literal::Ret {
                site: autotype_lang::SiteId::new(u32::MAX, 0),
                value: autotype_lang::ValueSummary::of(value),
            });
        }
        Err(e) => {
            trace.insert(crate::Literal::Exception {
                kind: e.kind.clone(),
            });
        }
    }
    (trace, outcome.fuel_used)
}

/// Harvest atomic values (and one level of composite decomposition) from a
/// runtime value, per Appendix B.
pub fn harvest_value(name: &str, value: &Value, out: &mut Vec<(String, String)>) {
    match value {
        Value::Str(_) | Value::Int(_) | Value::Float(_) | Value::Bool(_) => {
            out.push((name.to_string(), value.display()));
        }
        Value::List(items) => {
            for (i, item) in items.borrow().iter().enumerate().take(8) {
                if matches!(
                    item,
                    Value::Str(_) | Value::Int(_) | Value::Float(_) | Value::Bool(_)
                ) {
                    out.push((format!("{name}[{i}]"), item.display()));
                }
            }
        }
        Value::Dict(map) => {
            for (k, v) in map.borrow().iter() {
                if matches!(
                    v,
                    Value::Str(_) | Value::Int(_) | Value::Float(_) | Value::Bool(_)
                ) {
                    out.push((format!("{name}.{k}"), v.display()));
                }
            }
        }
        Value::Object(o) => {
            for (k, v) in o.borrow().attrs.iter() {
                if matches!(
                    v,
                    Value::Str(_) | Value::Int(_) | Value::Float(_) | Value::Bool(_)
                ) {
                    out.push((format!("{name}.{k}"), v.display()));
                }
            }
        }
        _ => {}
    }
}

/// String literals passed to `open(...)` anywhere in a file — the virtual
/// files the harness must fill with the input (variant 6).
fn open_targets(program: &Program, file: u32) -> Vec<String> {
    let mut names = Vec::new();
    let module = &program.file(file).module;
    collect_open_targets(&module.body, &mut names);
    names
}

fn collect_open_targets(body: &[Stmt], names: &mut Vec<String>) {
    fn walk_expr(e: &Expr, names: &mut Vec<String>) {
        if let Expr::Call { callee, args, .. } = e {
            if matches!(callee.as_ref(), Expr::Name(n) if n == "open") {
                if let Some(Expr::Str(path)) = args.first() {
                    if !names.contains(path) {
                        names.push(path.clone());
                    }
                }
            }
            for a in args {
                walk_expr(a, names);
            }
            walk_expr(callee, names);
        }
    }
    fn walk(s: &Stmt, names: &mut Vec<String>) {
        match s {
            Stmt::Expr(e) | Stmt::Assign { value: e, .. } | Stmt::AugAssign { value: e, .. } => {
                walk_expr(e, names)
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                walk_expr(cond, names);
                then_body.iter().for_each(|s| walk(s, names));
                else_body.iter().for_each(|s| walk(s, names));
            }
            Stmt::While { cond, body, .. } => {
                walk_expr(cond, names);
                body.iter().for_each(|s| walk(s, names));
            }
            Stmt::For { iter, body, .. } => {
                walk_expr(iter, names);
                body.iter().for_each(|s| walk(s, names));
            }
            Stmt::Return { value: Some(v), .. } => walk_expr(v, names),
            Stmt::Try { body, handlers, .. } => {
                body.iter().for_each(|s| walk(s, names));
                for h in handlers {
                    h.body.iter().for_each(|s| walk(s, names));
                }
            }
            Stmt::FuncDef(f) => f.body.iter().for_each(|s| walk(s, names)),
            Stmt::ClassDef(c) => c
                .methods
                .iter()
                .for_each(|m| m.body.iter().for_each(|s| walk(s, names))),
            _ => {}
        }
    }
    body.iter().for_each(|s| walk(s, names));
}

/// Replace the first module-level string-constant assignment to `variable`
/// with the given input (Appendix D.1, Listing 3). The program clone is
/// shallow (files are `Arc`-shared); only the rewritten file's AST is
/// copied, via `Arc::make_mut`.
fn rewrite_script_constant(program: &Program, file: u32, variable: &str, input: &str) -> Program {
    let mut rewritten = program.clone();
    let module = &mut Arc::make_mut(&mut rewritten.files[file as usize]).module;
    for stmt in &mut module.body {
        if let Stmt::Assign {
            target: Target::Name(name),
            value: value @ Expr::Str(_),
            ..
        } = stmt
        {
            if name == variable {
                *value = Expr::Str(input.to_string());
                break;
            }
        }
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_module;
    use autotype_lang::trace::TraceEvent;

    fn program_with(src: &str) -> Program {
        let mut p = Program::new();
        p.add_file("snippet", src).unwrap();
        p
    }

    fn first_candidate(program: &Program) -> Candidate {
        let (cands, _) = analyze_module(0, &program.file(0).module);
        cands.into_iter().next().expect("candidate")
    }

    const FUEL: u64 = 100_000;

    #[test]
    fn runs_plain_function_candidate() {
        let program =
            program_with("def f(s):\n    if len(s) > 3:\n        return True\n    return False\n");
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "abcdef", &PackageIndex::new());
        assert!(out.completed());
        assert!(!out.trace.events.is_empty());
        assert_eq!(
            out.harvest,
            vec![("return".to_string(), "True".to_string())]
        );
    }

    #[test]
    fn runs_class_ctor_then_method() {
        let src = r#"
class Card:
    def __init__(self, s):
        self.num = s
        self.brand = None
    def parse(self):
        if self.num[0] == '4':
            self.brand = 'Visa'
        return self
"#;
        let program = program_with(src);
        let cand = first_candidate(&program);
        assert!(matches!(cand.entry, EntryPoint::CtorThenMethod { .. }));
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "4111111111111111", &PackageIndex::new());
        assert!(out.completed());
        // The returned `self` exposes brand for transformation harvesting.
        assert!(out
            .harvest
            .iter()
            .any(|(k, v)| k == "return.brand" && v == "Visa"));
    }

    #[test]
    fn runs_argv_and_stdin_variants() {
        let argv_src = "import sys\n\ndef main():\n    s = sys.argv[0]\n    return len(s)\n";
        let program = program_with(argv_src);
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "hello", &PackageIndex::new());
        assert!(out.completed());
        assert!(out.harvest.iter().any(|(_, v)| v == "5"));

        let stdin_src = "def main():\n    s = input()\n    return s.upper()\n";
        let program = program_with(stdin_src);
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "abc", &PackageIndex::new());
        assert!(out.harvest.iter().any(|(_, v)| v == "ABC"));
    }

    #[test]
    fn runs_file_variant_with_virtual_fs() {
        let src = "def main():\n    fp = open('data.txt')\n    s = fp.read()\n    return len(s)\n";
        let program = program_with(src);
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "12345678", &PackageIndex::new());
        assert!(out.completed());
        assert!(out.harvest.iter().any(|(_, v)| v == "8"));
    }

    #[test]
    fn rewrites_script_constant() {
        let src = "card = '4111111111111111'\nresult = len(card)\n";
        let program = program_with(src);
        let cand = first_candidate(&program);
        assert!(matches!(cand.entry, EntryPoint::ScriptConstant { .. }));
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "12345", &PackageIndex::new());
        assert!(out.completed());
        assert!(out.harvest.iter().any(|(k, v)| k == "result" && v == "5"));
    }

    #[test]
    fn static_dependency_resolution_installs_packages() {
        let mut packages = PackageIndex::new();
        packages.insert("luhnlib", "def luhn_sum(s):\n    total = 0\n    for c in s:\n        total += int(c)\n    return total\n");
        let src = "import luhnlib\n\ndef f(s):\n    return luhnlib.luhn_sum(s)\n";
        let program = program_with(src);
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &packages, FUEL);
        assert_eq!(exec.installs, 1);
        let out = exec.run(&cand, "123", &packages);
        assert!(out.completed());
        assert!(out.harvest.iter().any(|(_, v)| v == "6"));
    }

    #[test]
    fn missing_package_fails_with_import_error() {
        let src = "import nosuchpkg\n\ndef f(s):\n    return s\n";
        let program = program_with(src);
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "x", &PackageIndex::new());
        assert!(!out.completed());
        assert!(out.trace.has_exception("ImportError"));
    }

    #[test]
    fn inter_procedural_tracing_covers_callee_branches() {
        let src = r#"
def helper(s):
    if s.isdigit():
        return True
    return False

def f(s):
    return helper(s)
"#;
        let program = program_with(src);
        let (cands, _) = analyze_module(0, &program.file(0).module);
        let f = cands
            .iter()
            .find(|c| matches!(&c.entry, EntryPoint::Function { name } if name == "f"))
            .unwrap()
            .clone();
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&f, "123", &PackageIndex::new());
        // The branch inside helper (line 3) must appear in f's trace.
        assert!(out
            .trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Branch { site, taken: true } if site.line == 3)));
    }

    #[test]
    fn exceptions_are_part_of_the_trace() {
        let program = program_with("def f(s):\n    return int(s)\n");
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let out = exec.run(&cand, "not-a-number", &PackageIndex::new());
        assert!(!out.completed());
        assert!(out.trace.has_exception("ValueError"));
    }

    #[test]
    fn install_closed_tracks_remaining_installable_imports() {
        let mut packages = PackageIndex::new();
        packages.insert("latelib", "def f():\n    return 1\n");
        // The import is buried inside a function body: invisible to the
        // static top-level resolution, but the deep probe must see it.
        let src = "def f(s):\n    import latelib\n    return latelib.f()\n";
        let program = program_with(src);
        let mut exec = Executor::new(program, &packages, FUEL);
        assert!(!exec.install_closed(&packages));

        // Importing something that is not in the index cannot install.
        let program = program_with("def f(s):\n    import nosuchpkg\n    return s\n");
        let exec2 = Executor::new(program, &packages, FUEL);
        assert!(exec2.install_closed(&packages));

        // After the dynamic install round, the executor becomes closed.
        let cand = first_candidate(exec.program());
        let out = exec.run(&cand, "x", &packages);
        assert!(out.completed());
        assert!(exec.install_closed(&packages));
    }

    #[test]
    fn rewriting_shares_unrelated_files() {
        let mut program = program_with("card = '4111111111111111'\nresult = len(card)\n");
        program
            .add_file("other", "def g():\n    return 1\n")
            .unwrap();
        let rewritten = rewrite_script_constant(&program, 0, "card", "12345");
        // Only the rewritten file's AST is copied.
        assert!(!Arc::ptr_eq(&program.files[0], &rewritten.files[0]));
        assert!(Arc::ptr_eq(&program.files[1], &rewritten.files[1]));
    }

    #[test]
    fn fuel_used_is_reported() {
        let program = program_with(
            "def f(s):\n    total = 0\n    for c in s:\n        total += 1\n    return total\n",
        );
        let cand = first_candidate(&program);
        let mut exec = Executor::new(program, &PackageIndex::new(), FUEL);
        let short = exec.run(&cand, "ab", &PackageIndex::new()).fuel_used;
        let long = exec
            .run(&cand, "abcdefghijklmnop", &PackageIndex::new())
            .fuel_used;
        assert!(long > short);
    }
}

//! # autotype-exec — code analysis and traced execution
//!
//! The pipeline stage between a crawled repository and the DNF ranker:
//!
//! 1. [`analyze`] scans PyLite ASTs for *candidate functions* invocable
//!    with a single string parameter — the six variants of Appendix D.1
//!    plus script-constant rewriting — and rejects multi-parameter
//!    invocation chains (the paper's four uncoverable types).
//! 2. [`harness`] executes candidates under instrumentation, feeding the
//!    input through the right channel (argument, `sys.argv`, `input()`,
//!    virtual file, or rewritten constant) and running the
//!    execute-parse-install-rerun dependency loop of §4.2.
//! 3. [`featurize`](crate::featurize::featurize) reduces each trace to the set of binary literals of
//!    §5.2, ready for `autotype-dnf`.
//! 4. [`pool`] shards batches of executor jobs across OS threads with a
//!    deterministic, input-ordered merge — the parallel engine behind the
//!    candidate × example hot loop.

pub mod analyze;
pub mod featurize;
pub mod harness;
pub mod pool;

pub use analyze::{analyze_module, AnalysisStats, Candidate, EntryPoint};
pub use featurize::{featurize, featurize_returns_only, Literal};
pub use harness::{harvest_value, probe_trace, Executor, PackageIndex, RunOutcome};
pub use pool::{default_workers, ExecPool};

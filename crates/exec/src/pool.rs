//! Scoped worker pool for the candidate × example trace-collection loop.
//!
//! The hot phase of a session executes every candidate function on every
//! positive and negative example — thousands of independent interpreter
//! runs. [`ExecPool::run_ordered`] shards a batch of jobs across N OS
//! threads (std only: `std::thread::scope` plus a mutex-guarded work queue)
//! and returns results **in input order**, so downstream consumers see
//! exactly the sequence the serial loop would have produced.
//!
//! Determinism contract: if each job is a pure function of its input (the
//! engine guarantees this by giving every job exclusive ownership of its
//! executor), the merged output is bit-identical for every worker count,
//! including `workers == 1`, which does not spawn any threads at all.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// A fixed-width execution pool. Cheap to construct; threads are scoped to
/// each [`run_ordered`](ExecPool::run_ordered) call, so an idle pool holds
/// no OS resources and the pool can be shared freely across sessions.
#[derive(Debug, Clone)]
pub struct ExecPool {
    workers: usize,
}

impl ExecPool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> ExecPool {
        ExecPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine (`available_parallelism`, falling back
    /// to 1 when the count cannot be determined).
    pub fn with_default_workers() -> ExecPool {
        ExecPool::new(default_workers())
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run `work` over every item, in parallel across up to `workers`
    /// threads, and return the results in input order.
    ///
    /// Items are claimed from a shared queue in input order, so with a
    /// single worker the execution order is exactly the serial loop's.
    /// A panic in any job is propagated to the caller with its original
    /// payload after the scope unwinds.
    ///
    /// The number of OS threads actually spawned is additionally clamped
    /// to the machine's `available_parallelism`: the jobs are pure CPU
    /// (interpreter runs, no blocking I/O), so threads beyond the core
    /// count cannot add throughput — they only add context-switch and
    /// lock-handoff overhead. Measured on a 1-core container, `workers=2`
    /// made the table2 sessions phase ~46% slower than `workers=1` before
    /// this clamp. Results are unaffected: the determinism contract above
    /// makes the merged output bit-identical for every thread count.
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, work: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.workers.min(default_workers());
        if threads == 1 || n <= 1 {
            // The exact serial code path: no threads, no queue, no locks.
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| work(i, item))
                .collect();
        }

        let queue: Mutex<VecDeque<(usize, T)>> =
            Mutex::new(items.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        let work = &work;

        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads.min(n))
                .map(|_| {
                    s.spawn(|| loop {
                        // Hold the queue lock only for the pop: jobs are
                        // chunky (whole executor groups), so contention on
                        // this mutex is negligible.
                        let job = queue.lock().unwrap().pop_front();
                        let Some((index, item)) = job else {
                            break;
                        };
                        let result = work(index, item);
                        results.lock().unwrap()[index] = Some(result);
                    })
                })
                .collect();
            // Join explicitly so a worker panic resurfaces with its
            // original payload instead of the scope's generic message.
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for handle in handles {
                if let Err(payload) = handle.join() {
                    panic.get_or_insert(payload);
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
        });

        results
            .into_inner()
            .unwrap()
            .into_iter()
            .map(|slot| slot.expect("every queued job produces a result"))
            .collect()
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::with_default_workers()
    }
}

/// The machine's available parallelism (1 when undeterminable).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze_module;
    use crate::harness::{Executor, PackageIndex};
    use autotype_lang::Program;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 4, 8] {
            let pool = ExecPool::new(workers);
            let items: Vec<usize> = (0..37).collect();
            let out = pool.run_ordered(items, |i, x| {
                assert_eq!(i, x);
                x * 10
            });
            assert_eq!(out, (0..37).map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn queue_drains_every_item_exactly_once() {
        let pool = ExecPool::new(4);
        let executed = AtomicUsize::new(0);
        let out = pool.run_ordered((0..100).collect::<Vec<usize>>(), |_, x| {
            executed.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(executed.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = ExecPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run_ordered(vec![5], |_, x: i32| x + 1), vec![6]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = ExecPool::new(4);
        let out: Vec<i32> = pool.run_ordered(Vec::<i32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let pool = ExecPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_ordered((0..8).collect::<Vec<usize>>(), |_, x| {
                if x == 3 {
                    panic!("job 3 exploded");
                }
                x
            });
        }));
        let payload = caught.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("job 3 exploded"), "payload: {message}");
    }

    #[test]
    fn fuel_exhaustion_is_deterministic_under_parallelism() {
        // Each job owns a clone of an executor whose candidate loops
        // forever; every clone must burn exactly the same fuel.
        let mut program = Program::new();
        program
            .add_file(
                "spin",
                "def f(s):\n    while True:\n        s = s\n    return s\n",
            )
            .unwrap();
        let (cands, _) = analyze_module(0, &program.file(0).module);
        let cand = cands.into_iter().next().expect("candidate");
        let packages = PackageIndex::new();
        let exec = Executor::new(program, &packages, 10_000);

        let mut burns: Vec<u64> = Vec::new();
        for workers in [1, 4] {
            let pool = ExecPool::new(workers);
            let jobs: Vec<Executor> = (0..8).map(|_| exec.clone()).collect();
            let fuel: Vec<u64> = pool.run_ordered(jobs, |_, mut e| {
                let out = e.run(&cand, "x", &packages);
                assert!(out.trace.has_exception("__FuelExhausted__"));
                out.fuel_used
            });
            assert!(
                fuel.iter().all(|f| *f == 10_000),
                "full budget burned: {fuel:?}"
            );
            burns.push(fuel.iter().sum());
        }
        assert_eq!(burns[0], burns[1]);
    }
}

//! # autotype-rank — the five function-ranking methods of §8.1
//!
//! * **DNF-S** — Best-k-Concise-DNF-Cover over trace literals (the paper's
//!   approach, Definition 4 / Algorithm 1);
//! * **DNF-C** — the complete (full-path) cover without the k limit;
//! * **RET** — return-value literals only (functions as black boxes);
//! * **KW** — TF-IDF keyword match treating each function as a document;
//! * **LR** — from-scratch logistic regression on the identical feature
//!   space, scored by held-out balanced accuracy.
//!
//! Candidates are ranked by positive-example coverage with negative
//! coverage as the tie-breaker (§5.2, "Ranking-by-DNF").

pub mod features;
pub mod lr;
pub mod methods;

pub use features::FunctionTraces;
pub use lr::{lr_score, LrConfig};
pub use methods::{rank, Method, RankCandidate, Ranked};

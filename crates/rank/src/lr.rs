//! The logistic-regression baseline (§8.1): identical binary features to
//! DNF-S, a conventional ML model, scored by held-out balanced accuracy.
//!
//! The paper attributes LR's gap to DNF's problem-specific inductive bias
//! ("union of conjunctions of literals is suitable to describe program
//! executions") versus a generic model needing more training data; the
//! held-out split makes that data hunger visible at |P| ≈ 20 (Figure 13).

use crate::features::FunctionTraces;
use autotype_exec::Literal;
use std::collections::BTreeMap;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct LrConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
    /// Fraction of examples held out for scoring.
    pub holdout: f64,
}

impl Default for LrConfig {
    fn default() -> Self {
        LrConfig {
            epochs: 120,
            learning_rate: 0.5,
            l2: 1e-3,
            holdout: 0.3,
        }
    }
}

/// Fit LR on a train split and return balanced accuracy on the held-out
/// split — the function's LR ranking score in `[0, 1]`.
pub fn lr_score(traces: &FunctionTraces, config: &LrConfig) -> f64 {
    // Feature index over all literals.
    let mut index: BTreeMap<&Literal, usize> = BTreeMap::new();
    for t in traces.pos.iter().chain(traces.neg.iter()) {
        for lit in t {
            let next = index.len();
            index.entry(lit).or_insert(next);
        }
    }
    let dims = index.len();
    if dims == 0 || traces.pos.is_empty() || traces.neg.is_empty() {
        return 0.5;
    }
    let encode = |t: &std::collections::BTreeSet<Literal>| -> Vec<usize> {
        t.iter().map(|l| index[l]).collect()
    };
    let pos: Vec<Vec<usize>> = traces.pos.iter().map(encode).collect();
    let neg: Vec<Vec<usize>> = traces.neg.iter().map(encode).collect();

    // Deterministic split: every k-th example is held out.
    let split = |xs: &[Vec<usize>]| -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        let k = (1.0 / config.holdout).round().max(2.0) as usize;
        let mut train = Vec::new();
        let mut held = Vec::new();
        for (i, x) in xs.iter().enumerate() {
            if i % k == k - 1 {
                held.push(x.clone());
            } else {
                train.push(x.clone());
            }
        }
        if held.is_empty() && !train.is_empty() {
            held.push(train.pop().unwrap());
        }
        (train, held)
    };
    let (pos_train, pos_held) = split(&pos);
    let (neg_train, neg_held) = split(&neg);
    if pos_train.is_empty() || neg_train.is_empty() || pos_held.is_empty() || neg_held.is_empty() {
        return 0.5;
    }

    // Class-weighted batch gradient descent.
    let mut w = vec![0.0f64; dims];
    let mut b = 0.0f64;
    let pos_weight = neg_train.len() as f64 / pos_train.len() as f64;
    for _ in 0..config.epochs {
        let mut grad_w = vec![0.0f64; dims];
        let mut grad_b = 0.0f64;
        let mut accumulate = |x: &[usize], y: f64, weight: f64| {
            let z: f64 = b + x.iter().map(|&i| w[i]).sum::<f64>();
            let p = 1.0 / (1.0 + (-z).exp());
            let err = (p - y) * weight;
            for &i in x {
                grad_w[i] += err;
            }
            grad_b += err;
        };
        for x in &pos_train {
            accumulate(x, 1.0, pos_weight);
        }
        for x in &neg_train {
            accumulate(x, 0.0, 1.0);
        }
        let n = (pos_train.len() + neg_train.len()) as f64;
        for i in 0..dims {
            w[i] -= config.learning_rate * (grad_w[i] / n + config.l2 * w[i]);
        }
        b -= config.learning_rate * grad_b / n;
    }

    // Balanced held-out accuracy.
    let predict = |x: &[usize]| -> bool {
        let z: f64 = b + x.iter().map(|&i| w[i]).sum::<f64>();
        z > 0.0
    };
    let tp = pos_held.iter().filter(|x| predict(x)).count() as f64;
    let tn = neg_held.iter().filter(|x| !predict(x)).count() as f64;
    0.5 * (tp / pos_held.len() as f64) + 0.5 * (tn / neg_held.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_lang::SiteId;
    use std::collections::BTreeSet;

    fn lit(line: u32, taken: bool) -> Literal {
        Literal::Branch {
            site: SiteId::new(0, line),
            taken,
        }
    }

    fn set(lits: &[Literal]) -> BTreeSet<Literal> {
        lits.iter().cloned().collect()
    }

    #[test]
    fn separable_traces_score_high() {
        let traces = FunctionTraces {
            pos: (0..10).map(|_| set(&[lit(1, true)])).collect(),
            neg: (0..30).map(|_| set(&[lit(1, false)])).collect(),
            ..Default::default()
        };
        assert!(lr_score(&traces, &LrConfig::default()) > 0.9);
    }

    #[test]
    fn identical_traces_score_chance() {
        let traces = FunctionTraces {
            pos: (0..10).map(|_| set(&[lit(1, true)])).collect(),
            neg: (0..30).map(|_| set(&[lit(1, true)])).collect(),
            ..Default::default()
        };
        let s = lr_score(&traces, &LrConfig::default());
        assert!((0.3..=0.7).contains(&s), "score {s}");
    }

    #[test]
    fn empty_traces_score_half() {
        let traces = FunctionTraces::default();
        assert_eq!(lr_score(&traces, &LrConfig::default()), 0.5);
    }

    #[test]
    fn deterministic() {
        let traces = FunctionTraces {
            pos: (0..8)
                .map(|i| set(&[lit(1, true), lit(i % 3 + 10, true)]))
                .collect(),
            neg: (0..20).map(|i| set(&[lit(i % 5 + 20, false)])).collect(),
            ..Default::default()
        };
        let a = lr_score(&traces, &LrConfig::default());
        let b = lr_score(&traces, &LrConfig::default());
        assert_eq!(a, b);
    }
}

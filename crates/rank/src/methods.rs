//! The five function-ranking methods compared in §8.1.

use crate::features::FunctionTraces;
use crate::lr::{lr_score, LrConfig};
use autotype_dnf::{best_cover_complete, best_k_concise_cover, CoverParams, DnfCover};
use autotype_exec::Literal;
use autotype_search::{Document, Field, Index, Scoring};

/// The ranking methods of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// DNF-S: Best-k-Concise-DNF-Cover (the AutoType approach).
    DnfS,
    /// DNF-C: complete (full-path) DNF cover.
    DnfC,
    /// RET: return values only, functions as black boxes.
    Ret,
    /// KW: TF-IDF keyword match over function text.
    Kw,
    /// LR: logistic regression on the same features.
    Lr,
}

impl Method {
    pub const ALL: [Method; 5] = [
        Method::DnfS,
        Method::DnfC,
        Method::Ret,
        Method::Kw,
        Method::Lr,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Method::DnfS => "DNF-S",
            Method::DnfC => "DNF-C",
            Method::Ret => "RET",
            Method::Kw => "KW",
            Method::Lr => "LR",
        }
    }
}

/// One candidate function as seen by the rankers: an opaque id, its traces,
/// and its text (for KW).
pub struct RankCandidate {
    pub id: usize,
    pub traces: FunctionTraces,
    /// Source text + names + repository description, the KW "document".
    pub document: String,
}

/// A ranked function.
#[derive(Debug, Clone)]
pub struct Ranked {
    pub id: usize,
    /// Primary score in `[0,1]` (positive coverage / accuracy / normalized
    /// keyword score).
    pub score: f64,
    /// Negative coverage (tie-breaker; 0 for methods without one).
    pub neg_fraction: f64,
    /// The synthesized DNF where applicable.
    pub dnf: Option<DnfCover>,
    /// Literal universe matching the DNF's literal ids.
    pub literals: Vec<Literal>,
}

/// Rank candidates under a method. Candidates the method cannot score (no
/// separating DNF exists) are omitted, matching Algorithm 2's
/// `Best-k-Concise-Cover(P, N, F) ≠ ∅` filter.
pub fn rank(
    method: Method,
    candidates: &[RankCandidate],
    keyword: &str,
    params: &CoverParams,
) -> Vec<Ranked> {
    let mut out: Vec<Ranked> = match method {
        Method::DnfS | Method::DnfC | Method::Ret => candidates
            .iter()
            .filter_map(|c| {
                let traces = if method == Method::Ret {
                    c.traces.black_box()
                } else {
                    c.traces.clone()
                };
                let (input, literals) = traces.cover_input();
                let cover = if method == Method::DnfC {
                    best_cover_complete(&input, params)
                } else {
                    best_k_concise_cover(&input, params)
                }?;
                Some(Ranked {
                    id: c.id,
                    score: cover.pos_fraction(),
                    neg_fraction: cover.neg_fraction(),
                    dnf: Some(cover),
                    literals,
                })
            })
            .collect(),
        Method::Lr => candidates
            .iter()
            .map(|c| Ranked {
                id: c.id,
                score: lr_score(&c.traces, &LrConfig::default()),
                neg_fraction: 0.0,
                dnf: None,
                literals: Vec::new(),
            })
            .filter(|r| r.score > 0.5)
            .collect(),
        Method::Kw => {
            let documents: Vec<Document> = candidates
                .iter()
                .enumerate()
                .map(|(pos, c)| Document {
                    id: pos,
                    fields: vec![(Field::Code, c.document.clone())],
                })
                .collect();
            let index = Index::build(&documents, autotype_search::index::FieldWeights::uniform());
            let hits = index.score(keyword, Scoring::TfIdf);
            let max = hits.first().map(|(_, s)| *s).unwrap_or(1.0).max(1e-9);
            hits.into_iter()
                .map(|(pos, score)| Ranked {
                    id: candidates[pos].id,
                    score: score / max,
                    neg_fraction: 0.0,
                    dnf: None,
                    literals: Vec::new(),
                })
                .collect()
        }
    };
    // Sort: score desc, then fewer negatives, then id for determinism.
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.neg_fraction
                    .partial_cmp(&b.neg_fraction)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.id.cmp(&b.id))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_lang::SiteId;
    use std::collections::BTreeSet;

    fn lit(line: u32, taken: bool) -> Literal {
        Literal::Branch {
            site: SiteId::new(0, line),
            taken,
        }
    }

    fn set(lits: &[Literal]) -> BTreeSet<Literal> {
        lits.iter().cloned().collect()
    }

    /// One separating candidate, one non-separating candidate.
    fn candidates() -> Vec<RankCandidate> {
        vec![
            RankCandidate {
                id: 0,
                traces: FunctionTraces {
                    pos: (0..10).map(|_| set(&[lit(5, true)])).collect(),
                    neg: (0..40).map(|_| set(&[lit(5, false)])).collect(),
                    ..Default::default()
                },
                document: "validate credit card checksum luhn".into(),
            },
            RankCandidate {
                id: 1,
                traces: FunctionTraces {
                    pos: (0..10).map(|_| set(&[lit(9, true)])).collect(),
                    neg: (0..40).map(|_| set(&[lit(9, true)])).collect(),
                    ..Default::default()
                },
                document: "credit card credit card credit card form field".into(),
            },
        ]
    }

    #[test]
    fn dnf_s_ranks_separating_function_first_and_drops_the_other() {
        let ranked = rank(
            Method::DnfS,
            &candidates(),
            "credit card",
            &CoverParams::default(),
        );
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].id, 0);
        assert!((ranked[0].score - 1.0).abs() < 1e-9);
        assert!(ranked[0].dnf.is_some());
    }

    #[test]
    fn kw_prefers_keyword_stuffed_document() {
        let ranked = rank(
            Method::Kw,
            &candidates(),
            "credit card",
            &CoverParams::default(),
        );
        assert_eq!(ranked[0].id, 1, "KW must fall for keyword stuffing");
    }

    #[test]
    fn lr_keeps_only_better_than_chance() {
        let ranked = rank(
            Method::Lr,
            &candidates(),
            "credit card",
            &CoverParams::default(),
        );
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].id, 0);
    }

    #[test]
    fn ret_misses_branch_only_separation() {
        // Separation exists only in branches — RET must fail to rank it.
        let cands = vec![RankCandidate {
            id: 0,
            traces: FunctionTraces {
                pos: (0..10).map(|_| set(&[lit(5, true)])).collect(),
                neg: (0..40).map(|_| set(&[lit(5, false)])).collect(),
                ..Default::default()
            },
            document: String::new(),
        }];
        let ranked = rank(Method::Ret, &cands, "x", &CoverParams::default());
        assert!(ranked.is_empty(), "RET saw branch literals");
    }

    #[test]
    fn ranking_is_deterministic() {
        let a = rank(
            Method::DnfS,
            &candidates(),
            "credit card",
            &CoverParams::default(),
        );
        let b = rank(
            Method::DnfS,
            &candidates(),
            "credit card",
            &CoverParams::default(),
        );
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].id, b[0].id);
    }
}

//! Bridging featurized traces to the DNF solver's literal-id space.

use autotype_dnf::{BitSet, CoverInput};
use autotype_exec::Literal;
use std::collections::{BTreeMap, BTreeSet};

/// Featurized traces of one candidate function over P and N.
///
/// `pos`/`neg` carry the full inter-procedural literal sets (branches +
/// returns + exceptions). `pos_bb`/`neg_bb` carry the *black-box* view —
/// only the summarized final result or escaping exception per run — which
/// is all the RET baseline is allowed to see (§8.1: "treats functions as
/// black boxes and uses only return values").
#[derive(Debug, Clone, Default)]
pub struct FunctionTraces {
    pub pos: Vec<BTreeSet<Literal>>,
    pub neg: Vec<BTreeSet<Literal>>,
    pub pos_bb: Vec<BTreeSet<Literal>>,
    pub neg_bb: Vec<BTreeSet<Literal>>,
}

impl FunctionTraces {
    /// The literal universe `B(F)` in a stable order, plus the CoverInput
    /// over it.
    pub fn cover_input(&self) -> (CoverInput, Vec<Literal>) {
        let mut universe: BTreeMap<&Literal, usize> = BTreeMap::new();
        for trace in self.pos.iter().chain(self.neg.iter()) {
            for lit in trace {
                let next = universe.len();
                universe.entry(lit).or_insert(next);
            }
        }
        let n_examples = self.pos.len() + self.neg.len();
        let mut coverage = vec![BitSet::new(n_examples); universe.len()];
        for (e, trace) in self.pos.iter().chain(self.neg.iter()).enumerate() {
            for lit in trace {
                coverage[universe[lit]].insert(e);
            }
        }
        let mut literals: Vec<Literal> = vec![
            Literal::Exception {
                kind: String::new()
            };
            universe.len()
        ];
        for (lit, idx) in universe {
            literals[idx] = lit.clone();
        }
        (
            CoverInput {
                n_pos: self.pos.len(),
                n_neg: self.neg.len(),
                coverage,
            },
            literals,
        )
    }

    /// The black-box view for the RET baseline: the recorded final-result
    /// traces when available, otherwise a fallback that strips branch
    /// literals from the full traces.
    pub fn black_box(&self) -> FunctionTraces {
        if !self.pos_bb.is_empty() || !self.neg_bb.is_empty() {
            return FunctionTraces {
                pos: self.pos_bb.clone(),
                neg: self.neg_bb.clone(),
                pos_bb: self.pos_bb.clone(),
                neg_bb: self.neg_bb.clone(),
            };
        }
        let filter = |traces: &[BTreeSet<Literal>]| {
            traces
                .iter()
                .map(|t| {
                    t.iter()
                        .filter(|l| !matches!(l, Literal::Branch { .. }))
                        .cloned()
                        .collect()
                })
                .collect()
        };
        FunctionTraces {
            pos: filter(&self.pos),
            neg: filter(&self.neg),
            pos_bb: Vec::new(),
            neg_bb: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_lang::SiteId;

    fn lit(line: u32, taken: bool) -> Literal {
        Literal::Branch {
            site: SiteId::new(0, line),
            taken,
        }
    }

    fn traces() -> FunctionTraces {
        FunctionTraces {
            pos: vec![
                [lit(6, true), lit(16, true)].into_iter().collect(),
                [lit(9, true), lit(16, true)].into_iter().collect(),
            ],
            neg: vec![[lit(6, true)].into_iter().collect()],
            ..Default::default()
        }
    }

    #[test]
    fn cover_input_indexes_examples_positives_first() {
        let (input, literals) = traces().cover_input();
        assert_eq!(input.n_pos, 2);
        assert_eq!(input.n_neg, 1);
        assert_eq!(literals.len(), 3);
        // The literal for b16==True covers exactly the two positives.
        let idx = literals.iter().position(|l| *l == lit(16, true)).unwrap();
        assert_eq!(input.coverage[idx].count(), 2);
        assert!(input.coverage[idx].contains(0));
        assert!(input.coverage[idx].contains(1));
        assert!(!input.coverage[idx].contains(2));
    }

    #[test]
    fn black_box_fallback_strips_branches() {
        let mut t = traces();
        t.pos[0].insert(Literal::Ret {
            site: SiteId::new(0, 20),
            value: autotype_lang::ValueSummary::Bool(true),
        });
        let filtered = t.black_box();
        assert_eq!(filtered.pos[0].len(), 1);
        assert!(filtered.pos[1].is_empty());
    }

    #[test]
    fn black_box_prefers_recorded_final_results() {
        let mut t = traces();
        t.pos_bb = vec![BTreeSet::new(), BTreeSet::new()];
        t.neg_bb = vec![BTreeSet::new()];
        let bb = t.black_box();
        assert!(bb.pos.iter().all(|s| s.is_empty()));
    }
}

//! Property-style equivalence test: lazy tiered scheduling must produce
//! bit-identical verdicts to the eager `value × pack` matrix — per value
//! and per column — on randomized pack sets and value sets, at every
//! worker count. This is the load-bearing guarantee of the scheduler:
//! skipping dead matrix cells is only a perf change, never a semantic one.

use autotype_exec::{EntryPoint, Literal};
use autotype_lang::{SiteId, ValueSummary};
use autotype_pack::{Pack, PackValidator};
use autotype_serve::DetectorRuntime;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A pack accepting exactly the inputs for which the program returns True.
fn boolean_pack(slug: &str, func: &str, source: &str) -> Pack {
    Pack {
        slug: slug.into(),
        keyword: slug.into(),
        label: format!("demo/mod.{func}"),
        repo_name: "demo".into(),
        file: "mod".into(),
        strategy: "S1".into(),
        method: "DNF-S".into(),
        score: 1.0,
        neg_fraction: 0.0,
        explanation: "(ret==True)".into(),
        fuel: 10_000,
        installs: 0,
        candidate_file: 0,
        entry: EntryPoint::Function { name: func.into() },
        files: vec![("mod".into(), source.into())],
        packages: vec![],
        dnf_e: vec![vec![Literal::Ret {
            site: SiteId::new(u32::MAX, 0),
            value: ValueSummary::Bool(true),
        }]],
    }
}

/// A pool of length-predicate detectors with overlapping accept sets, so
/// random subsets produce genuine priority contention (many values match
/// several packs and the tie-break order matters).
fn pack_pool() -> Vec<Pack> {
    let pred = |slug: &str, cond: &str| {
        boolean_pack(
            slug,
            "check",
            &format!("def check(s):\n    if {cond}:\n        return True\n    return False\n"),
        )
    };
    vec![
        pred("evenlen", "len(s) % 2 == 0"),
        pred("short", "len(s) < 3"),
        pred("long", "len(s) > 5"),
        pred("triple", "len(s) % 3 == 0"),
        pred("exact4", "len(s) == 4"),
    ]
}

fn validators(packs: &[Pack]) -> Vec<PackValidator> {
    packs.iter().map(|p| p.validator().unwrap()).collect()
}

#[test]
fn lazy_equals_eager_on_random_pack_and_value_sets() {
    let pool = pack_pool();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..8 {
        // A random subset of packs in random priority order…
        let mut order: Vec<usize> = (0..pool.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let npacks = rng.gen_range(2..=pool.len());
        let chosen: Vec<Pack> = order[..npacks].iter().map(|&i| pool[i].clone()).collect();

        // …and a random batch of values with clumpy lengths (clumps make
        // column thresholds actually trigger both pass and fail paths).
        let nvalues = rng.gen_range(4..=24usize);
        let values: Vec<String> = (0..nvalues)
            .map(|_| {
                let len = if rng.gen_bool(0.6) {
                    rng.gen_range(0..4usize) * 2 // mostly even, incl. empty
                } else {
                    rng.gen_range(0..9usize)
                };
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect()
            })
            .collect();

        // Ground truth: serial per-value scan at one worker, eager matrix.
        let serial = DetectorRuntime::from_packs(validators(&chosen), 1, 1024);
        let expected_batch: Vec<Option<usize>> =
            values.iter().map(|v| serial.detect_value(v)).collect();
        let expected_column = {
            let rt = DetectorRuntime::from_packs(validators(&chosen), 1, 1024);
            rt.detect_column_eager(&values)
        };

        for workers in [1usize, 2, 4, 8] {
            let lazy = DetectorRuntime::from_packs(validators(&chosen), workers, 1024);
            assert_eq!(
                lazy.detect_batch(&values),
                expected_batch,
                "trial {trial} workers {workers}: lazy batch diverged\nvalues: {values:?}"
            );
            let eager = DetectorRuntime::from_packs(validators(&chosen), workers, 1024);
            assert_eq!(
                eager.detect_batch_eager(&values),
                expected_batch,
                "trial {trial} workers {workers}: eager batch diverged\nvalues: {values:?}"
            );
            let lazy_col = DetectorRuntime::from_packs(validators(&chosen), workers, 1024);
            assert_eq!(
                lazy_col.detect_column(&values),
                expected_column,
                "trial {trial} workers {workers}: lazy column diverged\nvalues: {values:?}"
            );
            // Lazy never issues more probes than the full matrix.
            let spent = autotype_serve::Metrics::read(&lazy.metrics().cache_misses);
            assert!(
                spent <= (values.len() * npacks) as u64,
                "trial {trial} workers {workers}: issued {spent} > matrix"
            );
        }
    }
}

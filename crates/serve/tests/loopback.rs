//! Loopback integration test: bind the real server on an ephemeral port,
//! speak actual HTTP/1.1 over a TCP socket, and check responses and
//! `/metrics` counters end to end.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use autotype_exec::{EntryPoint, Literal};
use autotype_lang::{SiteId, ValueSummary};
use autotype_pack::Pack;
use autotype_serve::{serve, DetectorRuntime, ServerConfig};

/// A pack accepting exactly the inputs for which the program returns True.
fn boolean_pack(slug: &str, func: &str, source: &str) -> Pack {
    Pack {
        slug: slug.into(),
        keyword: slug.into(),
        label: format!("demo/mod.{func}"),
        repo_name: "demo".into(),
        file: "mod".into(),
        strategy: "S1".into(),
        method: "DNF-S".into(),
        score: 1.0,
        neg_fraction: 0.0,
        explanation: "(ret==True)".into(),
        fuel: 10_000,
        installs: 0,
        candidate_file: 0,
        entry: EntryPoint::Function { name: func.into() },
        files: vec![("mod".into(), source.into())],
        packages: vec![],
        dnf_e: vec![vec![Literal::Ret {
            site: SiteId::new(u32::MAX, 0),
            value: ValueSummary::Bool(true),
        }]],
    }
}

fn test_runtime() -> DetectorRuntime {
    let even = boolean_pack(
        "evenlen",
        "is_even_len",
        "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n",
    );
    DetectorRuntime::from_packs(vec![even.validator().unwrap()], 2, 256)
}

/// One full request/response over a real socket. Sends `Connection: close`
/// so the server ends the connection after responding (this helper reads
/// to EOF; keep-alive coverage lives in tests/keepalive.rs).
fn request(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn detect_batch_metrics_and_errors_over_loopback() {
    let handle = serve(
        Arc::new(test_runtime()),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(), // ephemeral port
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();

    // Liveness first.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"packs\":1"), "{body}");

    // A batch: "ab" (even → evenlen), "abc" (odd → null).
    let (status, body) = request(addr, "POST", "/detect", r#"{"values":["ab","abc"]}"#);
    assert_eq!(status, 200);
    assert!(
        body.contains(r#"{"value":"ab","type":"evenlen","pack":"evenlen-"#),
        "{body}"
    );
    assert!(
        body.contains(r#"{"value":"abc","type":null,"pack":null}"#),
        "{body}"
    );

    // Same batch again: every verdict must come from the cache.
    let (status, _) = request(addr, "POST", "/detect", r#"{"values":["ab","abc"]}"#);
    assert_eq!(status, 200);

    // Single-value form.
    let (status, body) = request(addr, "POST", "/detect", r#"{"value":"xyzq"}"#);
    assert_eq!(status, 200);
    assert!(body.contains(r#""type":"evenlen""#), "{body}");

    // Whole-column form: all even-length.
    let (status, body) = request(
        addr,
        "POST",
        "/detect/column",
        r#"{"values":["ab","cd","ef","gh","ij"]}"#,
    );
    assert_eq!(status, 200);
    assert!(body.contains(r#""type":"evenlen""#), "{body}");
    assert!(body.contains(r#""values":5"#), "{body}");

    // Error paths.
    let (status, body) = request(addr, "POST", "/detect", "not json");
    assert_eq!(status, 400);
    assert!(body.contains("error"), "{body}");
    let (status, _) = request(addr, "POST", "/detect", r#"{"nothing":1}"#);
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/detect", "");
    assert_eq!(status, 405);

    // /metrics reflects everything above.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 2)
            .unwrap_or_else(|| panic!("{name} missing from metrics:\n{metrics}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(counter("autotype_requests_detect_total"), 5);
    assert_eq!(counter("autotype_requests_detect_column_total"), 1);
    assert_eq!(counter("autotype_http_errors_total"), 4);
    // "ab"/"abc" probed once each; the repeat batch is 2 hits. "ab" also
    // hits again inside the column warm pass — at minimum 2 hits exist.
    assert!(counter("autotype_cache_hits_total") >= 2, "{metrics}");
    assert!(counter("autotype_cache_misses_total") >= 3, "{metrics}");
    assert!(counter("autotype_fuel_spent_total") > 0);
    assert!(counter("autotype_values_served_total") >= 10);
    assert!(
        metrics.contains("autotype_pack_probe_latency_us_bucket"),
        "{metrics}"
    );

    handle.shutdown();
    // After shutdown the port stops answering new connections (the accept
    // loop has exited; a connect may succeed at TCP level on some kernels
    // via backlog, so just assert the handle joined without hanging).
}

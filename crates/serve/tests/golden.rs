//! Golden-file determinism test: the `.atpk` fixtures under `tests/data/`
//! were serialized by a past process and checked into the repo. Loading
//! them here and pinning their pack ids and exact verdicts catches any
//! cross-PR drift in the wire format, the interpreter, or the detection
//! semantics — if any of those change observable behavior, this test
//! fails loudly rather than letting the drift ship silently.
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! cargo test -p autotype-serve --test golden -- --ignored regenerate
//! ```
//!
//! then update the pinned ids/verdicts below and say why in the PR.

use autotype_exec::{EntryPoint, Literal};
use autotype_lang::{SiteId, ValueSummary};
use autotype_pack::Pack;
use autotype_serve::DetectorRuntime;

fn data_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
}

/// The fixture definitions. Only used by the regeneration path — the
/// pinned test reads the serialized bytes from disk.
fn fixture_packs() -> Vec<(String, Pack)> {
    let boolean_pack = |slug: &str, func: &str, source: &str| Pack {
        slug: slug.into(),
        keyword: slug.into(),
        label: format!("demo/mod.{func}"),
        repo_name: "demo".into(),
        file: "mod".into(),
        strategy: "S1".into(),
        method: "DNF-S".into(),
        score: 1.0,
        neg_fraction: 0.0,
        explanation: "(ret==True)".into(),
        fuel: 10_000,
        installs: 0,
        candidate_file: 0,
        entry: EntryPoint::Function { name: func.into() },
        files: vec![("mod".into(), source.into())],
        packages: vec![],
        dnf_e: vec![vec![Literal::Ret {
            site: SiteId::new(u32::MAX, 0),
            value: ValueSummary::Bool(true),
        }]],
    };
    vec![
        (
            "00-evenlen.atpk".into(),
            boolean_pack(
                "evenlen",
                "is_even_len",
                "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n",
            ),
        ),
        (
            "01-short.atpk".into(),
            boolean_pack(
                "short",
                "is_short",
                "def is_short(s):\n    if len(s) < 3:\n        return True\n    return False\n",
            ),
        ),
    ]
}

/// Values probed by the pinned test, chosen to exercise both packs, both
/// priority-order tie-breaks, and the no-match path.
const GOLDEN_VALUES: [&str; 8] = ["ab", "a", "abc", "", "xyzq", "zzzzz", "yz", "q"];

/// Expected `detect_value` verdicts for [`GOLDEN_VALUES`], as pack
/// indices (0 = evenlen, 1 = short).
const GOLDEN_VERDICTS: [Option<usize>; 8] = [
    Some(0), // "ab": even length beats short on priority
    Some(1), // "a": odd but short
    None,    // "abc": odd, not short
    Some(0), // "": zero length is even
    Some(0), // "xyzq"
    None,    // "zzzzz"
    Some(0), // "yz"
    Some(1), // "q"
];

/// Pinned content-derived pack ids — these change iff the serialized
/// payload bytes change.
const GOLDEN_PACK_IDS: [&str; 2] = ["evenlen-b8d93d00186e8701", "short-31c119371cec2799"];

#[test]
fn golden_fixture_pins_ids_and_verdicts() {
    let rt = DetectorRuntime::load_dir(&data_dir(), 2, 256).expect("load golden fixtures");
    assert_eq!(rt.packs().len(), 2, "fixture pack count");
    for (pack, want) in rt.packs().iter().zip(GOLDEN_PACK_IDS) {
        assert_eq!(
            pack.pack_id(),
            want,
            "pack id drifted — wire format or payload serialization changed"
        );
    }
    let values: Vec<String> = GOLDEN_VALUES.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        rt.detect_batch(&values),
        GOLDEN_VERDICTS.to_vec(),
        "verdicts drifted — interpreter or detection semantics changed"
    );
    // Column semantics over the same fixture: 5/6 even-length clears the
    // 0.8 threshold; all-short claims pack 1; junk matches nothing.
    let col = |vals: &[&str]| -> Vec<String> { vals.iter().map(|s| s.to_string()).collect() };
    assert_eq!(
        rt.detect_column(&col(&["ab", "cd", "ef", "gh", "ij", "x"])),
        Some(0)
    );
    assert_eq!(rt.detect_column(&col(&["a", "b", "c"])), Some(1));
    assert_eq!(rt.detect_column(&col(&["abc", "defgh", "qqq"])), None);
}

/// Rewrites the fixtures from [`fixture_packs`]. Run explicitly (see the
/// module docs); never part of a normal test run.
#[test]
#[ignore = "regenerates the checked-in golden fixtures"]
fn regenerate() {
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, pack) in fixture_packs() {
        let path = dir.join(&name);
        pack.save(&path).expect("serialize fixture");
        let loaded = autotype_pack::load_pack(&path).expect("reload fixture");
        println!("{name}: pack_id = {}", loaded.pack_id());
    }
}

//! Keep-alive and load-shedding integration tests: persistent
//! connections, idle-timeout closes, bounded-pool 503s, the
//! `/detect/table` endpoint, and per-request `max_fuel` — all over real
//! sockets against the real server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use autotype_exec::{EntryPoint, Literal};
use autotype_lang::{SiteId, ValueSummary};
use autotype_pack::Pack;
use autotype_serve::{serve, DetectorRuntime, ServerConfig};

/// A pack accepting exactly the inputs for which the program returns True.
fn boolean_pack(slug: &str, func: &str, source: &str) -> Pack {
    Pack {
        slug: slug.into(),
        keyword: slug.into(),
        label: format!("demo/mod.{func}"),
        repo_name: "demo".into(),
        file: "mod".into(),
        strategy: "S1".into(),
        method: "DNF-S".into(),
        score: 1.0,
        neg_fraction: 0.0,
        explanation: "(ret==True)".into(),
        fuel: 10_000,
        installs: 0,
        candidate_file: 0,
        entry: EntryPoint::Function { name: func.into() },
        files: vec![("mod".into(), source.into())],
        packages: vec![],
        dnf_e: vec![vec![Literal::Ret {
            site: SiteId::new(u32::MAX, 0),
            value: ValueSummary::Bool(true),
        }]],
    }
}

fn test_runtime() -> DetectorRuntime {
    let even = boolean_pack(
        "evenlen",
        "is_even_len",
        "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n",
    );
    let short = boolean_pack(
        "short",
        "is_short",
        "def is_short(s):\n    if len(s) < 3:\n        return True\n    return False\n",
    );
    DetectorRuntime::from_packs(
        vec![even.validator().unwrap(), short.validator().unwrap()],
        2,
        256,
    )
}

/// Write one request on an already-open stream, without closing it. A
/// single write_all so Nagle never splits head and body across a
/// delayed-ACK round trip.
fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
}

/// Read one framed response (status line, headers, Content-Length body)
/// off a persistent connection, leaving the stream open for the next one.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap_or_else(|| panic!("no status in {status_line:?}"))
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    let mut connection = String::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap();
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, String::from_utf8(body).unwrap(), connection)
}

fn start(
    config_tweak: impl FnOnce(&mut ServerConfig),
) -> (autotype_serve::ServerHandle, std::net::SocketAddr) {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    config_tweak(&mut config);
    let handle = serve(Arc::new(test_runtime()), config).expect("bind");
    let addr = handle.addr();
    (handle, addr)
}

#[test]
fn many_requests_share_one_socket() {
    let (handle, addr) = start(|_| {});
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    for i in 0..16 {
        // Alternate value shapes so responses differ across iterations.
        let value = if i % 2 == 0 { "ab" } else { "abc" };
        send_request(
            &mut stream,
            "POST",
            "/detect",
            &format!("{{\"value\":\"{value}\"}}"),
        );
        let (status, body, connection) = read_response(&mut reader);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(connection, "keep-alive", "request {i}");
        if i % 2 == 0 {
            assert!(body.contains("\"type\":\"evenlen\""), "request {i}: {body}");
        } else {
            assert!(body.contains("\"type\":null"), "request {i}: {body}");
        }
    }

    // The server saw one connection carry all 16 requests.
    send_request(&mut stream, "GET", "/metrics", "");
    let (_, metrics, _) = read_response(&mut reader);
    let counter = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(name) && l.split_whitespace().count() == 2)
            .unwrap_or_else(|| panic!("{name} missing:\n{metrics}"))
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(counter("autotype_connections_total"), 1);
    // The /metrics request renders before counting itself: 16 detects.
    assert_eq!(counter("autotype_requests_total"), 16);

    // Ask the server to close; it must honor Connection: close.
    let head = "GET /healthz HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
    stream.write_all(head.as_bytes()).unwrap();
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    let mut rest = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    assert_eq!(
        stream.read_to_string(&mut rest).expect("EOF after close"),
        0,
        "server must close after Connection: close"
    );
    handle.shutdown();
}

#[test]
fn idle_connections_are_closed_silently() {
    let (handle, addr) = start(|c| c.idle_timeout = Duration::from_millis(150));
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    send_request(&mut stream, "GET", "/healthz", "");
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");

    // Go quiet past the idle timeout: the server closes without writing a
    // response (an idle close is not an error).
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut rest = Vec::new();
    let n = stream
        .read_to_end(&mut rest)
        .expect("clean EOF, not timeout");
    assert_eq!(n, 0, "idle close must be silent, got {rest:?}");
    handle.shutdown();
}

#[test]
fn http10_defaults_to_close_and_can_opt_in() {
    let (handle, addr) = start(|_| {});
    // Plain HTTP/1.0: server must close after one response.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    stream.read_to_string(&mut raw).expect("EOF for HTTP/1.0");
    assert!(raw.contains("Connection: close"), "{raw}");

    // HTTP/1.0 with an explicit keep-alive opt-in stays open.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream
        .write_all(
            b"GET /healthz HTTP/1.0\r\nHost: localhost\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n",
        )
        .unwrap();
    let (status, _, connection) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    // Still answers on the same socket.
    send_request(&mut stream, "GET", "/healthz", "");
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    // Close the client side so the handler sees EOF and retires promptly.
    drop(reader);
    drop(stream);
    handle.shutdown();
}

#[test]
fn saturated_pool_sheds_with_503() {
    // One handler, rendezvous queue: a second concurrent connection has
    // nowhere to go and must be shed inline.
    let (handle, addr) = start(|c| {
        c.max_connections = 1;
        c.accept_backlog = 0;
    });

    // Occupy the only handler with an open keep-alive connection.
    let mut busy = TcpStream::connect(addr).unwrap();
    let mut busy_reader = BufReader::new(busy.try_clone().unwrap());
    send_request(&mut busy, "GET", "/healthz", "");
    let (status, _, connection) = read_response(&mut busy_reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");

    // The next connection is refused with 503 without being queued.
    let mut shed = TcpStream::connect(addr).unwrap();
    let mut raw = String::new();
    shed.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    shed.read_to_string(&mut raw).expect("read 503");
    assert!(raw.starts_with("HTTP/1.1 503"), "{raw}");
    assert!(raw.contains("saturated"), "{raw}");

    // Release the handler; the pool accepts again.
    drop(busy_reader);
    drop(busy);
    std::thread::sleep(Duration::from_millis(50));
    let mut next = TcpStream::connect(addr).unwrap();
    let mut next_reader = BufReader::new(next.try_clone().unwrap());
    send_request(&mut next, "GET", "/healthz", "");
    let (status, _, _) = read_response(&mut next_reader);
    assert_eq!(status, 200);

    // The shed shows up in metrics.
    send_request(&mut next, "GET", "/metrics", "");
    let (_, metrics, _) = read_response(&mut next_reader);
    assert!(
        metrics.contains("autotype_connections_shed_total 1"),
        "{metrics}"
    );
    drop(next_reader);
    drop(next);
    handle.shutdown();
}

#[test]
fn detect_table_answers_every_column() {
    let (handle, addr) = start(|_| {});
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Column 0: all even → evenlen. Column 1: short odd → short.
    // Column 2: junk → null. Column 3: empty → null.
    let body = r#"{"columns":[["ab","cd","ef"],["a","b","c"],["abc","defgh"],[]]}"#;
    send_request(&mut stream, "POST", "/detect/table", body);
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    let expected_types = ["\"type\":\"evenlen\"", "\"type\":\"short\""];
    for t in expected_types {
        assert!(body.contains(t), "{body}");
    }
    // The two unresolved columns render as nulls, in order.
    let nulls = body.matches("\"type\":null").count();
    assert_eq!(nulls, 2, "{body}");
    assert!(body.contains("\"values\":3"), "{body}");
    assert!(body.contains("\"values\":0"), "{body}");

    // Malformed shapes are rejected.
    send_request(&mut stream, "POST", "/detect/table", r#"{"columns":"x"}"#);
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 400);
    drop(reader);
    drop(stream);
    handle.shutdown();
}

#[test]
fn max_fuel_is_validated_and_applied() {
    let (handle, addr) = start(|_| {});
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Non-positive ceilings are rejected up front.
    for bad in [
        r#"{"value":"ab","max_fuel":0}"#,
        r#"{"value":"ab","max_fuel":-5}"#,
    ] {
        send_request(&mut stream, "POST", "/detect", bad);
        let (status, body, connection) = read_response(&mut reader);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("max_fuel"), "{body}");
        // Errors close the connection; reconnect for the next round.
        assert_eq!(connection, "close");
        stream = TcpStream::connect(addr).unwrap();
        reader = BufReader::new(stream.try_clone().unwrap());
    }

    // A generous ceiling clamps to the pack budget: verdicts unchanged.
    send_request(
        &mut stream,
        "POST",
        "/detect",
        r#"{"value":"ab","max_fuel":99999999}"#,
    );
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"type\":\"evenlen\""), "{body}");

    // A starving ceiling flips the verdict to null (probe exhausts early)
    // without poisoning the cache for full-budget requests.
    send_request(
        &mut stream,
        "POST",
        "/detect",
        r#"{"value":"ab","max_fuel":1}"#,
    );
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"type\":null"), "{body}");
    send_request(&mut stream, "POST", "/detect", r#"{"value":"ab"}"#);
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"type\":\"evenlen\""), "{body}");

    // Columns and tables take the same ceiling.
    send_request(
        &mut stream,
        "POST",
        "/detect/column",
        r#"{"values":["ab","cd"],"max_fuel":1}"#,
    );
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    assert!(body.contains("\"type\":null"), "{body}");
    send_request(
        &mut stream,
        "POST",
        "/detect/table",
        r#"{"columns":[["ab","cd"]],"max_fuel":0}"#,
    );
    let (status, body, _) = read_response(&mut reader);
    assert_eq!(status, 400, "{body}");
    drop(reader);
    drop(stream);
    handle.shutdown();
}

//! Live service metrics: lock-free atomic counters plus per-pack latency
//! histograms, rendered in the Prometheus text exposition format at
//! `GET /metrics`.
//!
//! Counters are monotone `AtomicU64`s updated with relaxed ordering — every
//! update is a commutative increment, so totals are exact under any thread
//! interleaving even though no two counters are read atomically together.

use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket upper bounds, in microseconds. Probe latency spans
/// cache hits (sub-microsecond) to full interpreter runs with dynamic
/// installs (milliseconds), so the buckets are logarithmic.
pub const LATENCY_BUCKETS_US: [u64; 8] = [10, 50, 100, 500, 1_000, 5_000, 20_000, 100_000];

/// A fixed-bucket latency histogram (Prometheus `_bucket`/`_sum`/`_count`
/// semantics: buckets are cumulative at render time, stored sparse here).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
    overflow: AtomicU64,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    pub fn record_us(&self, us: u64) {
        match LATENCY_BUCKETS_US.iter().position(|&b| us <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Render cumulative `_bucket` lines plus `_sum` and `_count`.
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.overflow.load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{{labels}le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!("{name}_sum{{{labels}}} {}\n", self.sum_us()));
        out.push_str(&format!("{name}_count{{{labels}}} {}\n", self.count()));
    }
}

/// Per-pack observability.
#[derive(Debug)]
pub struct PackMetrics {
    pub pack_id: String,
    pub slug: String,
    /// Uncached probes executed against this pack's validator.
    pub probes: AtomicU64,
    /// Probes that returned `true`.
    pub accepts: AtomicU64,
    /// Latency of uncached probes.
    pub latency: Histogram,
}

impl PackMetrics {
    pub fn new(pack_id: &str, slug: &str) -> PackMetrics {
        PackMetrics {
            pack_id: pack_id.to_string(),
            slug: slug.to_string(),
            probes: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            latency: Histogram::default(),
        }
    }
}

/// All counters the service exposes.
#[derive(Debug)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub requests_detect: AtomicU64,
    pub requests_detect_column: AtomicU64,
    pub requests_detect_table: AtomicU64,
    pub requests_healthz: AtomicU64,
    pub requests_metrics: AtomicU64,
    /// 4xx/5xx responses (bad JSON, over-limit bodies, unknown routes).
    pub http_errors: AtomicU64,
    /// TCP connections accepted (each may carry many keep-alive requests).
    pub connections_total: AtomicU64,
    /// Connections refused with 503 because the handler pool was saturated.
    pub connections_shed: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Matrix cells the lazy tiered scheduler never issued — the probes an
    /// eager `value × pack` sweep would have run but first-match-wins (or
    /// the column threshold math) proved dead.
    pub probes_saved: AtomicU64,
    /// Uncached probes served by a leased (reset) executor vs. by a fresh
    /// snapshot clone. Reuses dominating clones is the steady state.
    pub executors_reused: AtomicU64,
    pub executors_cloned: AtomicU64,
    /// Total interpreter fuel burned by uncached probes.
    pub fuel_spent: AtomicU64,
    /// Values the service answered (across batch and column requests).
    pub values_served: AtomicU64,
    pub per_pack: Vec<PackMetrics>,
}

impl Metrics {
    pub fn new(packs: &[(String, String)]) -> Metrics {
        Metrics {
            requests_total: AtomicU64::new(0),
            requests_detect: AtomicU64::new(0),
            requests_detect_column: AtomicU64::new(0),
            requests_detect_table: AtomicU64::new(0),
            requests_healthz: AtomicU64::new(0),
            requests_metrics: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            probes_saved: AtomicU64::new(0),
            executors_reused: AtomicU64::new(0),
            executors_cloned: AtomicU64::new(0),
            fuel_spent: AtomicU64::new(0),
            values_served: AtomicU64::new(0),
            per_pack: packs
                .iter()
                .map(|(id, slug)| PackMetrics::new(id, slug))
                .collect(),
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Cache hit rate over everything probed so far (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let hits = Self::read(&self.cache_hits) as f64;
        let total = hits + Self::read(&self.cache_misses) as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Prometheus text exposition.
    pub fn render(&self, cache_entries: usize) -> String {
        let mut out = String::with_capacity(2048);
        let mut gauge = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        gauge(
            "autotype_requests_total",
            "HTTP requests received",
            Self::read(&self.requests_total),
        );
        gauge(
            "autotype_requests_detect_total",
            "POST /detect requests",
            Self::read(&self.requests_detect),
        );
        gauge(
            "autotype_requests_detect_column_total",
            "POST /detect/column requests",
            Self::read(&self.requests_detect_column),
        );
        gauge(
            "autotype_requests_detect_table_total",
            "POST /detect/table requests",
            Self::read(&self.requests_detect_table),
        );
        gauge(
            "autotype_requests_healthz_total",
            "GET /healthz requests",
            Self::read(&self.requests_healthz),
        );
        gauge(
            "autotype_requests_metrics_total",
            "GET /metrics requests",
            Self::read(&self.requests_metrics),
        );
        gauge(
            "autotype_http_errors_total",
            "Error responses returned",
            Self::read(&self.http_errors),
        );
        gauge(
            "autotype_cache_hits_total",
            "Verdict cache hits",
            Self::read(&self.cache_hits),
        );
        gauge(
            "autotype_cache_misses_total",
            "Verdict cache misses",
            Self::read(&self.cache_misses),
        );
        gauge(
            "autotype_connections_total",
            "TCP connections accepted",
            Self::read(&self.connections_total),
        );
        gauge(
            "autotype_connections_shed_total",
            "Connections refused with 503 under saturation",
            Self::read(&self.connections_shed),
        );
        gauge(
            "autotype_probes_saved_total",
            "Probe cells skipped by lazy tiered scheduling vs the eager matrix",
            Self::read(&self.probes_saved),
        );
        gauge(
            "autotype_executors_reused_total",
            "Uncached probes served by a leased (reset) executor",
            Self::read(&self.executors_reused),
        );
        gauge(
            "autotype_executors_cloned_total",
            "Uncached probes that had to clone a fresh snapshot executor",
            Self::read(&self.executors_cloned),
        );
        gauge(
            "autotype_fuel_spent_total",
            "Interpreter fuel burned by uncached probes",
            Self::read(&self.fuel_spent),
        );
        gauge(
            "autotype_values_served_total",
            "Values answered across batch and column requests",
            Self::read(&self.values_served),
        );
        gauge(
            "autotype_cache_entries",
            "Verdicts currently cached",
            cache_entries as u64,
        );
        for pm in &self.per_pack {
            let labels = format!("pack=\"{}\",slug=\"{}\",", pm.pack_id, pm.slug);
            out.push_str(&format!(
                "autotype_pack_probes_total{{pack=\"{}\",slug=\"{}\"}} {}\n",
                pm.pack_id,
                pm.slug,
                Self::read(&pm.probes)
            ));
            out.push_str(&format!(
                "autotype_pack_accepts_total{{pack=\"{}\",slug=\"{}\"}} {}\n",
                pm.pack_id,
                pm.slug,
                Self::read(&pm.accepts)
            ));
            pm.latency
                .render(&mut out, "autotype_pack_probe_latency_us", &labels);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_in_render() {
        let h = Histogram::default();
        h.record_us(5); // le=10
        h.record_us(60); // le=100
        h.record_us(1_000_000); // +Inf overflow
        let mut out = String::new();
        h.render(&mut out, "t", "");
        assert!(out.contains("t_bucket{le=\"10\"} 1"), "{out}");
        assert!(out.contains("t_bucket{le=\"100\"} 2"), "{out}");
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("t_count{} 3"), "{out}");
        assert_eq!(h.sum_us(), 1_000_065);
    }

    #[test]
    fn hit_rate_handles_idle_and_busy() {
        let m = Metrics::new(&[("p-1".into(), "x".into())]);
        assert_eq!(m.hit_rate(), 0.0);
        m.cache_hits.fetch_add(3, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_includes_per_pack_series() {
        let m = Metrics::new(&[("cc-abc".into(), "creditcard".into())]);
        Metrics::bump(&m.per_pack[0].probes);
        m.per_pack[0].latency.record_us(42);
        let text = m.render(7);
        assert!(text.contains("autotype_pack_probes_total{pack=\"cc-abc\",slug=\"creditcard\"} 1"));
        assert!(text.contains("autotype_cache_entries 7"));
        assert!(text.contains("autotype_pack_probe_latency_us_count"));
    }
}

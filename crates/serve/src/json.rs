//! Minimal JSON support for the service, implemented on `std` alone.
//!
//! The service's request/response surface is tiny — objects of strings and
//! string arrays in, flat objects out — so this module implements exactly
//! RFC 8259 parsing (all value kinds, escape sequences including `\uXXXX`
//! with surrogate pairs, a recursion depth cap) plus string escaping for
//! output. Numbers are kept as `f64`, which is sufficient here: nothing in
//! the protocol carries integers wider than 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// Nesting cap: a request nested deeper than this is rejected rather than
/// risking parser stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 32;

#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, what: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", "expected null").map(|_| Json::Null),
            Some(b't') => self
                .literal("true", "expected true")
                .map(|_| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected false")
                .map(|_| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{', "expected {")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected :")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| ParseError {
                at: start,
                what: "bad number",
            })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                self.literal("\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is already valid UTF-8
                    // because the body came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits; leaves `pos` just past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            code = (code << 4) | d;
            self.pos += 1;
        }
        Ok(code)
    }
}

/// Escape a string for embedding in JSON output (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `"key":"escaped-value"` or `"key":null`.
pub fn str_field(key: &str, value: Option<&str>) -> String {
    match value {
        Some(v) => format!("\"{}\":\"{}\"", escape(key), escape(v)),
        None => format!("\"{}\":null", escape(key)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = parse(r#"{"values": ["4111", "x y", ""], "limit": 3}"#).unwrap();
        let values = v.get("values").unwrap().as_array().unwrap();
        assert_eq!(values.len(), 3);
        assert_eq!(values[0].as_str(), Some("4111"));
        assert_eq!(v.get("limit"), Some(&Json::Number(3.0)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let v = parse(r#""a\n\t\"\\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
            "01x",
            "{\"a\":1} extra",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Depth bomb.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\nquote\" back\\slash\ttab\u{1}";
        let parsed = parse(&format!("\"{}\"", escape(original))).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }
}

//! Sharded LRU verdict cache.
//!
//! Verdicts are pure functions of `(pack, value)` — every probe clones the
//! pack's snapshot executor, so a cached `bool` can never go stale while
//! the pack set is fixed (the runtime is read-only; pack GC / hot-reload is
//! a ROADMAP item). That purity is what makes caching *transparent*: a hit
//! returns exactly what the probe would have computed.
//!
//! Layout: N independent shards, each a mutex around per-pack hash maps
//! with access stamps. The shard index is a hash of `(pack, value)`, so
//! contention spreads across shards instead of serializing on one lock.
//! Eviction is exact LRU within a shard: every get/put advances a per-shard
//! clock and restamps the entry; when a shard is full the minimum-stamp
//! entry is evicted (an `O(shard entries)` scan — shards are small and
//! eviction is off the common path).

use std::collections::HashMap;
use std::sync::Mutex;

struct Entry {
    verdict: bool,
    stamp: u64,
}

struct Shard {
    /// One map per pack, indexed by pack id — lets lookups borrow the
    /// probe value as `&str` instead of allocating a composite key.
    per_pack: Vec<HashMap<String, Entry>>,
    clock: u64,
    entries: usize,
}

impl Shard {
    fn evict_lru(&mut self) {
        let mut victim: Option<(usize, String, u64)> = None;
        for (pi, map) in self.per_pack.iter().enumerate() {
            for (value, entry) in map.iter() {
                if victim
                    .as_ref()
                    .is_none_or(|(_, _, stamp)| entry.stamp < *stamp)
                {
                    victim = Some((pi, value.clone(), entry.stamp));
                }
            }
        }
        if let Some((pi, value, _)) = victim {
            self.per_pack[pi].remove(&value);
            self.entries -= 1;
        }
    }
}

/// A sharded, exact-LRU cache of `(pack, value) → verdict`.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl ShardedLru {
    /// `shards` is rounded up to 1; `capacity` is the total entry budget,
    /// split evenly across shards (each shard gets at least one slot).
    pub fn new(shards: usize, capacity: usize, packs: usize) -> ShardedLru {
        let shards = shards.max(1);
        let capacity_per_shard = (capacity / shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        per_pack: (0..packs).map(|_| HashMap::new()).collect(),
                        clock: 0,
                        entries: 0,
                    })
                })
                .collect(),
            capacity_per_shard,
        }
    }

    fn shard_of(&self, pack: usize, value: &str) -> &Mutex<Shard> {
        // FNV-1a over the pack id then the value bytes.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in (pack as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for &b in value.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Look up a verdict, restamping the entry as most-recently-used.
    pub fn get(&self, pack: usize, value: &str) -> Option<bool> {
        let mut shard = self.shard_of(pack, value).lock().unwrap();
        shard.clock += 1;
        let stamp = shard.clock;
        let entry = shard.per_pack[pack].get_mut(value)?;
        entry.stamp = stamp;
        Some(entry.verdict)
    }

    /// Insert (or refresh) a verdict, evicting the shard's LRU entry when
    /// the shard is at capacity.
    pub fn put(&self, pack: usize, value: &str, verdict: bool) {
        let mut shard = self.shard_of(pack, value).lock().unwrap();
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(entry) = shard.per_pack[pack].get_mut(value) {
            entry.verdict = verdict;
            entry.stamp = stamp;
            return;
        }
        if shard.entries >= self.capacity_per_shard {
            shard.evict_lru();
        }
        shard.per_pack[pack].insert(value.to_string(), Entry { verdict, stamp });
        shard.entries += 1;
    }

    /// Total entries across all shards (metrics).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().entries).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_put_round_trips_per_pack() {
        let cache = ShardedLru::new(4, 64, 2);
        cache.put(0, "4111", true);
        cache.put(1, "4111", false);
        assert_eq!(cache.get(0, "4111"), Some(true));
        assert_eq!(cache.get(1, "4111"), Some(false));
        assert_eq!(cache.get(0, "other"), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        // One shard, capacity 2: inserting a third entry evicts the least
        // recently touched one.
        let cache = ShardedLru::new(1, 2, 1);
        cache.put(0, "a", true);
        cache.put(0, "b", true);
        assert_eq!(cache.get(0, "a"), Some(true)); // refresh "a"
        cache.put(0, "c", true);
        assert_eq!(cache.get(0, "b"), None, "b was LRU and must be evicted");
        assert_eq!(cache.get(0, "a"), Some(true));
        assert_eq!(cache.get(0, "c"), Some(true));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn refresh_does_not_grow_the_cache() {
        let cache = ShardedLru::new(1, 2, 1);
        cache.put(0, "a", true);
        cache.put(0, "a", false);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(0, "a"), Some(false));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ShardedLru::new(8, 1024, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..256 {
                        let v = format!("v{}", i % 64);
                        cache.put(t, &v, i % 2 == 0);
                        cache.get(t, &v);
                    }
                });
            }
        });
        assert!(cache.len() <= 1024);
    }
}

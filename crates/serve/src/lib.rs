//! # autotype-serve — the long-lived detection service
//!
//! Everything upstream of this crate is *synthesis*: mining open-source
//! code, tracing candidate functions, learning DNF-E validators. This
//! crate is the *deployment* half of that story — it never synthesizes.
//! A [`DetectorRuntime`] loads a directory of compiled detector packs
//! (`*.atpk`, written by `Session::save_pack`) at startup, rehydrates each
//! into a [`autotype_pack::PackValidator`], and answers detection queries
//! over HTTP:
//!
//! - `POST /detect` — single value or batch; per-value first-matching-pack
//!   verdicts, bit-identical to the in-process evaluation driver.
//! - `POST /detect/column` — whole-column detection with the paper's
//!   `VALUE_THRESHOLD` semantics.
//! - `GET /healthz` — liveness.
//! - `GET /metrics` — Prometheus text: request counters, cache hit/miss,
//!   fuel spent, per-pack probe latency histograms.
//!
//! Probes fan out across the same [`autotype_exec::ExecPool`] the
//! synthesis pipeline uses; verdicts are memoized in a sharded LRU cache
//! (sound because a verdict is a pure function of `(pack, value)`).
//!
//! ```no_run
//! use std::sync::Arc;
//! use autotype_serve::{serve, DetectorRuntime, ServerConfig};
//!
//! let rt = DetectorRuntime::load_dir("packs/".as_ref(), 4, 65_536).unwrap();
//! let handle = serve(Arc::new(rt), ServerConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! ```

pub mod cache;
pub mod http;
pub mod json;
pub mod metrics;
pub mod runtime;

pub use cache::ShardedLru;
pub use http::{serve, ServerConfig, ServerHandle};
pub use metrics::{Histogram, Metrics, PackMetrics};
pub use runtime::DetectorRuntime;

//! `autotype-serve` binary: load a pack directory and serve detection.
//!
//! ```text
//! autotype-serve PACK_DIR [--addr HOST:PORT] [--workers N] [--cache N]
//!                [--idle-timeout SECS] [--max-conns N] [--bootstrap]
//! ```
//!
//! `--bootstrap` first synthesizes detectors for a few built-in types
//! (credit card, IPv6, ISBN) from the bundled corpus and writes them into
//! `PACK_DIR` as `00-creditcard.atpk`, `01-ipv6.atpk`, ... — a one-command
//! demo of the full synthesize → pack → serve path. Without it, the
//! directory must already contain packs and nothing is synthesized.

use std::process::ExitCode;
use std::sync::Arc;

use autotype::{AutoType, AutoTypeConfig, NegativeMode};
use autotype_corpus::{build_corpus, CorpusConfig};
use autotype_rank::Method;
use autotype_serve::{serve, DetectorRuntime, ServerConfig};
use autotype_typesys::by_slug;
use rand::{rngs::StdRng, SeedableRng};

/// Types the `--bootstrap` demo synthesizes, in detection priority order.
const BOOTSTRAP_SLUGS: [&str; 3] = ["creditcard", "ipv6", "isbn"];

struct Args {
    pack_dir: std::path::PathBuf,
    addr: String,
    workers: usize,
    cache: usize,
    idle_timeout: u64,
    max_conns: usize,
    bootstrap: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: autotype-serve PACK_DIR [--addr HOST:PORT] [--workers N] [--cache N] \
         [--idle-timeout SECS] [--max-conns N] [--bootstrap]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let defaults = ServerConfig::default();
    let mut args = Args {
        pack_dir: std::path::PathBuf::new(),
        addr: "127.0.0.1:7450".to_string(),
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        cache: 65_536,
        idle_timeout: defaults.idle_timeout.as_secs(),
        max_conns: defaults.max_connections,
        bootstrap: false,
    };
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = it.next().ok_or_else(usage)?,
            "--workers" => {
                args.workers = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--cache" => args.cache = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?,
            "--idle-timeout" => {
                args.idle_timeout = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--max-conns" => {
                args.max_conns = it.next().and_then(|v| v.parse().ok()).ok_or_else(usage)?
            }
            "--bootstrap" => args.bootstrap = true,
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => return Err(usage()),
        }
    }
    if positional.len() != 1 {
        return Err(usage());
    }
    args.pack_dir = positional.remove(0).into();
    Ok(args)
}

/// Synthesize detectors for [`BOOTSTRAP_SLUGS`] and write them to `dir`.
fn bootstrap(dir: &std::path::Path, workers: usize) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    eprintln!("bootstrap: building corpus + search indexes ...");
    let engine = AutoType::new(
        build_corpus(&CorpusConfig::default()),
        AutoTypeConfig {
            workers,
            ..AutoTypeConfig::default()
        },
    );
    for (i, slug) in BOOTSTRAP_SLUGS.iter().enumerate() {
        let ty = by_slug(slug).ok_or_else(|| format!("unknown type slug {slug}"))?;
        let mut ex_rng = StdRng::seed_from_u64(0x5EEDu64 ^ ((ty.id as u64) << 7));
        let positives = ty.examples(&mut ex_rng, 20);
        let mut rng = StdRng::seed_from_u64(0x5EEDu64 ^ ty.id as u64);
        eprintln!("bootstrap: synthesizing {slug} ...");
        let mut session = engine
            .session(ty.keyword(), &positives, NegativeMode::Hierarchy, &mut rng)
            .ok_or_else(|| format!("{slug}: retrieval found no candidate functions"))?;
        let ranked = session.rank(Method::DnfS);
        let top = ranked
            .first()
            .cloned()
            .ok_or_else(|| format!("{slug}: ranking produced no functions"))?;
        let path = dir.join(format!("{i:02}-{slug}.atpk"));
        let pack = session
            .save_pack(&top, slug, Method::DnfS, &path)
            .map_err(|e| format!("{slug}: save pack: {e}"))?;
        eprintln!(
            "bootstrap: wrote {} ({}, score {:.3})",
            path.display(),
            pack.pack_id(),
            top.score
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    if args.bootstrap {
        if let Err(e) = bootstrap(&args.pack_dir, args.workers) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let runtime = match DetectorRuntime::load_dir(&args.pack_dir, args.workers, args.cache) {
        Ok(rt) => rt,
        Err(e) => {
            eprintln!("error: loading packs from {}: {e}", args.pack_dir.display());
            return ExitCode::FAILURE;
        }
    };
    if runtime.packs().is_empty() {
        eprintln!(
            "error: no *.atpk packs in {} (synthesize some with --bootstrap)",
            args.pack_dir.display()
        );
        return ExitCode::FAILURE;
    }
    for (i, p) in runtime.packs().iter().enumerate() {
        eprintln!("pack[{i}] {} — {}", p.pack_id(), p.label());
    }
    let config = ServerConfig {
        addr: args.addr,
        idle_timeout: std::time::Duration::from_secs(args.idle_timeout.max(1)),
        max_connections: args.max_conns.max(1),
        ..ServerConfig::default()
    };
    let handle = match serve(Arc::new(runtime), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "autotype-serve listening on http://{} ({} workers)",
        handle.addr(),
        args.workers
    );
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

//! A deliberately small HTTP/1.1 server over `std::net`, thread-per-
//! connection, `Connection: close` on every response.
//!
//! Routes:
//!
//! | method | path              | body                      | response |
//! |--------|-------------------|---------------------------|----------|
//! | POST   | `/detect`         | `{"value":"…"}` or `{"values":["…",…]}` | per-value verdicts |
//! | POST   | `/detect/column`  | `{"values":["…",…]}`      | whole-column verdict |
//! | GET    | `/healthz`        | —                         | liveness + pack count |
//! | GET    | `/metrics`        | —                         | Prometheus text |
//!
//! Request limits (body size, value count, read timeout) are enforced
//! before any detection work runs; violations produce 4xx responses with a
//! JSON error body. Graceful shutdown: a stop flag, a self-connect to
//! unblock `accept`, and a bounded wait for in-flight connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::runtime::DetectorRuntime;

/// Tunables for the listener; the defaults suit a local deployment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// Maximum number of values in one batch/column request.
    pub max_values: usize,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7450".to_string(),
            max_body: 1 << 20,
            max_values: 10_000,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Handle to a running server; dropping it does NOT stop the server —
/// call [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and wait (bounded) for
    /// in-flight connections to drain.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connections already handed to worker threads get a grace period.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Bind and start serving `runtime` in background threads; returns once
/// the listener is bound (so `handle.addr()` is immediately usable).
pub fn serve(runtime: Arc<DetectorRuntime>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));

    let accept_stop = stop.clone();
    let accept_active = active.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let runtime = runtime.clone();
            let config = config.clone();
            let active = accept_active.clone();
            active.fetch_add(1, Ordering::SeqCst);
            std::thread::spawn(move || {
                handle_connection(stream, &runtime, &config);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });

    Ok(ServerHandle {
        addr,
        stop,
        active,
        accept_thread: Some(accept_thread),
    })
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{{}}}", json::str_field("error", Some(message))),
        )
    }

    fn is_error(&self) -> bool {
        self.status >= 400
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn handle_connection(stream: TcpStream, runtime: &DetectorRuntime, config: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match read_request(&mut reader, config) {
        Ok((method, path, body)) => route(runtime, &method, &path, &body, config),
        Err(resp) => resp,
    };
    if response.is_error() {
        Metrics::bump(&runtime.metrics().http_errors);
    }
    Metrics::bump(&runtime.metrics().requests_total);
    write_response(stream, &response);
}

/// Parse the request line, headers, and body. Errors come back as ready-
/// made responses (408 on timeout, 413 over limit, 400 otherwise).
fn read_request(
    reader: &mut BufReader<TcpStream>,
    config: &ServerConfig,
) -> Result<(String, String, String), Response> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(Response::error(400, "empty request")),
        Ok(_) => {}
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            return Err(Response::error(408, "read timeout"))
        }
        Err(_) => return Err(Response::error(400, "unreadable request")),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(Response::error(400, "malformed request line"));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(Response::error(400, "truncated headers")),
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(Response::error(408, "read timeout"))
            }
            Err(_) => return Err(Response::error(400, "unreadable headers")),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "bad content-length"))?;
            }
        }
    }
    if content_length > config.max_body {
        return Err(Response::error(413, "request body too large"));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut
            {
                Response::error(408, "read timeout")
            } else {
                Response::error(400, "truncated body")
            }
        })?;
    }
    let body = String::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Ok((method, path, body))
}

fn route(
    runtime: &DetectorRuntime,
    method: &str,
    path: &str,
    body: &str,
    config: &ServerConfig,
) -> Response {
    let m = runtime.metrics();
    match (method, path) {
        ("POST", "/detect") => {
            Metrics::bump(&m.requests_detect);
            detect_endpoint(runtime, body, config)
        }
        ("POST", "/detect/column") => {
            Metrics::bump(&m.requests_detect_column);
            detect_column_endpoint(runtime, body, config)
        }
        ("GET", "/healthz") => {
            Metrics::bump(&m.requests_healthz);
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"packs\":{},\"workers\":{}}}",
                    runtime.packs().len(),
                    runtime.workers()
                ),
            )
        }
        ("GET", "/metrics") => {
            Metrics::bump(&m.requests_metrics);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: m.render(runtime.cache_entries()),
            }
        }
        ("POST", "/healthz" | "/metrics") | ("GET", "/detect" | "/detect/column") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "unknown path"),
    }
}

/// Pull the value list out of a request body: either `"value": "…"` (a
/// batch of one) or `"values": ["…", …]`.
fn parse_values(body: &str, config: &ServerConfig) -> Result<Vec<String>, Response> {
    let parsed = json::parse(body).map_err(|e| Response::error(400, &format!("bad JSON: {e}")))?;
    if let Some(v) = parsed.get("value") {
        let s = v
            .as_str()
            .ok_or_else(|| Response::error(400, "\"value\" must be a string"))?;
        return Ok(vec![s.to_string()]);
    }
    let values = parsed
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "expected \"value\" or \"values\""))?;
    if values.len() > config.max_values {
        return Err(Response::error(413, "too many values"));
    }
    values
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| Response::error(400, "\"values\" must be strings"))
        })
        .collect()
}

fn pack_fields(runtime: &DetectorRuntime, pack: Option<usize>) -> String {
    match pack {
        Some(pi) => {
            let p = &runtime.packs()[pi];
            format!(
                "{},{}",
                json::str_field("type", Some(p.slug())),
                json::str_field("pack", Some(p.pack_id()))
            )
        }
        None => format!(
            "{},{}",
            json::str_field("type", None),
            json::str_field("pack", None)
        ),
    }
}

fn detect_endpoint(runtime: &DetectorRuntime, body: &str, config: &ServerConfig) -> Response {
    let values = match parse_values(body, config) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let verdicts = runtime.detect_batch(&values);
    let results: Vec<String> = values
        .iter()
        .zip(&verdicts)
        .map(|(value, pack)| {
            format!(
                "{{{},{}}}",
                json::str_field("value", Some(value)),
                pack_fields(runtime, *pack)
            )
        })
        .collect();
    Response::json(200, format!("{{\"results\":[{}]}}", results.join(",")))
}

fn detect_column_endpoint(
    runtime: &DetectorRuntime,
    body: &str,
    config: &ServerConfig,
) -> Response {
    let values = match parse_values(body, config) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let pack = runtime.detect_column(&values);
    Response::json(
        200,
        format!(
            "{{{},\"values\":{}}}",
            pack_fields(runtime, pack),
            values.len()
        ),
    )
}

fn write_response(mut stream: TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(response.body.as_bytes());
    let _ = stream.flush();
}

//! A deliberately small HTTP/1.1 server over `std::net` with persistent
//! connections and a bounded handler pool.
//!
//! Routes:
//!
//! | method | path              | body                      | response |
//! |--------|-------------------|---------------------------|----------|
//! | POST   | `/detect`         | `{"value":"…"}` or `{"values":["…",…]}` | per-value verdicts |
//! | POST   | `/detect/column`  | `{"values":["…",…]}`      | whole-column verdict |
//! | POST   | `/detect/table`   | `{"columns":[["…",…],…]}` | one verdict per column |
//! | GET    | `/healthz`        | —                         | liveness + pack count |
//! | GET    | `/metrics`        | —                         | Prometheus text |
//!
//! Every `/detect*` body also accepts an optional `"max_fuel"` number: a
//! per-request interpreter fuel ceiling, clamped per pack to
//! `min(max_fuel, pack.fuel)`. Non-positive values are rejected with 400.
//!
//! ## Connection lifecycle
//!
//! Connections are persistent (HTTP/1.1 keep-alive): the handler loops
//! read-request → write-response on one socket until the client sends
//! `Connection: close`, goes quiet past the idle timeout, or closes. The
//! `Connection` header is honored in both directions — HTTP/1.1 defaults
//! to keep-alive, HTTP/1.0 must opt in with `Connection: keep-alive`.
//! Error responses always close (after a parse failure the request
//! framing is unknowable, so the socket cannot be trusted for another
//! round). An idle timeout with *zero* bytes read closes silently — that
//! is a client choosing not to reuse the connection, not an error — while
//! a timeout mid-request earns a 408.
//!
//! ## Bounded acceptor pool
//!
//! Accepted sockets flow through a bounded channel to a fixed pool of
//! `max_connections` handler threads; when every handler is busy and the
//! backlog is full, the acceptor sheds the connection inline with a 503
//! (`autotype_connections_shed_total`) instead of spawning without bound.
//! Request limits (body size, value count, read timeout) are enforced
//! before any detection work runs; violations produce 4xx responses with a
//! JSON error body. Graceful shutdown: a stop flag, a self-connect to
//! unblock `accept`, sender drop to retire idle handlers, and a bounded
//! wait for in-flight connections.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::runtime::DetectorRuntime;

/// Tunables for the listener; the defaults suit a local deployment.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Maximum request body size in bytes.
    pub max_body: usize,
    /// Maximum number of values in one batch/column/table request.
    pub max_values: usize,
    /// Socket read timeout while inside a request (headers/body).
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Handler pool size: connections served concurrently.
    pub max_connections: usize,
    /// Accepted-but-unclaimed connections queued for the pool; beyond
    /// this the acceptor sheds with 503. `0` means rendezvous — a
    /// connection is accepted only if a handler is already waiting.
    pub accept_backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7450".to_string(),
            max_body: 1 << 20,
            max_values: 10_000,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(5),
            max_connections: 64,
            accept_backlog: 64,
        }
    }
}

/// Handle to a running server; dropping it does NOT stop the server —
/// call [`shutdown`](ServerHandle::shutdown).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and wait (bounded) for
    /// in-flight connections to drain. Handler threads exit on their own
    /// once the acceptor drops the channel sender.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connections already handed to handler threads get a grace period.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while self.active.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Bind and start serving `runtime` in background threads; returns once
/// the listener is bound (so `handle.addr()` is immediately usable).
pub fn serve(runtime: Arc<DetectorRuntime>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));

    let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.accept_backlog);
    let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(rx));
    for _ in 0..config.max_connections.max(1) {
        let rx = rx.clone();
        let runtime = runtime.clone();
        let config = config.clone();
        let active = active.clone();
        std::thread::spawn(move || loop {
            // Hold the lock only while claiming the next connection.
            let conn = rx.lock().unwrap().recv();
            match conn {
                Ok(stream) => {
                    active.fetch_add(1, Ordering::SeqCst);
                    handle_connection(stream, &runtime, &config);
                    active.fetch_sub(1, Ordering::SeqCst);
                }
                // Sender dropped: the acceptor has shut down.
                Err(_) => break,
            }
        });
    }

    let accept_stop = stop.clone();
    let accept_metrics = runtime.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let m = accept_metrics.metrics();
            Metrics::bump(&m.connections_total);
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    Metrics::bump(&m.connections_shed);
                    Metrics::bump(&m.http_errors);
                    write_response(&stream, &Response::error(503, "server saturated"), false);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        // Dropping `tx` here retires idle handler threads.
    });

    Ok(ServerHandle {
        addr,
        stop,
        active,
        accept_thread: Some(accept_thread),
    })
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{{}}}", json::str_field("error", Some(message))),
        )
    }

    fn is_error(&self) -> bool {
        self.status >= 400
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Why [`read_request`] produced no request.
enum ReadHalt {
    /// Clean end of connection: EOF or idle timeout before any byte of a
    /// next request arrived. Close without a response.
    Silent,
    /// A malformed or timed-out request; answer it, then close.
    Respond(Response),
}

fn handle_connection(stream: TcpStream, runtime: &DetectorRuntime, config: &ServerConfig) {
    // Persistent connections interact badly with Nagle + delayed ACK
    // (~40 ms stalls per round trip once quickack decays); responses are
    // single complete writes, so disabling Nagle costs nothing.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    loop {
        // Between requests the clock is the idle timeout; once the request
        // line lands, `read_request` switches to the in-request timeout.
        let _ = stream.set_read_timeout(Some(config.idle_timeout));
        match read_request(&stream, &mut reader, config) {
            Ok((method, path, body, client_keep_alive)) => {
                let response = route(runtime, &method, &path, &body, config);
                if response.is_error() {
                    Metrics::bump(&runtime.metrics().http_errors);
                }
                Metrics::bump(&runtime.metrics().requests_total);
                let keep_alive = client_keep_alive && !response.is_error();
                write_response(&stream, &response, keep_alive);
                if !keep_alive {
                    return;
                }
            }
            Err(ReadHalt::Silent) => return,
            Err(ReadHalt::Respond(response)) => {
                Metrics::bump(&runtime.metrics().http_errors);
                Metrics::bump(&runtime.metrics().requests_total);
                write_response(&stream, &response, false);
                return;
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Parse one request: request line, headers, body. Returns the method,
/// path, body, and whether the client wants the connection kept alive.
fn read_request(
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
    config: &ServerConfig,
) -> Result<(String, String, String, bool), ReadHalt> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadHalt::Silent),
        Ok(_) => {}
        Err(e) if is_timeout(&e) => {
            // No bytes yet → the connection idled out; partial line → the
            // client stalled mid-request.
            return if line.is_empty() {
                Err(ReadHalt::Silent)
            } else {
                Err(ReadHalt::Respond(Response::error(408, "read timeout")))
            };
        }
        Err(_) => {
            return Err(ReadHalt::Respond(Response::error(
                400,
                "unreadable request",
            )))
        }
    }
    // The request is underway: switch to the (usually longer) in-request
    // read timeout for headers and body.
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || path.is_empty() {
        return Err(ReadHalt::Respond(Response::error(
            400,
            "malformed request line",
        )));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 must opt in.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(ReadHalt::Respond(Response::error(400, "truncated headers"))),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                return Err(ReadHalt::Respond(Response::error(408, "read timeout")))
            }
            Err(_) => {
                return Err(ReadHalt::Respond(Response::error(
                    400,
                    "unreadable headers",
                )))
            }
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadHalt::Respond(Response::error(400, "bad content-length")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
        }
    }
    if content_length > config.max_body {
        return Err(ReadHalt::Respond(Response::error(
            413,
            "request body too large",
        )));
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if is_timeout(&e) {
                ReadHalt::Respond(Response::error(408, "read timeout"))
            } else {
                ReadHalt::Respond(Response::error(400, "truncated body"))
            }
        })?;
    }
    let body = String::from_utf8(body)
        .map_err(|_| ReadHalt::Respond(Response::error(400, "body is not UTF-8")))?;
    Ok((method, path, body, keep_alive))
}

fn route(
    runtime: &DetectorRuntime,
    method: &str,
    path: &str,
    body: &str,
    config: &ServerConfig,
) -> Response {
    let m = runtime.metrics();
    match (method, path) {
        ("POST", "/detect") => {
            Metrics::bump(&m.requests_detect);
            detect_endpoint(runtime, body, config)
        }
        ("POST", "/detect/column") => {
            Metrics::bump(&m.requests_detect_column);
            detect_column_endpoint(runtime, body, config)
        }
        ("POST", "/detect/table") => {
            Metrics::bump(&m.requests_detect_table);
            detect_table_endpoint(runtime, body, config)
        }
        ("GET", "/healthz") => {
            Metrics::bump(&m.requests_healthz);
            Response::json(
                200,
                format!(
                    "{{\"status\":\"ok\",\"packs\":{},\"workers\":{}}}",
                    runtime.packs().len(),
                    runtime.workers()
                ),
            )
        }
        ("GET", "/metrics") => {
            Metrics::bump(&m.requests_metrics);
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: m.render(runtime.cache_entries()),
            }
        }
        ("POST", "/healthz" | "/metrics")
        | ("GET", "/detect" | "/detect/column" | "/detect/table") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "unknown path"),
    }
}

/// Extract the optional `"max_fuel"` ceiling from a parsed body. Absent →
/// `None` (full pack budgets); present it must be a positive number.
fn parse_max_fuel(parsed: &Json) -> Result<Option<u64>, Response> {
    match parsed.get("max_fuel") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_number()
                .ok_or_else(|| Response::error(400, "\"max_fuel\" must be a number"))?;
            if n <= 0.0 || n.is_nan() {
                return Err(Response::error(400, "\"max_fuel\" must be positive"));
            }
            // Saturating: anything ≥ 2^64 just means "no extra ceiling".
            Ok(Some(n as u64))
        }
    }
}

/// Pull the value list out of a parsed request body: either `"value": "…"`
/// (a batch of one) or `"values": ["…", …]`.
fn parse_values(parsed: &Json, config: &ServerConfig) -> Result<Vec<String>, Response> {
    if let Some(v) = parsed.get("value") {
        let s = v
            .as_str()
            .ok_or_else(|| Response::error(400, "\"value\" must be a string"))?;
        return Ok(vec![s.to_string()]);
    }
    let values = parsed
        .get("values")
        .and_then(Json::as_array)
        .ok_or_else(|| Response::error(400, "expected \"value\" or \"values\""))?;
    if values.len() > config.max_values {
        return Err(Response::error(413, "too many values"));
    }
    string_values(values)
}

fn string_values(items: &[Json]) -> Result<Vec<String>, Response> {
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| Response::error(400, "values must be strings"))
        })
        .collect()
}

fn pack_fields(runtime: &DetectorRuntime, pack: Option<usize>) -> String {
    match pack {
        Some(pi) => {
            let p = &runtime.packs()[pi];
            format!(
                "{},{}",
                json::str_field("type", Some(p.slug())),
                json::str_field("pack", Some(p.pack_id()))
            )
        }
        None => format!(
            "{},{}",
            json::str_field("type", None),
            json::str_field("pack", None)
        ),
    }
}

fn detect_endpoint(runtime: &DetectorRuntime, body: &str, config: &ServerConfig) -> Response {
    let parsed = match json::parse(body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let (values, max_fuel) = match (parse_values(&parsed, config), parse_max_fuel(&parsed)) {
        (Ok(v), Ok(f)) => (v, f),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let verdicts = runtime.detect_batch_with(&values, max_fuel);
    let results: Vec<String> = values
        .iter()
        .zip(&verdicts)
        .map(|(value, pack)| {
            format!(
                "{{{},{}}}",
                json::str_field("value", Some(value)),
                pack_fields(runtime, *pack)
            )
        })
        .collect();
    Response::json(200, format!("{{\"results\":[{}]}}", results.join(",")))
}

fn detect_column_endpoint(
    runtime: &DetectorRuntime,
    body: &str,
    config: &ServerConfig,
) -> Response {
    let parsed = match json::parse(body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let (values, max_fuel) = match (parse_values(&parsed, config), parse_max_fuel(&parsed)) {
        (Ok(v), Ok(f)) => (v, f),
        (Err(resp), _) | (_, Err(resp)) => return resp,
    };
    let pack = runtime.detect_column_with(&values, max_fuel);
    Response::json(
        200,
        format!(
            "{{{},\"values\":{}}}",
            pack_fields(runtime, pack),
            values.len()
        ),
    )
}

fn detect_table_endpoint(runtime: &DetectorRuntime, body: &str, config: &ServerConfig) -> Response {
    let parsed = match json::parse(body) {
        Ok(p) => p,
        Err(e) => return Response::error(400, &format!("bad JSON: {e}")),
    };
    let max_fuel = match parse_max_fuel(&parsed) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let raw = match parsed.get("columns").and_then(Json::as_array) {
        Some(cols) => cols,
        None => return Response::error(400, "expected \"columns\": [[…], …]"),
    };
    let mut columns: Vec<Vec<String>> = Vec::with_capacity(raw.len());
    let mut total = 0usize;
    for col in raw {
        let items = match col.as_array() {
            Some(items) => items,
            None => return Response::error(400, "each column must be an array of strings"),
        };
        total += items.len();
        if total > config.max_values {
            return Response::error(413, "too many values");
        }
        match string_values(items) {
            Ok(v) => columns.push(v),
            Err(resp) => return resp,
        }
    }
    let verdicts = runtime.detect_table(&columns, max_fuel);
    let results: Vec<String> = columns
        .iter()
        .zip(&verdicts)
        .map(|(col, pack)| {
            format!(
                "{{{},\"values\":{}}}",
                pack_fields(runtime, *pack),
                col.len()
            )
        })
        .collect();
    Response::json(200, format!("{{\"columns\":[{}]}}", results.join(",")))
}

fn write_response(mut stream: &TcpStream, response: &Response, keep_alive: bool) {
    // One write_all per response: a single TCP segment where possible, so
    // Nagle never holds the body back waiting for an ACK of the head.
    let mut message = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    message.push_str(&response.body);
    let _ = stream.write_all(message.as_bytes());
    let _ = stream.flush();
}

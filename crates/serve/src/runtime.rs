//! The read-only detection runtime: a fixed, priority-ordered set of
//! rehydrated detector packs, a shared execution pool, a verdict cache,
//! and live metrics.
//!
//! ## Semantics
//!
//! Detection follows the evaluation driver's contract exactly
//! (`autotype_tables::detect_by_values_mut` and the batched variant):
//! packs are scanned in **priority order** — lexicographic pack-file order
//! at load time — and the **first** pack that accepts a value (or whose
//! per-column accept fraction clears `VALUE_THRESHOLD`) wins. Verdicts are
//! pure functions of `(pack, value)` (every probe clones the pack's
//! snapshot executor), so the cache and the pool are both transparent:
//! any worker count and any cache state produce bit-identical answers.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::Instant;

use autotype_exec::ExecPool;
use autotype_pack::{load_pack, PackError, PackValidator, PACK_EXTENSION};
use autotype_tables::column_passes;

use crate::cache::ShardedLru;
use crate::metrics::Metrics;

/// Shard count for the verdict cache. Fixed rather than scaled to the
/// worker count: 16 mutexes are cheap and keep contention negligible even
/// on large machines.
const CACHE_SHARDS: usize = 16;

/// Everything a serving process needs, built once at startup.
pub struct DetectorRuntime {
    packs: Vec<PackValidator>,
    pool: ExecPool,
    cache: ShardedLru,
    metrics: Metrics,
}

impl DetectorRuntime {
    /// Build a runtime from already-loaded validators. Pack order is the
    /// detection priority order.
    pub fn from_packs(packs: Vec<PackValidator>, workers: usize, cache_capacity: usize) -> Self {
        let summaries: Vec<(String, String)> = packs
            .iter()
            .map(|p| (p.pack_id().to_string(), p.slug().to_string()))
            .collect();
        let cache = ShardedLru::new(CACHE_SHARDS, cache_capacity.max(1), packs.len());
        DetectorRuntime {
            metrics: Metrics::new(&summaries),
            cache,
            pool: ExecPool::new(workers),
            packs,
        }
    }

    /// Load every `*.atpk` file in `dir`, **sorted by file name** — the
    /// file-name sort defines detection priority, so operators order packs
    /// by prefixing names (`00-creditcard.atpk`, `01-ipv6.atpk`, ...).
    pub fn load_dir(dir: &Path, workers: usize, cache_capacity: usize) -> Result<Self, PackError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(PACK_EXTENSION))
            .collect();
        paths.sort();
        let packs = paths
            .iter()
            .map(|p| load_pack(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_packs(packs, workers, cache_capacity))
    }

    pub fn packs(&self) -> &[PackValidator] {
        &self.packs
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Entries currently held by the verdict cache (for `/metrics`).
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// One `(pack, value)` verdict, through the cache, with full metric
    /// accounting. This is the only place uncached probes run.
    pub fn probe(&self, pack: usize, value: &str) -> bool {
        if let Some(verdict) = self.cache.get(pack, value) {
            Metrics::bump(&self.metrics.cache_hits);
            return verdict;
        }
        Metrics::bump(&self.metrics.cache_misses);
        let start = Instant::now();
        let (verdict, fuel) = self.packs[pack].accepts_with_fuel(value);
        let pm = &self.metrics.per_pack[pack];
        pm.latency.record_us(start.elapsed().as_micros() as u64);
        Metrics::bump(&pm.probes);
        if verdict {
            Metrics::bump(&pm.accepts);
        }
        self.metrics.fuel_spent.fetch_add(fuel, Ordering::Relaxed);
        self.cache.put(pack, value, verdict);
        verdict
    }

    /// Cache read without touching hit/miss counters; falls back to a
    /// (counted) probe if the entry was evicted. Used by the second pass of
    /// [`detect_column`](Self::detect_column), which re-reads verdicts the
    /// warm pass just computed — counting those reads as hits would
    /// double-book every column value.
    fn verdict_quiet(&self, pack: usize, value: &str) -> bool {
        match self.cache.get(pack, value) {
            Some(verdict) => verdict,
            None => self.probe(pack, value),
        }
    }

    /// Detect a single value: first pack (in priority order) that accepts.
    /// Returns the pack index.
    pub fn detect_value(&self, value: &str) -> Option<usize> {
        self.metrics.values_served.fetch_add(1, Ordering::Relaxed);
        (0..self.packs.len()).find(|&pi| self.probe(pi, value))
    }

    /// Detect a batch of values, fanning the `value × pack` verdict matrix
    /// across the execution pool and merging first-matching-pack per value.
    ///
    /// Identical to mapping [`detect_value`](Self::detect_value) over the
    /// batch (verdicts are pure), except that all cells are evaluated — the
    /// eager matrix is what makes the work embarrassingly parallel, and
    /// every cell lands in the cache for later requests.
    pub fn detect_batch(&self, values: &[String]) -> Vec<Option<usize>> {
        self.metrics
            .values_served
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        if self.packs.is_empty() || values.is_empty() {
            return vec![None; values.len()];
        }
        let npacks = self.packs.len();
        let cells: Vec<(usize, usize)> = (0..values.len())
            .flat_map(|vi| (0..npacks).map(move |pi| (vi, pi)))
            .collect();
        let verdicts = self
            .pool
            .run_ordered(cells, |_, (vi, pi)| self.probe(pi, &values[vi]));
        (0..values.len())
            .map(|vi| (0..npacks).find(|pi| verdicts[vi * npacks + pi]))
            .collect()
    }

    /// Detect a whole column: first pack (in priority order) whose accept
    /// fraction over the column clears `VALUE_THRESHOLD` — the exact
    /// semantics of the evaluation driver's `detect_by_values_mut`.
    ///
    /// The `value × pack` matrix is warmed through the pool first (counted
    /// normally), then the threshold scan re-reads verdicts from the cache
    /// without counting.
    pub fn detect_column(&self, values: &[String]) -> Option<usize> {
        self.metrics
            .values_served
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        if self.packs.is_empty() || values.is_empty() {
            return None;
        }
        let npacks = self.packs.len();
        let cells: Vec<(usize, usize)> = (0..values.len())
            .flat_map(|vi| (0..npacks).map(move |pi| (vi, pi)))
            .collect();
        self.pool
            .run_ordered(cells, |_, (vi, pi)| self.probe(pi, &values[vi]));
        (0..npacks).find(|&pi| column_passes(values, |v| self.verdict_quiet(pi, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_exec::{EntryPoint, Literal};
    use autotype_lang::{SiteId, ValueSummary};
    use autotype_pack::Pack;

    /// A pack whose DNF-E is just the synthetic black-box literal "the
    /// function returned True" — robust to branch-site numbering, so the
    /// tests only depend on the program's return value.
    fn boolean_pack(slug: &str, func: &str, source: &str) -> Pack {
        Pack {
            slug: slug.into(),
            keyword: slug.into(),
            label: format!("demo/mod.{func}"),
            repo_name: "demo".into(),
            file: "mod".into(),
            strategy: "S1".into(),
            method: "DNF-S".into(),
            score: 1.0,
            neg_fraction: 0.0,
            explanation: "(ret==True)".into(),
            fuel: 10_000,
            installs: 0,
            candidate_file: 0,
            entry: EntryPoint::Function { name: func.into() },
            files: vec![("mod".into(), source.into())],
            packages: vec![],
            dnf_e: vec![vec![Literal::Ret {
                site: SiteId::new(u32::MAX, 0),
                value: ValueSummary::Bool(true),
            }]],
        }
    }

    fn runtime(workers: usize) -> DetectorRuntime {
        // Priority order: even-length first, then short (< 3 chars).
        let even = boolean_pack(
            "evenlen",
            "is_even_len",
            "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n",
        );
        let short = boolean_pack(
            "short",
            "is_short",
            "def is_short(s):\n    if len(s) < 3:\n        return True\n    return False\n",
        );
        DetectorRuntime::from_packs(
            vec![even.validator().unwrap(), short.validator().unwrap()],
            workers,
            1024,
        )
    }

    #[test]
    fn detect_value_first_match_wins() {
        let rt = runtime(1);
        // "ab": even length → pack 0 wins even though pack 1 also accepts.
        assert_eq!(rt.detect_value("ab"), Some(0));
        // "a": odd but short → pack 1.
        assert_eq!(rt.detect_value("a"), Some(1));
        // "abc": odd and long → no pack.
        assert_eq!(rt.detect_value("abc"), None);
    }

    #[test]
    fn detect_batch_matches_serial_at_any_worker_count() {
        let values: Vec<String> = ["ab", "a", "abc", "abcd", "", "xyzzy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let serial = runtime(1);
        let expected: Vec<Option<usize>> = values.iter().map(|v| serial.detect_value(v)).collect();
        for workers in [1usize, 2, 4, 8] {
            let rt = runtime(workers);
            assert_eq!(rt.detect_batch(&values), expected, "workers={workers}");
        }
    }

    #[test]
    fn second_identical_batch_is_all_cache_hits() {
        let rt = runtime(2);
        let values: Vec<String> = ["ab", "abc", "x"].iter().map(|s| s.to_string()).collect();
        let first = rt.detect_batch(&values);
        let misses_after_first = Metrics::read(&rt.metrics().cache_misses);
        assert_eq!(misses_after_first, 6, "3 values × 2 packs, all uncached");
        let second = rt.detect_batch(&values);
        assert_eq!(first, second);
        assert_eq!(
            Metrics::read(&rt.metrics().cache_misses),
            misses_after_first,
            "second batch must not probe"
        );
        assert_eq!(Metrics::read(&rt.metrics().cache_hits), 6);
        assert!(rt.metrics().hit_rate() > 0.49);
    }

    #[test]
    fn detect_column_uses_threshold_and_priority() {
        let rt = runtime(4);
        // 5/6 even-length (> 0.8 threshold) → pack 0.
        let mostly_even: Vec<String> = ["ab", "cd", "ef", "gh", "ij", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(rt.detect_column(&mostly_even), Some(0));
        // All short-but-odd → only pack 1 passes.
        let short_odd: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(rt.detect_column(&short_odd), Some(1));
        // Mixed junk: neither passes.
        let junk: Vec<String> = ["abc", "defgh", "x", "yz"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(rt.detect_column(&junk), None);
        // Empty column never matches.
        assert_eq!(rt.detect_column(&[]), None);
    }

    #[test]
    fn column_warm_pass_does_not_double_count_hits() {
        let rt = runtime(1);
        let values: Vec<String> = ["ab", "cd", "ef"].iter().map(|s| s.to_string()).collect();
        rt.detect_column(&values);
        // Warm pass: 3 values × 2 packs = 6 misses; the threshold scan
        // re-reads quietly, so hits stay 0.
        assert_eq!(Metrics::read(&rt.metrics().cache_misses), 6);
        assert_eq!(Metrics::read(&rt.metrics().cache_hits), 0);
    }
}

//! The read-only detection runtime: a fixed, priority-ordered set of
//! rehydrated detector packs, a shared execution pool, a verdict cache,
//! leased probe executors, and live metrics.
//!
//! ## Semantics
//!
//! Detection follows the evaluation driver's contract exactly
//! (`autotype_tables::detect_by_values_mut` and the batched variant):
//! packs are scanned in **priority order** — lexicographic pack-file order
//! at load time — and the **first** pack that accepts a value (or whose
//! per-column accept fraction clears `VALUE_THRESHOLD`) wins. Verdicts are
//! pure functions of `(pack, value)` (leased executors are rolled back to
//! the pack snapshot after every probe), so the cache, the pool, and the
//! scheduler are all transparent: any worker count, any cache state, and
//! any probe order produce bit-identical answers.
//!
//! ## Lazy tiered scheduling
//!
//! First-match-wins makes most of the eager `value × pack` matrix dead
//! work: once pack 0 accepts a value, packs 1..N can never be consulted
//! for it. The scheduler therefore probes **one pack tier at a time**
//! across all still-unresolved values (each tier is one
//! [`ExecPool::run_ordered`] fan-out), drops resolved values, and advances
//! to the next tier. Columns additionally stop a tier's wave as soon as
//! the accept count either mathematically clears `VALUE_THRESHOLD` or can
//! no longer reach it. Probe purity is what makes this safe: skipping a
//! cell the merge would have discarded anyway changes no verdict, only the
//! probe count — exported as `autotype_probes_saved_total`. The
//! `*_eager` variants keep the full-matrix behavior for equivalence tests
//! and benchmarks.
//!
//! ## Per-request fuel ceilings
//!
//! Every `detect_*_with` entry point takes an optional `max_fuel`, clamped
//! per pack to `min(max_fuel, pack.fuel)`. A ceiling **below** a pack's
//! own budget changes what a verdict means (a long-running probe exhausts
//! early and rejects), so capped probes bypass the `(pack, value)`-keyed
//! cache in both directions — they neither read stale full-budget verdicts
//! nor poison the cache with starved ones.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

use autotype_exec::ExecPool;
use autotype_pack::{load_pack, PackError, PackValidator, ProbeExecutor, PACK_EXTENSION};
use autotype_tables::{column_passes, VALUE_THRESHOLD};

use crate::cache::ShardedLru;
use crate::metrics::Metrics;

/// Shard count for the verdict cache. Fixed rather than scaled to the
/// worker count: 16 mutexes are cheap and keep contention negligible even
/// on large machines.
const CACHE_SHARDS: usize = 16;

/// Cells per column contributed to one scheduling wave: `workers × this`.
/// Large enough that a wave keeps every pool worker busy, small enough
/// that column early-termination still skips most of a long column.
const WAVE_FACTOR: usize = 4;

/// Everything a serving process needs, built once at startup.
pub struct DetectorRuntime {
    packs: Vec<PackValidator>,
    /// Per-pack spares of leased probe executors. A probe pops a slot
    /// (cloning only when the spare list is empty), runs, and pushes the
    /// reset slot back — so the clone cost is paid once per concurrent
    /// worker per pack, not once per probe. Bounded by the pool width.
    spares: Vec<Mutex<Vec<ProbeExecutor>>>,
    pool: ExecPool,
    cache: ShardedLru,
    metrics: Metrics,
}

impl DetectorRuntime {
    /// Build a runtime from already-loaded validators. Pack order is the
    /// detection priority order.
    pub fn from_packs(packs: Vec<PackValidator>, workers: usize, cache_capacity: usize) -> Self {
        let summaries: Vec<(String, String)> = packs
            .iter()
            .map(|p| (p.pack_id().to_string(), p.slug().to_string()))
            .collect();
        let cache = ShardedLru::new(CACHE_SHARDS, cache_capacity.max(1), packs.len());
        DetectorRuntime {
            metrics: Metrics::new(&summaries),
            cache,
            spares: (0..packs.len()).map(|_| Mutex::new(Vec::new())).collect(),
            pool: ExecPool::new(workers),
            packs,
        }
    }

    /// Load every `*.atpk` file in `dir`, **sorted by file name** — the
    /// file-name sort defines detection priority, so operators order packs
    /// by prefixing names (`00-creditcard.atpk`, `01-ipv6.atpk`, ...).
    pub fn load_dir(dir: &Path, workers: usize, cache_capacity: usize) -> Result<Self, PackError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(PACK_EXTENSION))
            .collect();
        paths.sort();
        let packs = paths
            .iter()
            .map(|p| load_pack(p))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::from_packs(packs, workers, cache_capacity))
    }

    pub fn packs(&self) -> &[PackValidator] {
        &self.packs
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Entries currently held by the verdict cache (for `/metrics`).
    pub fn cache_entries(&self) -> usize {
        self.cache.len()
    }

    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// One uncached `(pack, value)` probe through a leased executor, with
    /// full metric accounting. This is the only place probes execute.
    fn probe_uncached(&self, pack: usize, value: &str, max_fuel: Option<u64>) -> bool {
        let start = Instant::now();
        let slot = self.spares[pack].lock().unwrap().pop();
        let mut slot = match slot {
            Some(slot) => {
                Metrics::bump(&self.metrics.executors_reused);
                slot
            }
            None => {
                Metrics::bump(&self.metrics.executors_cloned);
                self.packs[pack].probe_executor()
            }
        };
        let (verdict, fuel) = self.packs[pack].accepts_with_fuel_in(&mut slot, value, max_fuel);
        {
            let mut spares = self.spares[pack].lock().unwrap();
            if spares.len() < self.pool.workers() {
                spares.push(slot);
            }
        }
        let pm = &self.metrics.per_pack[pack];
        pm.latency.record_us(start.elapsed().as_micros() as u64);
        Metrics::bump(&pm.probes);
        if verdict {
            Metrics::bump(&pm.accepts);
        }
        self.metrics.fuel_spent.fetch_add(fuel, Ordering::Relaxed);
        verdict
    }

    /// One `(pack, value)` verdict through the cache (full pack budget).
    pub fn probe(&self, pack: usize, value: &str) -> bool {
        self.probe_capped(pack, value, None)
    }

    /// [`probe`](Self::probe) with an optional fuel ceiling. Ceilings below
    /// the pack budget bypass the cache (see the module docs).
    fn probe_capped(&self, pack: usize, value: &str, max_fuel: Option<u64>) -> bool {
        if max_fuel.is_some_and(|cap| cap < self.packs[pack].fuel_budget()) {
            return self.probe_uncached(pack, value, max_fuel);
        }
        if let Some(verdict) = self.cache.get(pack, value) {
            Metrics::bump(&self.metrics.cache_hits);
            return verdict;
        }
        Metrics::bump(&self.metrics.cache_misses);
        let verdict = self.probe_uncached(pack, value, None);
        self.cache.put(pack, value, verdict);
        verdict
    }

    /// Cache read without touching hit/miss counters; falls back to a
    /// (counted) probe if the entry was evicted. Used by the second pass of
    /// [`detect_column_eager`](Self::detect_column_eager), which re-reads
    /// verdicts the warm pass just computed — counting those reads as hits
    /// would double-book every column value.
    fn verdict_quiet(&self, pack: usize, value: &str) -> bool {
        match self.cache.get(pack, value) {
            Some(verdict) => verdict,
            None => self.probe(pack, value),
        }
    }

    /// Detect a single value: first pack (in priority order) that accepts.
    /// Returns the pack index.
    pub fn detect_value(&self, value: &str) -> Option<usize> {
        self.detect_value_with(value, None)
    }

    /// [`detect_value`](Self::detect_value) with an optional per-request
    /// fuel ceiling.
    pub fn detect_value_with(&self, value: &str, max_fuel: Option<u64>) -> Option<usize> {
        self.metrics.values_served.fetch_add(1, Ordering::Relaxed);
        let mut issued = 0u64;
        let found = (0..self.packs.len()).find(|&pi| {
            issued += 1;
            self.probe_capped(pi, value, max_fuel)
        });
        self.metrics
            .probes_saved
            .fetch_add(self.packs.len() as u64 - issued, Ordering::Relaxed);
        found
    }

    /// Detect a batch of values with lazy tiered scheduling: probe pack 0
    /// across all values through the pool, drop the values it claimed,
    /// advance to pack 1 with the survivors, and so on. Identical verdicts
    /// to mapping [`detect_value`](Self::detect_value) over the batch;
    /// cells below the first match are never issued.
    pub fn detect_batch(&self, values: &[String]) -> Vec<Option<usize>> {
        self.detect_batch_with(values, None)
    }

    /// [`detect_batch`](Self::detect_batch) with an optional per-request
    /// fuel ceiling.
    pub fn detect_batch_with(
        &self,
        values: &[String],
        max_fuel: Option<u64>,
    ) -> Vec<Option<usize>> {
        self.metrics
            .values_served
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        let npacks = self.packs.len();
        let mut out = vec![None; values.len()];
        if npacks == 0 || values.is_empty() {
            return out;
        }
        let mut issued = 0u64;
        let mut unresolved: Vec<usize> = (0..values.len()).collect();
        for pi in 0..npacks {
            if unresolved.is_empty() {
                break;
            }
            issued += unresolved.len() as u64;
            let verdicts = self.pool.run_ordered(unresolved.clone(), |_, vi| {
                self.probe_capped(pi, &values[vi], max_fuel)
            });
            let mut survivors = Vec::with_capacity(unresolved.len());
            for (&vi, verdict) in unresolved.iter().zip(verdicts) {
                if verdict {
                    out[vi] = Some(pi);
                } else {
                    survivors.push(vi);
                }
            }
            unresolved = survivors;
        }
        self.metrics
            .probes_saved
            .fetch_add((values.len() * npacks) as u64 - issued, Ordering::Relaxed);
        out
    }

    /// The eager `value × pack` matrix [`detect_batch`](Self::detect_batch)
    /// replaced: every cell is evaluated through the pool and the merge
    /// discards cells below the first match. Kept as the reference
    /// implementation for lazy == eager equivalence tests and benchmarks
    /// (it also warms the cache for *every* pack, which the lazy path
    /// deliberately does not).
    pub fn detect_batch_eager(&self, values: &[String]) -> Vec<Option<usize>> {
        self.metrics
            .values_served
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        if self.packs.is_empty() || values.is_empty() {
            return vec![None; values.len()];
        }
        let npacks = self.packs.len();
        let cells: Vec<(usize, usize)> = (0..values.len())
            .flat_map(|vi| (0..npacks).map(move |pi| (vi, pi)))
            .collect();
        let verdicts = self
            .pool
            .run_ordered(cells, |_, (vi, pi)| self.probe(pi, &values[vi]));
        (0..values.len())
            .map(|vi| (0..npacks).find(|pi| verdicts[vi * npacks + pi]))
            .collect()
    }

    /// Detect a whole column: first pack (in priority order) whose accept
    /// fraction over the column clears `VALUE_THRESHOLD` — the exact
    /// semantics of the evaluation driver's `detect_by_values_mut`, with
    /// lazy tiered scheduling and intra-tier early termination.
    pub fn detect_column(&self, values: &[String]) -> Option<usize> {
        self.detect_column_with(values, None)
    }

    /// [`detect_column`](Self::detect_column) with an optional per-request
    /// fuel ceiling.
    pub fn detect_column_with(&self, values: &[String], max_fuel: Option<u64>) -> Option<usize> {
        self.detect_columns_tiered(&[values], max_fuel)[0]
    }

    /// Detect every column of a table in one tiered schedule — the
    /// `POST /detect/table` fan-out. Per column, the verdict equals
    /// [`detect_column`](Self::detect_column); across columns, each tier's
    /// waves interleave all undecided columns so the pool stays saturated.
    pub fn detect_table(
        &self,
        columns: &[Vec<String>],
        max_fuel: Option<u64>,
    ) -> Vec<Option<usize>> {
        let refs: Vec<&[String]> = columns.iter().map(Vec::as_slice).collect();
        self.detect_columns_tiered(&refs, max_fuel)
    }

    /// The tiered column scheduler. For each pack tier, still-unclaimed
    /// columns contribute waves of `workers × WAVE_FACTOR` cells each; a
    /// column stops probing within the tier the moment its accept count
    /// reaches [`min_accepts_to_pass`] (it passes whatever the remaining
    /// values say) or mathematically cannot reach it (it fails). Columns a
    /// tier claims drop out of later tiers entirely.
    fn detect_columns_tiered(
        &self,
        columns: &[&[String]],
        max_fuel: Option<u64>,
    ) -> Vec<Option<usize>> {
        let total: u64 = columns.iter().map(|c| c.len() as u64).sum();
        self.metrics
            .values_served
            .fetch_add(total, Ordering::Relaxed);
        let npacks = self.packs.len();
        let mut out = vec![None; columns.len()];
        if npacks == 0 || total == 0 {
            return out;
        }
        let wave = self.pool.workers().max(1) * WAVE_FACTOR;
        let mut issued = 0u64;
        let mut unresolved: Vec<usize> = (0..columns.len())
            .filter(|&ci| !columns[ci].is_empty())
            .collect();
        for pi in 0..npacks {
            if unresolved.is_empty() {
                break;
            }
            // Per-column probe state within this tier.
            struct TierState {
                ci: usize,
                probed: usize,
                accepted: usize,
                need: usize,
                decided: Option<bool>,
            }
            let mut tiers: Vec<TierState> = unresolved
                .iter()
                .map(|&ci| TierState {
                    ci,
                    probed: 0,
                    accepted: 0,
                    need: min_accepts_to_pass(columns[ci].len()),
                    decided: None,
                })
                .collect();
            let column_of: Vec<usize> = unresolved.clone();
            loop {
                let mut cells: Vec<(usize, usize)> = Vec::new();
                for (ti, t) in tiers.iter().enumerate() {
                    if t.decided.is_none() {
                        let hi = (t.probed + wave).min(columns[t.ci].len());
                        cells.extend((t.probed..hi).map(|vi| (ti, vi)));
                    }
                }
                if cells.is_empty() {
                    break;
                }
                issued += cells.len() as u64;
                let verdicts = self.pool.run_ordered(cells.clone(), |_, (ti, vi)| {
                    self.probe_capped(pi, &columns[column_of[ti]][vi], max_fuel)
                });
                for (&(ti, _), verdict) in cells.iter().zip(verdicts) {
                    tiers[ti].probed += 1;
                    if verdict {
                        tiers[ti].accepted += 1;
                    }
                }
                for t in tiers.iter_mut() {
                    if t.decided.is_some() {
                        continue;
                    }
                    let remaining = columns[t.ci].len() - t.probed;
                    if t.accepted >= t.need {
                        t.decided = Some(true);
                    } else if t.accepted + remaining < t.need {
                        t.decided = Some(false);
                    }
                }
            }
            let mut survivors = Vec::with_capacity(tiers.len());
            for t in &tiers {
                if t.decided == Some(true) {
                    out[t.ci] = Some(pi);
                } else {
                    survivors.push(t.ci);
                }
            }
            unresolved = survivors;
        }
        self.metrics
            .probes_saved
            .fetch_add(total * npacks as u64 - issued, Ordering::Relaxed);
        out
    }

    /// The eager column detection [`detect_column`](Self::detect_column)
    /// replaced: warm the full `value × pack` matrix through the pool
    /// (counted normally), then re-read verdicts quietly for the threshold
    /// scan. Kept as the reference implementation for equivalence tests
    /// and benchmarks.
    pub fn detect_column_eager(&self, values: &[String]) -> Option<usize> {
        self.metrics
            .values_served
            .fetch_add(values.len() as u64, Ordering::Relaxed);
        if self.packs.is_empty() || values.is_empty() {
            return None;
        }
        let npacks = self.packs.len();
        let cells: Vec<(usize, usize)> = (0..values.len())
            .flat_map(|vi| (0..npacks).map(move |pi| (vi, pi)))
            .collect();
        self.pool
            .run_ordered(cells, |_, (vi, pi)| self.probe(pi, &values[vi]));
        (0..npacks).find(|&pi| column_passes(values, |v| self.verdict_quiet(pi, v)))
    }
}

/// The smallest accept count that clears `column_passes` for a column of
/// `n` values — i.e. the least `a` with `a / n > VALUE_THRESHOLD`. Returns
/// `n + 1` (unreachable) for an empty column, matching "empty columns
/// never pass". Computed with the same `f64` comparison `column_passes`
/// uses so the two can never disagree on a boundary count.
fn min_accepts_to_pass(n: usize) -> usize {
    (0..=n)
        .find(|&a| a as f64 / n as f64 > VALUE_THRESHOLD)
        .unwrap_or(n + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_exec::{EntryPoint, Literal};
    use autotype_lang::{SiteId, ValueSummary};
    use autotype_pack::Pack;

    /// A pack whose DNF-E is just the synthetic black-box literal "the
    /// function returned True" — robust to branch-site numbering, so the
    /// tests only depend on the program's return value.
    fn boolean_pack(slug: &str, func: &str, source: &str) -> Pack {
        Pack {
            slug: slug.into(),
            keyword: slug.into(),
            label: format!("demo/mod.{func}"),
            repo_name: "demo".into(),
            file: "mod".into(),
            strategy: "S1".into(),
            method: "DNF-S".into(),
            score: 1.0,
            neg_fraction: 0.0,
            explanation: "(ret==True)".into(),
            fuel: 10_000,
            installs: 0,
            candidate_file: 0,
            entry: EntryPoint::Function { name: func.into() },
            files: vec![("mod".into(), source.into())],
            packages: vec![],
            dnf_e: vec![vec![Literal::Ret {
                site: SiteId::new(u32::MAX, 0),
                value: ValueSummary::Bool(true),
            }]],
        }
    }

    fn runtime(workers: usize) -> DetectorRuntime {
        // Priority order: even-length first, then short (< 3 chars).
        let even = boolean_pack(
            "evenlen",
            "is_even_len",
            "def is_even_len(s):\n    if len(s) % 2 == 0:\n        return True\n    return False\n",
        );
        let short = boolean_pack(
            "short",
            "is_short",
            "def is_short(s):\n    if len(s) < 3:\n        return True\n    return False\n",
        );
        DetectorRuntime::from_packs(
            vec![even.validator().unwrap(), short.validator().unwrap()],
            workers,
            1024,
        )
    }

    #[test]
    fn detect_value_first_match_wins() {
        let rt = runtime(1);
        // "ab": even length → pack 0 wins even though pack 1 also accepts.
        assert_eq!(rt.detect_value("ab"), Some(0));
        // "a": odd but short → pack 1.
        assert_eq!(rt.detect_value("a"), Some(1));
        // "abc": odd and long → no pack.
        assert_eq!(rt.detect_value("abc"), None);
        // "ab" stopped at pack 0 → one saved cell; the others issued all.
        assert_eq!(Metrics::read(&rt.metrics().probes_saved), 1);
    }

    #[test]
    fn detect_batch_matches_serial_and_eager_at_any_worker_count() {
        let values: Vec<String> = ["ab", "a", "abc", "abcd", "", "xyzzy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let serial = runtime(1);
        let expected: Vec<Option<usize>> = values.iter().map(|v| serial.detect_value(v)).collect();
        for workers in [1usize, 2, 4, 8] {
            let rt = runtime(workers);
            assert_eq!(rt.detect_batch(&values), expected, "workers={workers}");
            let eager = runtime(workers);
            assert_eq!(
                eager.detect_batch_eager(&values),
                expected,
                "eager workers={workers}"
            );
        }
    }

    #[test]
    fn lazy_batch_skips_tiers_below_the_first_match() {
        let rt = runtime(2);
        // "ab" and "cd" resolve at pack 0 → their pack-1 cells are skipped.
        let values: Vec<String> = ["ab", "cd", "abc"].iter().map(|s| s.to_string()).collect();
        rt.detect_batch(&values);
        assert_eq!(Metrics::read(&rt.metrics().probes_saved), 2);
        // 3 tier-0 cells + 1 tier-1 cell ("abc") actually probed.
        assert_eq!(Metrics::read(&rt.metrics().cache_misses), 4);
    }

    #[test]
    fn second_identical_batch_is_all_cache_hits() {
        let rt = runtime(2);
        let values: Vec<String> = ["ab", "abc", "x"].iter().map(|s| s.to_string()).collect();
        let first = rt.detect_batch(&values);
        let misses_after_first = Metrics::read(&rt.metrics().cache_misses);
        assert_eq!(
            misses_after_first, 5,
            "3 tier-0 cells + 2 tier-1 cells (\"ab\" resolved at tier 0)"
        );
        let second = rt.detect_batch(&values);
        assert_eq!(first, second);
        assert_eq!(
            Metrics::read(&rt.metrics().cache_misses),
            misses_after_first,
            "second batch must not probe"
        );
        assert_eq!(Metrics::read(&rt.metrics().cache_hits), 5);
        assert!(rt.metrics().hit_rate() > 0.49);
    }

    #[test]
    fn detect_column_uses_threshold_and_priority() {
        let rt = runtime(4);
        // 5/6 even-length (> 0.8 threshold) → pack 0.
        let mostly_even: Vec<String> = ["ab", "cd", "ef", "gh", "ij", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(rt.detect_column(&mostly_even), Some(0));
        // All short-but-odd → only pack 1 passes.
        let short_odd: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(rt.detect_column(&short_odd), Some(1));
        // Mixed junk: neither passes.
        let junk: Vec<String> = ["abc", "defgh", "x", "yz"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(rt.detect_column(&junk), None);
        // Empty column never matches.
        assert_eq!(rt.detect_column(&[]), None);
    }

    #[test]
    fn lazy_column_matches_eager_at_any_worker_count() {
        let columns: Vec<Vec<String>> = [
            vec!["ab", "cd", "ef", "gh", "ij", "x"],
            vec!["a", "b", "c"],
            vec!["abc", "defgh", "x", "yz"],
            vec![],
            vec!["ab"],
        ]
        .iter()
        .map(|c| c.iter().map(|s| s.to_string()).collect())
        .collect();
        for workers in [1usize, 2, 4, 8] {
            for column in &columns {
                let lazy = runtime(workers);
                let eager = runtime(workers);
                assert_eq!(
                    lazy.detect_column(column),
                    eager.detect_column_eager(column),
                    "workers={workers} column={column:?}"
                );
            }
        }
    }

    #[test]
    fn column_early_termination_saves_probes() {
        // A long all-even column at workers=1: the wave size is 4, and the
        // pass threshold (need = 33 of 40) is reached after the 9th wave —
        // pack 0 claims the column without probing the last 4 values, and
        // pack 1 never runs at all.
        let rt = runtime(1);
        let values: Vec<String> = (0..40).map(|i| format!("ev{i:02}")).collect();
        assert_eq!(rt.detect_column(&values), Some(0));
        let issued = Metrics::read(&rt.metrics().cache_misses);
        assert!(
            issued < values.len() as u64,
            "early accept must stop the wave: issued {issued}"
        );
        assert_eq!(
            Metrics::read(&rt.metrics().probes_saved),
            values.len() as u64 * 2 - issued
        );
    }

    #[test]
    fn detect_table_matches_per_column_detection() {
        let columns: Vec<Vec<String>> = [
            vec!["ab", "cd", "ef", "gh", "ij", "x"],
            vec!["a", "b", "c"],
            vec!["abc", "defgh", "x", "yz"],
            vec![],
        ]
        .iter()
        .map(|c| c.iter().map(|s| s.to_string()).collect())
        .collect();
        for workers in [1usize, 2, 4, 8] {
            let per_column = runtime(workers);
            let expected: Vec<Option<usize>> = columns
                .iter()
                .map(|c| per_column.detect_column(c))
                .collect();
            let rt = runtime(workers);
            assert_eq!(
                rt.detect_table(&columns, None),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn capped_probes_bypass_the_cache_and_change_no_cached_verdict() {
        let rt = runtime(1);
        // Full-budget verdict, cached.
        assert_eq!(rt.detect_value("ab"), Some(0));
        let misses = Metrics::read(&rt.metrics().cache_misses);
        // A starved probe rejects everywhere — and must not read or write
        // the cache.
        assert_eq!(rt.detect_value_with("ab", Some(1)), None);
        assert_eq!(Metrics::read(&rt.metrics().cache_misses), misses);
        // The cached full-budget verdict is unharmed.
        assert_eq!(rt.detect_value("ab"), Some(0));
        // A generous cap clamps to the pack budget and may use the cache.
        assert_eq!(rt.detect_value_with("ab", Some(u64::MAX)), Some(0));
    }

    #[test]
    fn executors_are_leased_not_recloned() {
        let rt = runtime(1);
        let values: Vec<String> = (0..12).map(|i| format!("w{i}")).collect();
        rt.detect_batch(&values);
        let cloned = Metrics::read(&rt.metrics().executors_cloned);
        let reused = Metrics::read(&rt.metrics().executors_reused);
        assert!(
            cloned <= 2,
            "one clone per (pack, concurrent worker) expected, got {cloned}"
        );
        assert!(
            reused > cloned,
            "steady state must reuse: {reused} vs {cloned}"
        );
    }

    #[test]
    fn min_accepts_matches_column_passes_on_boundaries() {
        for n in 0..=50usize {
            let need = min_accepts_to_pass(n);
            for accepted in 0..=n {
                let values: Vec<String> = (0..n).map(|i| i.to_string()).collect();
                let mut left = accepted;
                let passes = column_passes(&values, |_| {
                    if left > 0 {
                        left -= 1;
                        true
                    } else {
                        false
                    }
                });
                assert_eq!(
                    passes,
                    accepted >= need,
                    "n={n} accepted={accepted} need={need}"
                );
            }
        }
    }

    #[test]
    fn column_warm_pass_does_not_double_count_hits() {
        let rt = runtime(1);
        let values: Vec<String> = ["ab", "cd", "ef"].iter().map(|s| s.to_string()).collect();
        rt.detect_column_eager(&values);
        // Warm pass: 3 values × 2 packs = 6 misses; the threshold scan
        // re-reads quietly, so hits stay 0.
        assert_eq!(Metrics::read(&rt.metrics().cache_misses), 6);
        assert_eq!(Metrics::read(&rt.metrics().cache_hits), 0);
    }
}

//! Semantic-transformation mining (§7.1, Appendix B).
//!
//! When relevant functions process values of a type they produce
//! intermediate results (card brand, VIN region, date components). The
//! harness harvests atomic intermediates per positive example; this module
//! aggregates them into candidate transformation columns — exactly the
//! tabular preview of Figure 6 — filtering out low-entropy variables
//! ("producing the same value across P").

use std::collections::BTreeMap;

/// One candidate transformation: a named derived column over the positive
/// examples.
#[derive(Debug, Clone, PartialEq)]
pub struct Transformation {
    /// Variable name, e.g. `return.card_brand`.
    pub name: String,
    /// One derived value per positive example (`None` when the run did not
    /// produce the variable).
    pub values: Vec<Option<String>>,
    /// Number of distinct non-missing values.
    pub distinct: usize,
}

impl Transformation {
    /// Fraction of positives with a value.
    pub fn coverage(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| v.is_some()).count() as f64 / self.values.len() as f64
    }
}

/// Aggregate per-example harvests into transformation candidates.
///
/// * `harvests[i]` — the (name, value) pairs produced when the function ran
///   on positive example `i`.
/// * Variables present on fewer than `min_coverage` of examples are
///   dropped, as are constant variables when `drop_constant` is set (the
///   paper filters low-entropy variables "when necessary").
pub fn harvest_transformations(
    harvests: &[Vec<(String, String)>],
    min_coverage: f64,
    drop_constant: bool,
) -> Vec<Transformation> {
    let n = harvests.len();
    if n == 0 {
        return Vec::new();
    }
    let mut by_name: BTreeMap<&str, Vec<Option<String>>> = BTreeMap::new();
    for (i, harvest) in harvests.iter().enumerate() {
        for (name, value) in harvest {
            let column = by_name
                .entry(name.as_str())
                .or_insert_with(|| vec![None; n]);
            column[i] = Some(value.clone());
        }
    }
    let mut out = Vec::new();
    for (name, values) in by_name {
        let present = values.iter().filter(|v| v.is_some()).count();
        if (present as f64 / n as f64) < min_coverage {
            continue;
        }
        let mut distinct: Vec<&String> = values.iter().flatten().collect();
        distinct.sort();
        distinct.dedup();
        let distinct = distinct.len();
        if drop_constant && distinct <= 1 && n > 2 {
            continue;
        }
        out.push(Transformation {
            name: name.to_string(),
            values,
            distinct,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harvests() -> Vec<Vec<(String, String)>> {
        vec![
            vec![
                ("return.card_brand".into(), "Visa".into()),
                ("return.issuer_prefix".into(), "414720".into()),
                ("return.api_version".into(), "2".into()),
            ],
            vec![
                ("return.card_brand".into(), "Mastercard".into()),
                ("return.issuer_prefix".into(), "521802".into()),
                ("return.api_version".into(), "2".into()),
            ],
            vec![
                ("return.card_brand".into(), "Amex".into()),
                ("return.issuer_prefix".into(), "371449".into()),
                ("return.api_version".into(), "2".into()),
            ],
        ]
    }

    #[test]
    fn harvests_brand_and_prefix_columns() {
        let transforms = harvest_transformations(&harvests(), 0.5, true);
        let names: Vec<&str> = transforms.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"return.card_brand"));
        assert!(names.contains(&"return.issuer_prefix"));
    }

    #[test]
    fn constant_variables_are_filtered() {
        let transforms = harvest_transformations(&harvests(), 0.5, true);
        assert!(
            !transforms.iter().any(|t| t.name == "return.api_version"),
            "constant api_version must be entropy-filtered"
        );
        // With the filter off it is kept.
        let unfiltered = harvest_transformations(&harvests(), 0.5, false);
        assert!(unfiltered.iter().any(|t| t.name == "return.api_version"));
    }

    #[test]
    fn sparse_variables_are_dropped_by_coverage() {
        let mut h = harvests();
        h[0].push(("return.rare".into(), "x".into()));
        let transforms = harvest_transformations(&h, 0.5, true);
        assert!(!transforms.iter().any(|t| t.name == "return.rare"));
    }

    #[test]
    fn coverage_and_distinct_counts() {
        let transforms = harvest_transformations(&harvests(), 0.5, true);
        let brand = transforms
            .iter()
            .find(|t| t.name == "return.card_brand")
            .unwrap();
        assert_eq!(brand.distinct, 3);
        assert!((brand.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(harvest_transformations(&[], 0.5, true).is_empty());
    }
}

//! # autotype-synth — validator synthesis and semantic transformations
//!
//! Once a ranked function's DNF explanation is accepted, AutoType
//! synthesizes a *new* Boolean type-detection function from it
//! (§5.3, Appendix G): the concise DNF is expanded to **DNF-E** — every
//! literal replaced by the conjunction of its whole coverage-equivalence
//! group, restricting future inputs to the exact sub-paths positives took —
//! and validation of a new string means: run the function, featurize the
//! trace, check `∧T(s) → DNF-E`.
//!
//! The crate also implements §7.1 / Appendix B: mining *semantic
//! transformations* from intermediate values produced while relevant
//! functions execute (card brand, VIN manufacturer, date components, ...),
//! with the paper's low-entropy filter.

use autotype_dnf::DnfCover;
use autotype_exec::Literal;
use std::collections::{BTreeMap, BTreeSet};

pub mod transform;

pub use transform::{harvest_transformations, Transformation};

/// A synthesized type-detection function: the DNF-E of Appendix G, checked
/// against the featurized trace of a fresh execution.
#[derive(Debug, Clone)]
pub struct SynthesizedValidator {
    /// Disjunction of conjunctions of literals.
    pub dnf_e: Vec<Vec<Literal>>,
}

impl SynthesizedValidator {
    /// Expand a cover into DNF-E: each chosen literal is replaced by its
    /// full equal-coverage group (Algorithm 3 lines 1-3).
    pub fn from_cover(cover: &DnfCover, literals: &[Literal]) -> SynthesizedValidator {
        let mut dnf_e = Vec::with_capacity(cover.conjunctions.len());
        for conj in &cover.conjunctions {
            let mut expanded: BTreeSet<Literal> = BTreeSet::new();
            for &lit_id in &conj.literals {
                for &member in cover.group_of(lit_id) {
                    expanded.insert(literals[member].clone());
                }
            }
            dnf_e.push(expanded.into_iter().collect());
        }
        SynthesizedValidator { dnf_e }
    }

    /// `∧T(s) → DNF-E`: accept when some conjunction is a subset of the
    /// trace (Algorithm 3 line 6, with Definition 2's cover semantics).
    pub fn accepts(&self, trace: &BTreeSet<Literal>) -> bool {
        self.dnf_e
            .iter()
            .any(|conj| conj.iter().all(|lit| trace.contains(lit)))
    }

    /// Human-readable DNF rendering (the explanation shown for inspection,
    /// e.g. `(b6==True ∧ b16==True) ∨ (b9==True ∧ b16==True)`).
    pub fn explain(&self) -> String {
        let clauses: Vec<String> = self
            .dnf_e
            .iter()
            .map(|conj| {
                let lits: Vec<String> = conj.iter().map(|l| l.to_string()).collect();
                format!("({})", lits.join(" ∧ "))
            })
            .collect();
        clauses.join(" ∨ ")
    }
}

/// Render a concise (pre-expansion) DNF for display.
pub fn explain_cover(cover: &DnfCover, literals: &[Literal]) -> String {
    let clauses: Vec<String> = cover
        .conjunctions
        .iter()
        .map(|conj| {
            let lits: Vec<String> = conj
                .literals
                .iter()
                .map(|&l| literals[l].to_string())
                .collect();
            format!("({})", lits.join(" ∧ "))
        })
        .collect();
    clauses.join(" ∨ ")
}

/// A featurized trace set.
pub type TraceSet = BTreeSet<Literal>;

/// Build the quality score `Q(F)` of §8.1 from holdout outcomes:
/// `0.5·(pass in P_test)/|P_test| + 0.5·(reject in N_test)/|N_test|`.
pub fn quality_score(
    pos_pass: usize,
    pos_total: usize,
    neg_reject: usize,
    neg_total: usize,
) -> f64 {
    let p = if pos_total == 0 {
        0.0
    } else {
        pos_pass as f64 / pos_total as f64
    };
    let n = if neg_total == 0 {
        0.0
    } else {
        neg_reject as f64 / neg_total as f64
    };
    0.5 * p + 0.5 * n
}

/// Map literal → index (test helper).
pub fn literal_index(literals: &[Literal]) -> BTreeMap<&Literal, usize> {
    literals.iter().enumerate().map(|(i, l)| (l, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotype_dnf::{best_k_concise_cover, BitSet, CoverInput, CoverParams};
    use autotype_lang::SiteId;

    fn lit(line: u32, taken: bool) -> Literal {
        Literal::Branch {
            site: SiteId::new(0, line),
            taken,
        }
    }

    /// Paper running example: literals b6, b9, b16 with redundant twin
    /// literal b7 (same coverage as b6) to exercise group expansion.
    fn example() -> (CoverInput, Vec<Literal>) {
        let literals = vec![lit(6, true), lit(9, true), lit(16, true), lit(7, true)];
        let traces: Vec<Vec<usize>> = vec![
            vec![0, 2, 3], // visa: b6, b16, b7(=b6 twin)
            vec![1, 2],    // mc
            vec![0, 2, 3],
            vec![2], // passes checksum branch but no brand: forces
            // conjunctions instead of b16 alone
            vec![0, 3], // visa prefix, bad checksum
            vec![],     // crash
        ];
        let mut coverage = vec![BitSet::new(6); literals.len()];
        for (e, lits) in traces.iter().enumerate() {
            for &l in lits {
                coverage[l].insert(e);
            }
        }
        (
            CoverInput {
                n_pos: 3,
                n_neg: 3,
                coverage,
            },
            literals,
        )
    }

    #[test]
    fn dnf_e_expands_groups() {
        let (input, literals) = example();
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 0.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        let validator = SynthesizedValidator::from_cover(&cover, &literals);
        for conj in &validator.dnf_e {
            let has_b6 = conj.contains(&lit(6, true));
            let has_b7 = conj.contains(&lit(7, true));
            assert_eq!(has_b6, has_b7, "group expansion must add the twin");
        }
    }

    #[test]
    fn validator_accepts_positive_paths_and_rejects_negative_paths() {
        let (input, literals) = example();
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 0.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        let validator = SynthesizedValidator::from_cover(&cover, &literals);
        let visa: TraceSet = [lit(6, true), lit(16, true), lit(7, true)]
            .into_iter()
            .collect();
        let mc: TraceSet = [lit(9, true), lit(16, true)].into_iter().collect();
        let bad: TraceSet = [lit(6, true), lit(7, true)].into_iter().collect();
        let checksum_only: TraceSet = [lit(16, true)].into_iter().collect();
        let crash: TraceSet = TraceSet::new();
        assert!(validator.accepts(&visa));
        assert!(validator.accepts(&mc));
        assert!(!validator.accepts(&bad));
        assert!(!validator.accepts(&checksum_only));
        assert!(!validator.accepts(&crash));
    }

    #[test]
    fn dnf_e_is_stricter_than_concise_dnf() {
        // Example 7: a trace hitting b6 but not the twin b7 satisfies the
        // concise DNF (which only names b6) but not DNF-E.
        let (input, literals) = example();
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 0.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        let validator = SynthesizedValidator::from_cover(&cover, &literals);
        let partial: TraceSet = [lit(6, true), lit(16, true)].into_iter().collect();
        assert!(!validator.accepts(&partial));
    }

    #[test]
    fn explain_renders_paper_notation() {
        let (input, literals) = example();
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 0.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        let text = explain_cover(&cover, &literals);
        assert!(text.contains("b16==True"), "{text}");
    }

    #[test]
    fn quality_score_formula() {
        assert_eq!(quality_score(10, 10, 1000, 1000), 1.0);
        assert_eq!(quality_score(0, 10, 0, 1000), 0.0);
        assert!((quality_score(10, 10, 500, 1000) - 0.75).abs() < 1e-12);
        assert_eq!(quality_score(0, 0, 0, 0), 0.0);
    }
}

//! Fixed-width bitsets used for example-coverage computations.
//!
//! Coverage sets (`Cov(C)` in Definition 2) are manipulated heavily inside
//! the greedy cover search, so they are plain `u64` blocks rather than hash
//! sets.

/// A fixed-length set of example indices.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A full set over a universe of `len` elements.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for i in 0..len {
            s.insert(i);
        }
        s
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|b| *b == 0)
    }

    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.blocks[i / 64] |= 1 << (i % 64);
    }

    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.blocks[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without allocating.
    pub fn union_count(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Count of elements in `self` but not in `other`.
    pub fn difference_count(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Indices of all set bits, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|i| self.contains(*i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_operations() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn full_and_empty() {
        assert_eq!(BitSet::full(100).count(), 100);
        assert!(BitSet::new(100).is_empty());
        assert!(!BitSet::full(1).is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        for i in [1, 3, 5] {
            a.insert(i);
        }
        for i in [3, 5, 7] {
            b.insert(i);
        }
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.union_count(&b), 4);
        assert_eq!(a.difference_count(&b), 1);
        a.intersect_with(&b);
        assert_eq!(a.count(), 2);
    }

    proptest! {
        #[test]
        fn intersection_union_counts_agree_with_naive(
            xs in proptest::collection::vec(0usize..200, 0..60),
            ys in proptest::collection::vec(0usize..200, 0..60),
        ) {
            let mut a = BitSet::new(200);
            let mut b = BitSet::new(200);
            for x in &xs { a.insert(*x); }
            for y in &ys { b.insert(*y); }
            let sa: std::collections::BTreeSet<_> = xs.iter().collect();
            let sb: std::collections::BTreeSet<_> = ys.iter().collect();
            prop_assert_eq!(a.intersection_count(&b), sa.intersection(&sb).count());
            prop_assert_eq!(a.union_count(&b), sa.union(&sb).count());
            prop_assert_eq!(a.difference_count(&b), sa.difference(&sb).count());
            prop_assert_eq!(a.count(), sa.len());
        }

        #[test]
        fn iter_roundtrip(xs in proptest::collection::vec(0usize..128, 0..40)) {
            let mut a = BitSet::new(128);
            for x in &xs { a.insert(*x); }
            let collected: Vec<usize> = a.iter().collect();
            let expected: Vec<usize> = {
                let s: std::collections::BTreeSet<_> = xs.into_iter().collect();
                s.into_iter().collect()
            };
            prop_assert_eq!(collected, expected);
        }
    }
}

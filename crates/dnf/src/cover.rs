//! The *Best-k-Concise-DNF-Cover* optimization (Definitions 2–4 and
//! Algorithm 1 of the paper), plus the unconstrained *Best-DNF-Cover*
//! variant used by the DNF-C baseline.
//!
//! The problem is NP-hard and inapproximable (Theorem 4, by reduction from
//! set-union knapsack), so both solvers are greedy: literals with identical
//! coverage are first merged into groups, one representative per group forms
//! the candidate set `S`, conjunctions up to `k` literals over `S` are
//! enumerated, and the conjunction with the most *additional* positive
//! coverage (subject to the `θ|N|` negative budget) is added until no
//! conjunction helps.

use crate::bitset::BitSet;

/// Index of a literal in the caller's feature space.
pub type LitId = usize;

/// Input to the cover solvers: per-literal coverage over the combined
/// example universe `[0, n_pos + n_neg)`, positives first.
#[derive(Debug, Clone)]
pub struct CoverInput {
    pub n_pos: usize,
    pub n_neg: usize,
    /// `coverage[l]` = set of example indices whose trace contains literal `l`.
    pub coverage: Vec<BitSet>,
}

impl CoverInput {
    pub fn universe(&self) -> usize {
        self.n_pos + self.n_neg
    }

    fn pos_mask(&self) -> BitSet {
        let mut m = BitSet::new(self.universe());
        for i in 0..self.n_pos {
            m.insert(i);
        }
        m
    }

    fn neg_mask(&self) -> BitSet {
        let mut m = BitSet::new(self.universe());
        for i in self.n_pos..self.universe() {
            m.insert(i);
        }
        m
    }
}

/// Solver parameters: `k` (max literals per conjunction, Definition 4) and
/// `θ` (negative-coverage budget as a fraction of `|N|`, Definition 3).
#[derive(Debug, Clone, Copy)]
pub struct CoverParams {
    pub k: usize,
    pub theta: f64,
    /// Cap on the number of literal-group representatives enumerated
    /// (bounds the `O(|S|^k)` search; groups are kept by descending
    /// positive coverage).
    pub max_groups: usize,
    /// Maximum number of disjuncts added by the greedy loop.
    pub max_conjunctions: usize,
}

impl Default for CoverParams {
    /// The paper's operating point: `k = 3`, `θ = 0.3` (§8.1).
    fn default() -> Self {
        CoverParams {
            k: 3,
            theta: 0.3,
            max_groups: 24,
            max_conjunctions: 8,
        }
    }
}

/// A conjunction of literal-group representatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conjunction {
    pub literals: Vec<LitId>,
}

/// A DNF over literal groups, with its achieved coverage.
#[derive(Debug, Clone)]
pub struct DnfCover {
    pub conjunctions: Vec<Conjunction>,
    /// Positive examples covered (indices in `[0, n_pos)`).
    pub pos_covered: usize,
    /// Negative examples covered.
    pub neg_covered: usize,
    pub n_pos: usize,
    pub n_neg: usize,
    /// Literal groups: `groups[g]` lists all literals whose coverage equals
    /// the group representative's — needed for DNF-E expansion (Appendix G).
    pub groups: Vec<Vec<LitId>>,
}

impl DnfCover {
    /// Fraction of positives covered, the primary ranking signal (§5.2).
    pub fn pos_fraction(&self) -> f64 {
        if self.n_pos == 0 {
            0.0
        } else {
            self.pos_covered as f64 / self.n_pos as f64
        }
    }

    /// Fraction of negatives covered, the tie-breaker (lower is better).
    pub fn neg_fraction(&self) -> f64 {
        if self.n_neg == 0 {
            0.0
        } else {
            self.neg_covered as f64 / self.n_neg as f64
        }
    }

    /// The full literal set of the group containing `lit` (for DNF-E).
    pub fn group_of(&self, lit: LitId) -> &[LitId] {
        self.groups
            .iter()
            .find(|g| g.contains(&lit))
            .map(|g| g.as_slice())
            .unwrap_or(&[])
    }
}

/// Partition literals into groups with identical coverage (Algorithm 1,
/// line 1). Returns `(groups, representative_of_each_group)`.
pub fn group_literals(input: &CoverInput) -> Vec<Vec<LitId>> {
    use std::collections::HashMap;
    let mut by_coverage: HashMap<&BitSet, Vec<LitId>> = HashMap::new();
    for (lit, cov) in input.coverage.iter().enumerate() {
        by_coverage.entry(cov).or_default().push(lit);
    }
    let mut groups: Vec<Vec<LitId>> = by_coverage.into_values().collect();
    // Deterministic order: by first literal id.
    groups.sort_by_key(|g| g[0]);
    groups
}

/// Solve Best-k-Concise-DNF-Cover greedily (Algorithm 1).
///
/// Returns `None` when no conjunction covers even one positive example
/// within the negative budget — the signal Algorithm 2 (negative-example
/// generation) uses to escalate to the next mutation strategy.
pub fn best_k_concise_cover(input: &CoverInput, params: &CoverParams) -> Option<DnfCover> {
    solve(input, params, params.k)
}

/// The DNF-C baseline (§8.1): Definition 3 without the k-conciseness
/// constraint. Implemented by allowing conjunctions as long as the number
/// of candidate groups — effectively full-path conjunctions.
pub fn best_cover_complete(input: &CoverInput, params: &CoverParams) -> Option<DnfCover> {
    // Unbounded k degenerates to "one conjunction per positive example's
    // full trace": enumerate those instead of the power set.
    let universe = input.universe();
    let groups = group_literals(input);
    let neg_budget = (params.theta * input.n_neg as f64).floor() as usize;
    let pos_mask = input.pos_mask();
    let neg_mask = input.neg_mask();

    // For each positive example, the conjunction of *all* groups covering it.
    let mut candidates: Vec<(Conjunction, BitSet)> = Vec::new();
    for e in 0..input.n_pos {
        let lits: Vec<LitId> = groups
            .iter()
            .filter(|g| input.coverage[g[0]].contains(e))
            .map(|g| g[0])
            .collect();
        if lits.is_empty() {
            continue;
        }
        let mut cov = BitSet::full(universe);
        for l in &lits {
            cov.intersect_with(&input.coverage[*l]);
        }
        let conj = Conjunction { literals: lits };
        if !candidates.iter().any(|(c, _)| c == &conj) {
            candidates.push((conj, cov));
        }
    }
    greedy_select(
        candidates,
        &pos_mask,
        &neg_mask,
        neg_budget,
        input,
        groups,
        params.max_conjunctions,
    )
}

fn solve(input: &CoverInput, params: &CoverParams, k: usize) -> Option<DnfCover> {
    let universe = input.universe();
    let groups = group_literals(input);
    let pos_mask = input.pos_mask();
    let neg_mask = input.neg_mask();
    let neg_budget = (params.theta * input.n_neg as f64).floor() as usize;

    // Candidate set S: one representative per group, keeping only groups
    // that cover at least one positive example, capped by positive coverage.
    let mut reps: Vec<LitId> = groups
        .iter()
        .map(|g| g[0])
        .filter(|l| input.coverage[*l].intersection_count(&pos_mask) > 0)
        .collect();
    reps.sort_by_key(|l| {
        let cov = &input.coverage[*l];
        (
            std::cmp::Reverse(cov.intersection_count(&pos_mask)),
            cov.intersection_count(&neg_mask),
            *l,
        )
    });
    reps.truncate(params.max_groups);

    // Enumerate conjunctions up to k literals (the set L in Algorithm 1).
    let mut candidates: Vec<(Conjunction, BitSet)> = Vec::new();
    let mut stack: Vec<LitId> = Vec::new();
    enumerate(
        &reps,
        0,
        k.min(reps.len()),
        &mut stack,
        &mut |lits: &[LitId]| {
            let mut cov = input.coverage[lits[0]].clone();
            for l in &lits[1..] {
                cov.intersect_with(&input.coverage[*l]);
            }
            if cov.intersection_count(&pos_mask) > 0 {
                candidates.push((
                    Conjunction {
                        literals: lits.to_vec(),
                    },
                    cov,
                ));
            }
        },
    );
    let _ = universe;
    greedy_select(
        candidates,
        &pos_mask,
        &neg_mask,
        neg_budget,
        input,
        groups,
        params.max_conjunctions,
    )
}

fn enumerate(
    reps: &[LitId],
    start: usize,
    k: usize,
    stack: &mut Vec<LitId>,
    emit: &mut impl FnMut(&[LitId]),
) {
    if !stack.is_empty() {
        emit(stack);
    }
    if stack.len() == k {
        return;
    }
    for i in start..reps.len() {
        stack.push(reps[i]);
        enumerate(reps, i + 1, k, stack, emit);
        stack.pop();
    }
}

/// Greedy selection (Algorithm 1, lines 4-8): repeatedly add the candidate
/// with the largest additional positive coverage that keeps total negative
/// coverage within budget.
fn greedy_select(
    candidates: Vec<(Conjunction, BitSet)>,
    pos_mask: &BitSet,
    neg_mask: &BitSet,
    neg_budget: usize,
    input: &CoverInput,
    groups: Vec<Vec<LitId>>,
    max_conjunctions: usize,
) -> Option<DnfCover> {
    let universe = input.universe();
    let mut covered = BitSet::new(universe);
    let mut chosen: Vec<Conjunction> = Vec::new();

    while chosen.len() < max_conjunctions {
        let mut best: Option<(usize, usize, usize)> = None; // (gain, negs, idx)
        for (idx, (conj, cov)) in candidates.iter().enumerate() {
            // Negative coverage of the union if we add this conjunction.
            let mut union = covered.clone();
            union.union_with(cov);
            let negs = union.intersection_count(neg_mask);
            if negs > neg_budget {
                continue;
            }
            let pos_before = covered.intersection_count(pos_mask);
            let pos_after = union.intersection_count(pos_mask);
            let gain = pos_after - pos_before;
            if gain == 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bg, bn, bidx)) => {
                    (
                        gain,
                        std::cmp::Reverse(negs),
                        std::cmp::Reverse(conj.literals.len()),
                    ) > (*bg, std::cmp::Reverse(*bn), {
                        let blen = candidates[*bidx].0.literals.len();
                        std::cmp::Reverse(blen)
                    })
                }
            };
            if better {
                best = Some((gain, negs, idx));
            }
        }
        match best {
            None => break,
            Some((_, _, idx)) => {
                covered.union_with(&candidates[idx].1);
                chosen.push(candidates[idx].0.clone());
            }
        }
        if covered.intersection_count(pos_mask) == pos_mask.count() {
            break;
        }
    }

    if chosen.is_empty() {
        return None;
    }
    Some(DnfCover {
        conjunctions: chosen,
        pos_covered: covered.intersection_count(pos_mask),
        neg_covered: covered.intersection_count(neg_mask),
        n_pos: input.n_pos,
        n_neg: input.n_neg,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a CoverInput from explicit example->literals traces.
    fn input_from_traces(
        n_pos: usize,
        n_neg: usize,
        traces: &[&[usize]],
        n_lits: usize,
    ) -> CoverInput {
        let universe = n_pos + n_neg;
        assert_eq!(traces.len(), universe);
        let mut coverage = vec![BitSet::new(universe); n_lits];
        for (e, lits) in traces.iter().enumerate() {
            for l in *lits {
                coverage[*l].insert(e);
            }
        }
        CoverInput {
            n_pos,
            n_neg,
            coverage,
        }
    }

    /// The paper's running example (Figure 7 / Example 4): literal 0 = b6,
    /// literal 1 = b9, literal 2 = b16, literal 3 = exception. Positives are
    /// Visa (b6,b16) and Mastercard (b9,b16); negatives fail the checksum
    /// (b6 or b9 without b16) or throw.
    fn paper_example() -> CoverInput {
        input_from_traces(
            3,
            3,
            &[
                &[0, 2], // e1+: Visa, checksum ok
                &[1, 2], // e2+: MC, checksum ok
                &[0, 2], // e3+: Visa
                &[0],    // e1-: Visa prefix, bad checksum
                &[1],    // e2-: MC prefix, bad checksum
                &[3],    // e3-: exception
            ],
            4,
        )
    }

    #[test]
    fn finds_perfect_cover_on_paper_example() {
        let input = paper_example();
        let cover = best_k_concise_cover(&input, &CoverParams::default()).unwrap();
        assert_eq!(cover.pos_covered, 3);
        assert_eq!(cover.neg_covered, 0);
        assert!(cover.conjunctions.len() <= 2);
    }

    #[test]
    fn respects_negative_budget() {
        // One literal covers all positives but also all negatives.
        let input = input_from_traces(2, 4, &[&[0], &[0], &[0], &[0], &[0], &[0]], 1);
        let params = CoverParams {
            theta: 0.0,
            ..CoverParams::default()
        };
        assert!(best_k_concise_cover(&input, &params).is_none());
        // With θ = 1.0 the same literal is acceptable.
        let relaxed = CoverParams {
            theta: 1.0,
            ..CoverParams::default()
        };
        let cover = best_k_concise_cover(&input, &relaxed).unwrap();
        assert_eq!(cover.pos_covered, 2);
        assert_eq!(cover.neg_covered, 4);
    }

    #[test]
    fn theta_budget_is_fractional() {
        // Literal 0 covers both positives + 1 of 10 negatives.
        let mut traces: Vec<&[usize]> = vec![&[0], &[0], &[0]];
        let empty: &[usize] = &[];
        for _ in 0..9 {
            traces.push(empty);
        }
        let input = input_from_traces(2, 10, &traces, 1);
        // θ=0.3 → budget 3 negatives → acceptable.
        let cover = best_k_concise_cover(&input, &CoverParams::default()).unwrap();
        assert_eq!(cover.pos_covered, 2);
        assert_eq!(cover.neg_covered, 1);
        // θ=0.05 → budget 0 → rejected.
        let strict = CoverParams {
            theta: 0.05,
            ..CoverParams::default()
        };
        assert!(best_k_concise_cover(&input, &strict).is_none());
    }

    #[test]
    fn k_limits_conjunction_size() {
        let input = paper_example();
        let params = CoverParams {
            k: 1,
            ..CoverParams::default()
        };
        let cover = best_k_concise_cover(&input, &params).unwrap();
        assert!(cover.conjunctions.iter().all(|c| c.literals.len() == 1));
        // With k=1 the only clean literal is b16 (lit 2), covering all P.
        assert_eq!(cover.pos_covered, 3);
    }

    #[test]
    fn grouping_merges_identical_coverage() {
        // Literals 0 and 1 have identical coverage; 2 differs.
        let input = input_from_traces(2, 1, &[&[0, 1], &[0, 1, 2], &[2]], 3);
        let groups = group_literals(&input);
        assert!(groups.iter().any(|g| g.contains(&0) && g.contains(&1)));
        assert!(groups.iter().any(|g| g == &vec![2]));
    }

    #[test]
    fn complete_cover_uses_full_traces() {
        let input = paper_example();
        let cover = best_cover_complete(&input, &CoverParams::default()).unwrap();
        assert_eq!(cover.pos_covered, 3);
        assert_eq!(cover.neg_covered, 0);
        // Full-trace conjunctions: {b6,b16} and {b9,b16}.
        assert!(cover.conjunctions.iter().all(|c| c.literals.len() == 2));
    }

    #[test]
    fn returns_none_when_nothing_separates() {
        // Positives and negatives have identical traces → any cover that
        // touches P touches N beyond a zero budget.
        let input = input_from_traces(2, 2, &[&[0], &[0], &[0], &[0]], 1);
        let params = CoverParams {
            theta: 0.0,
            ..CoverParams::default()
        };
        assert!(best_k_concise_cover(&input, &params).is_none());
    }

    #[test]
    fn prefers_fewer_negatives_on_tie() {
        // lit 0: covers both P + 2 N; lit 1: covers both P + 1 N.
        let input = input_from_traces(2, 3, &[&[0, 1], &[0, 1], &[0], &[0, 1], &[]], 2);
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 1.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        assert_eq!(cover.conjunctions.len(), 1);
        // Best single candidate is the conjunction (0 ∧ 1) or lit 1 alone —
        // both cover P with only 1 negative.
        assert_eq!(cover.neg_covered, 1);
    }

    #[test]
    fn group_of_returns_equivalence_class() {
        let input = input_from_traces(2, 1, &[&[0, 1], &[0, 1, 2], &[2]], 3);
        let cover = best_k_concise_cover(
            &input,
            &CoverParams {
                theta: 0.0,
                ..CoverParams::default()
            },
        )
        .unwrap();
        let rep = cover.conjunctions[0].literals[0];
        let group = cover.group_of(rep);
        assert!(group.contains(&0) && group.contains(&1));
    }

    #[test]
    fn max_conjunctions_bounds_dnf_size() {
        // 6 disjoint positives each with its own literal.
        let traces: Vec<Vec<usize>> = (0..6).map(|i| vec![i]).collect();
        let refs: Vec<&[usize]> = traces.iter().map(|t| t.as_slice()).collect();
        let input = input_from_traces(6, 0, &refs, 6);
        let params = CoverParams {
            max_conjunctions: 3,
            ..CoverParams::default()
        };
        let cover = best_k_concise_cover(&input, &params).unwrap();
        assert_eq!(cover.conjunctions.len(), 3);
        assert_eq!(cover.pos_covered, 3);
    }
}

//! # autotype-dnf — Best-k-Concise-DNF-Cover
//!
//! The ranking core of AutoType (§5.2 of the paper): given featurized
//! execution traces of a candidate function over positive examples `P` and
//! generated negatives `N`, find a disjunctive-normal-form formula over
//! trace literals that covers as much of `P` as possible while covering at
//! most `θ|N|` negatives, with each conjunction limited to `k` literals
//! (Definition 4). The problem is NP-hard (Theorem 4); [`cover`] implements
//! the paper's greedy Algorithm 1 plus the unconstrained DNF-C variant.
//!
//! This crate is substrate-free: literals are opaque ids and coverage is
//! bitsets, so the solver is reusable and easy to property-test.

pub mod bitset;
pub mod cover;

pub use bitset::BitSet;
pub use cover::{
    best_cover_complete, best_k_concise_cover, group_literals, Conjunction, CoverInput,
    CoverParams, DnfCover, LitId,
};
